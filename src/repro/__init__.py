"""CHEx86 reproduction: microcode-enabled capabilities for memory safety.

Python reproduction of *"CHEx86: Context-Sensitive Enforcement of Memory
Safety via Microcode-Enabled Capabilities"* (Sharifi & Venkat, ISCA 2020).

The public API is re-exported here; start with :class:`Chex86Machine` and
:func:`repro.isa.assemble`::

    from repro import Chex86Machine, Variant, assemble
    from repro.heap import heap_library_asm

    program = assemble(SOURCE + heap_library_asm())
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION)
    result = machine.run()
"""

from .core import (
    Chex86Machine,
    RuleDatabase,
    RunResult,
    Variant,
    Violation,
    ViolationKind,
)
from .isa import assemble
from .workloads import build as build_workload

__version__ = "1.0.0"

__all__ = [
    "Chex86Machine",
    "RuleDatabase",
    "RunResult",
    "Variant",
    "Violation",
    "ViolationKind",
    "__version__",
    "assemble",
    "build_workload",
]
