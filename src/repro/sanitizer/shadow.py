"""AddressSanitizer shadow-memory model.

The comparison baseline in Figure 6/9 is LLVM's AddressSanitizer: a
software tripwire that maintains shadow memory describing which application
words are addressable, poisons *redzones* around every allocation, and
instruments every memory access with an inlined shadow check.

This model uses word-granularity shadow (one shadow word per application
word) living at :data:`SHADOW_BASE` inside the simulated address space, so
the *instrumented check instructions really load it* — its cache footprint,
bandwidth, and residency costs are paid the same way real ASan pays them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.memory import Memory

#: Base of the shadow region (above all application segments).
SHADOW_BASE = 0x4000_0000_0000

#: Poison values (modelled after ASan's shadow byte encodings).
POISON_NONE = 0
POISON_REDZONE = 0xF1       # heap left/right redzone -> out-of-bounds
POISON_FREED = 0xFD         # freed heap region -> use-after-free
POISON_GLOBAL_REDZONE = 0xF9

#: Redzone size on each side of an allocation, in bytes.
REDZONE_BYTES = 32


def shadow_address(address: int) -> int:
    """Shadow word guarding the application word containing ``address``."""
    return SHADOW_BASE + (address & ~7)


@dataclass
class ShadowStats:
    poisoned_words: int = 0
    unpoisoned_words: int = 0


class ShadowMemory:
    """Poison bookkeeping over the simulated memory's shadow region."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.stats = ShadowStats()

    def poison_range(self, start: int, length: int, value: int) -> None:
        """Poison every shadow word covering [start, start+length)."""
        word = start & ~7
        end = start + length
        while word < end:
            self.memory.poke_word(shadow_address(word), value)
            self.stats.poisoned_words += 1
            word += 8

    def unpoison_range(self, start: int, length: int) -> None:
        word = start & ~7
        end = start + length
        while word < end:
            self.memory.poke_word(shadow_address(word), POISON_NONE)
            self.stats.unpoisoned_words += 1
            word += 8

    def poison_value(self, address: int) -> int:
        """The poison word guarding ``address`` (0 = addressable)."""
        return self.memory.peek_word(shadow_address(address))

    def is_poisoned(self, address: int) -> bool:
        return self.poison_value(address) != POISON_NONE
