"""AddressSanitizer compile-time instrumentation pass.

Rewrites a program the way ``clang -fsanitize=address`` would: every memory
access gets an inlined shadow check sequence ahead of it::

    lea  r15, [<effective address>]   ; faulting address
    mov  r14, r15
    and  r14, -8                      ; shadow word = SHADOW_BASE + (A & ~7)
    add  r14, SHADOW_BASE
    mov  r14, [r14]                   ; load the shadow word
    test r14, r14
    jne  __asan_report                ; poisoned -> report and abort

plus an appended ``__asan_report`` stub that escapes into the ASan runtime.

Register convention: ``r13``/``r14``/``r15`` are reserved for the
instrumentation (real ASan gets scratch registers from the register
allocator); programs to be sanitized must not use them, and must not keep
flags live across a memory instruction — both properties hold for every
workload and exploit generator in this repository, mirroring what the
compiler guarantees for real ASan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.instructions import Instr, Op
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.program import Program
from ..isa.registers import Reg
from .shadow import SHADOW_BASE

#: Registers the instrumentation clobbers.
RESERVED_REGS = (Reg.R13, Reg.R14, Reg.R15)

REPORT_LABEL = "__asan_report"

#: Instructions whose implicit stack traffic ASan does not instrument.
_SKIP_OPS = {Op.PUSH, Op.POP, Op.CALL, Op.RET, Op.LEA, Op.NOP, Op.HALT,
             Op.HOSTOP}


class InstrumentationError(ValueError):
    """The program violates the sanitizer's register/flags conventions."""


@dataclass
class InstrumentationReport:
    """What the pass did (drives the uop-expansion comparison)."""

    instrumented_accesses: int = 0
    skipped_stack_accesses: int = 0
    added_instructions: int = 0


def needs_check(instr: Instr) -> bool:
    """Whether ASan guards this instruction's memory access."""
    if instr.op in _SKIP_OPS:
        return False
    mem = instr.mem_operand
    if mem is None:
        return False
    # Frame/stack accesses through rsp/rbp are covered by stack poisoning in
    # real ASan; this model (like the paper's evaluation focus) guards heap
    # and data accesses.
    if mem.base in (Reg.RSP, Reg.RBP) and mem.index is None:
        return False
    return True


def _check_sequence(mem: Mem, label: Optional[str]) -> List[Instr]:
    """The inlined shadow-check instructions for one access."""
    return [
        Instr(Op.LEA, (Reg.R15, mem), label=label),
        Instr(Op.MOV, (Reg.R14, Reg.R15)),
        Instr(Op.AND, (Reg.R14, Imm(-8))),
        Instr(Op.ADD, (Reg.R14, Imm(SHADOW_BASE))),
        Instr(Op.MOV, (Reg.R14, Mem(base=Reg.R14))),
        Instr(Op.TEST, (Reg.R14, Reg.R14)),
        Instr(Op.JNE, (LabelRef(REPORT_LABEL),)),
    ]


def _report_stub() -> List[Instr]:
    return [
        Instr(Op.HOSTOP, (LabelRef("asan_report"),), label=REPORT_LABEL),
        Instr(Op.RET, ()),
    ]


def _strip_label(instr: Instr) -> Instr:
    return Instr(instr.op, instr.operands, label=None, comment=instr.comment)


def _uses_reserved(instr: Instr) -> bool:
    for operand in instr.operands:
        if isinstance(operand, Reg) and operand in RESERVED_REGS:
            return True
        if isinstance(operand, Mem) and (operand.base in RESERVED_REGS
                                         or operand.index in RESERVED_REGS):
            return True
    return False


def instrument_program(program: Program) -> tuple:
    """Return ``(sanitized_program, report)``.

    The rewritten program keeps every label (moved onto the first check
    instruction where one is inserted) so all control flow re-resolves.
    """
    report = InstrumentationReport()
    out: List[Instr] = []
    for instr in program.instrs:
        if _uses_reserved(instr):
            raise InstrumentationError(
                f"instruction {instr} uses a register reserved for ASan "
                f"instrumentation ({', '.join(str(r) for r in RESERVED_REGS)})")
        if not needs_check(instr):
            if instr.mem_operand is not None and instr.op not in _SKIP_OPS:
                report.skipped_stack_accesses += 1
            out.append(instr)
            continue
        checks = _check_sequence(instr.mem_operand, instr.label)
        out.extend(checks)
        out.append(_strip_label(instr))
        report.instrumented_accesses += 1
        report.added_instructions += len(checks)
    out.extend(_report_stub())
    report.added_instructions += 2
    sanitized = Program(out, program.globals, text_base=program.text_base,
                        name=program.name + "+asan")
    return sanitized, report
