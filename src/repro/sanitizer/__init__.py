"""AddressSanitizer model: shadow memory, runtime, instrumentation pass.

The one-call entry point is :func:`sanitize`, which wires the pieces
together the way ``clang -fsanitize=address`` plus ``libasan`` would::

    program, runtime, report = sanitize(program, allocator)
    machine = Chex86Machine(program, variant=Variant.INSECURE,
                            system=system, host_hooks=runtime.host_hooks())
"""

from __future__ import annotations

from typing import Tuple

from ..heap.allocator import HeapAllocator
from ..isa.program import Program
from .instrument import (
    REPORT_LABEL,
    RESERVED_REGS,
    InstrumentationError,
    InstrumentationReport,
    instrument_program,
    needs_check,
)
from .runtime import MAX_ALLOC_BYTES, QUARANTINE_BYTES, AsanRuntime, AsanStats
from .shadow import (
    POISON_FREED,
    POISON_NONE,
    POISON_REDZONE,
    REDZONE_BYTES,
    SHADOW_BASE,
    ShadowMemory,
    shadow_address,
)


def sanitize(program: Program, allocator: HeapAllocator,
             quarantine_capacity: int = QUARANTINE_BYTES
             ) -> Tuple[Program, AsanRuntime, InstrumentationReport]:
    """Instrument ``program`` and build its matching runtime."""
    sanitized, report = instrument_program(program)
    runtime = AsanRuntime(allocator, quarantine_capacity)
    return sanitized, runtime, report


__all__ = [
    "AsanRuntime",
    "AsanStats",
    "InstrumentationError",
    "InstrumentationReport",
    "MAX_ALLOC_BYTES",
    "POISON_FREED",
    "POISON_NONE",
    "POISON_REDZONE",
    "QUARANTINE_BYTES",
    "REDZONE_BYTES",
    "REPORT_LABEL",
    "RESERVED_REGS",
    "SHADOW_BASE",
    "ShadowMemory",
    "instrument_program",
    "needs_check",
    "sanitize",
    "shadow_address",
]
