"""The AddressSanitizer runtime: redzoned allocator and quarantine.

Replaces the heap library's host routines when a program runs under ASan:
``malloc`` pads every allocation with poisoned redzones, ``free`` poisons
the object and parks it in a bounded quarantine (delaying reuse so
use-after-free hits poisoned shadow), and ``__asan_report`` turns a shadow
hit into a recorded violation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Tuple

from ..core.violations import CapabilityException, Violation, ViolationKind
from ..heap.allocator import HeapAllocator
from ..isa.registers import Reg
from .shadow import (
    POISON_FREED,
    POISON_REDZONE,
    REDZONE_BYTES,
    ShadowMemory,
)

#: Default quarantine capacity (bytes of freed-but-not-reusable memory).
QUARANTINE_BYTES = 1 << 20

#: ASan rejects absurd requests instead of trying to allocate them
#: (the "allocator returns null / sizes" test cases).
MAX_ALLOC_BYTES = 1 << 30


@dataclass
class AsanStats:
    allocations: int = 0
    frees: int = 0
    quarantine_bytes: int = 0
    quarantine_evictions: int = 0
    redzone_bytes: int = 0
    reports: int = 0
    rejected_allocs: int = 0


class AsanRuntime:
    """Host-side ASan runtime state for one simulated process."""

    def __init__(self, allocator: HeapAllocator,
                 quarantine_capacity: int = QUARANTINE_BYTES) -> None:
        self.allocator = allocator
        self.shadow = ShadowMemory(allocator.memory)
        self.quarantine: Deque[Tuple[int, int]] = deque()  # (user, total)
        self.quarantine_capacity = quarantine_capacity
        self.sizes: Dict[int, int] = {}  # user pointer -> requested size
        self.stats = AsanStats()

    # -- allocation wrappers -----------------------------------------------------

    def malloc(self, size: int) -> int:
        if size <= 0 or size > MAX_ALLOC_BYTES:
            self.stats.rejected_allocs += 1
            return 0
        total = size + 2 * REDZONE_BYTES
        raw = self.allocator.malloc(total)
        if raw == 0:
            return 0
        user = raw + REDZONE_BYTES
        self.shadow.poison_range(raw, REDZONE_BYTES, POISON_REDZONE)
        self.shadow.unpoison_range(user, size)
        self.shadow.poison_range(user + size, REDZONE_BYTES, POISON_REDZONE)
        self.sizes[user] = size
        self.stats.allocations += 1
        self.stats.redzone_bytes += 2 * REDZONE_BYTES
        return user

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        user = self.malloc(total)
        if user:
            words = (total + 7) // 8
            self.allocator.memory.fill_words(user, [0] * words, metered=True)
        return user

    def free(self, user: int) -> None:
        if user == 0:
            return
        size = self.sizes.get(user)
        if size is None:
            self._report_direct(ViolationKind.INVALID_FREE, user)
            return
        if self.shadow.poison_value(user) == POISON_FREED:
            self._report_direct(ViolationKind.DOUBLE_FREE, user)
            return
        self.shadow.poison_range(user, size, POISON_FREED)
        self.stats.frees += 1
        self._quarantine(user, size)

    def realloc(self, user: int, size: int) -> int:
        if user == 0:
            return self.malloc(size)
        if size <= 0:
            self.free(user)
            return 0
        old_size = self.sizes.get(user, 0)
        new_user = self.malloc(size)
        if new_user:
            words = (min(old_size, size) + 7) // 8
            memory = self.allocator.memory
            for i in range(words):
                memory.write_word(new_user + i * 8,
                                  memory.read_word(user + i * 8))
            self.free(user)
        return new_user

    # -- reporting ---------------------------------------------------------------------

    def classify_poison(self, poison: int) -> ViolationKind:
        if poison == POISON_FREED:
            return ViolationKind.USE_AFTER_FREE
        return ViolationKind.OUT_OF_BOUNDS

    def _report_direct(self, kind: ViolationKind, address: int) -> None:
        self.stats.reports += 1
        raise CapabilityException(Violation(
            kind=kind, pid=0, address=address,
            detail="AddressSanitizer runtime check",
        ))

    # -- quarantine ---------------------------------------------------------------------

    def _quarantine(self, user: int, size: int) -> None:
        total = size + 2 * REDZONE_BYTES
        self.quarantine.append((user, total))
        self.stats.quarantine_bytes += total
        while self.stats.quarantine_bytes > self.quarantine_capacity:
            old_user, old_total = self.quarantine.popleft()
            self.stats.quarantine_bytes -= old_total
            self.stats.quarantine_evictions += 1
            del self.sizes[old_user]
            # Reuse allowed again: return the raw chunk to the allocator and
            # clear the freed poison (redzones of the next owner re-poison).
            old_size = old_total - 2 * REDZONE_BYTES
            self.shadow.unpoison_range(old_user, old_size)
            self.allocator.free(old_user - REDZONE_BYTES)

    # -- host hook table ------------------------------------------------------------------

    def host_hooks(self) -> Dict[str, Callable]:
        """Hooks that replace the plain heap library under ASan."""

        def heap_malloc(regs: List[int]) -> None:
            regs[Reg.RAX] = self.malloc(regs[Reg.RDI])

        def heap_calloc(regs: List[int]) -> None:
            regs[Reg.RAX] = self.calloc(regs[Reg.RDI], regs[Reg.RSI])

        def heap_realloc(regs: List[int]) -> None:
            regs[Reg.RAX] = self.realloc(regs[Reg.RDI], regs[Reg.RSI])

        def heap_free(regs: List[int]) -> None:
            self.free(regs[Reg.RDI])
            regs[Reg.RAX] = 0

        def asan_report(regs: List[int]) -> None:
            # The instrumentation loads the poison word into r14 and the
            # faulting address into r15 before calling the report stub.
            self.stats.reports += 1
            poison = regs[Reg.R14]
            raise CapabilityException(Violation(
                kind=self.classify_poison(poison), pid=0,
                address=regs[Reg.R15],
                detail=f"AddressSanitizer shadow hit (poison={poison:#x})",
            ))

        return {
            "heap_malloc": heap_malloc,
            "heap_calloc": heap_calloc,
            "heap_realloc": heap_realloc,
            "heap_free": heap_free,
            "asan_report": asan_report,
        }
