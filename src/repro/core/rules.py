"""The pointer-tracking rule database (paper Table I).

Each rule maps a micro-op pattern — opcode, optional ALU sub-operation, and
addressing mode — to a *capability propagation* policy that decides which
source operand's PID flows to the destination.  The database is configurable
by construction: the paper's hardware checker co-processor
(:mod:`repro.core.checker`) validates rules at run time and requests
additions when an unmatched pointer manipulation pattern appears, which is
how Table I was constructed; :meth:`RuleDatabase.add` supports exactly that
workflow (including field updates via microcode, per the paper).

The table's policies::

    MOV   reg-reg   PID(dst) <- PID(src)
    AND   reg-reg   if one source PID is zero, take the other
    AND   reg-imm   PID(dst) <- PID(src)
    LEA             PID(dst) <- PID(base register)
    ADD   reg-reg   if one source PID is zero, take the other
    ADD   reg-imm   PID(dst) <- PID(src)
    SUB             PID(dst) <- PID(first source)  (the minuend)
    LD              PID(dst) <- PID(Mem[EA])       (alias subsystem)
    ST              PID(Mem[EA]) <- PID(src)       (alias subsystem)
    MOVI            PID(dst) <- PID(-1)            (wild-pointer sentinel)
    otherwise       PID(result) <- 0
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..microop.uops import AddrMode, AluOp, Uop, UopKind
from .capability import WILD_PID


class Propagation(enum.Enum):
    """Capability propagation policies a rule can select."""

    COPY_SRC = "copy-src"            # dst <- PID(src0)
    NONZERO_SRC = "nonzero-src"      # dst <- the non-zero source PID
    FIRST_SRC = "first-src"          # dst <- PID(first source) always
    BASE_REG = "base-reg"            # dst <- PID(addressing base register)
    WILD = "wild"                    # dst <- PID(-1)
    ZERO = "zero"                    # dst <- 0
    FROM_MEMORY = "from-memory"      # dst <- PID(Mem[EA]) via alias subsystem
    TO_MEMORY = "to-memory"          # PID(Mem[EA]) <- PID(src)


#: Sentinel returned by :meth:`RuleDatabase.propagate` for memory policies,
#: which the machine resolves through the alias subsystem.
MEMORY_POLICY = object()


@dataclass(frozen=True)
class Rule:
    """One peephole rule: a micro-op pattern and its propagation policy."""

    name: str
    kind: UopKind
    propagation: Propagation
    alu: Optional[AluOp] = None           # None = any ALU sub-op
    addr_mode: Optional[AddrMode] = None  # None = any addressing mode
    example: str = ""                     # source-level illustration (Table I)

    def matches(self, uop: Uop) -> bool:
        if uop.kind is not self.kind:
            return False
        if self.alu is not None and uop.alu is not self.alu:
            return False
        if self.addr_mode is not None and uop.addr_mode is not self.addr_mode:
            return False
        return True

    @property
    def key(self) -> Tuple:
        return (self.kind, self.alu, self.addr_mode)


class RuleDatabase:
    """An ordered, configurable collection of pointer-tracking rules.

    Lookup returns the first matching rule; a ``default_propagation`` of
    ``ZERO`` implements Table I's "all other operations" row.
    """

    def __init__(self, rules: Sequence[Rule] = ()) -> None:
        self._rules: List[Rule] = list(rules)
        self._index: Dict[Tuple, Rule] = {r.key: r for r in self._rules}
        self.default_propagation = Propagation.ZERO
        #: Set by the checker workflow: rules added after initial seeding.
        self.field_updates: List[str] = []
        # Memoized lookup results per concrete uop shape (hot path).
        self._memo: Dict[Tuple, Optional[Rule]] = {}
        #: Bumped on every add/remove; stamps the per-uop lookup memo so a
        #: mid-run rule update (the checker workflow) invalidates it.
        self.version = 0

    # -- construction / configurability -----------------------------------------

    @classmethod
    def table1(cls) -> "RuleDatabase":
        """The full automatically-constructed database of paper Table I."""
        db = cls(_SEED_RULES)
        for rule in _LEARNED_RULES:
            db.add(rule, field_update=False)
        return db

    @classmethod
    def seed(cls) -> "RuleDatabase":
        """The small expert-written seed the auto-construction starts from.

        Section V-A: "The rule database is first initialized to a small set
        of rules by an expert, and is then validated and incrementally
        updated in an offline profiling step."
        """
        return cls(_SEED_RULES)

    def add(self, rule: Rule, field_update: bool = True) -> None:
        """Install a rule (the checker's manual-intervention path)."""
        if rule.key in self._index:
            raise ValueError(f"rule for {rule.key} already present: "
                             f"{self._index[rule.key].name}")
        self._rules.append(rule)
        self._index[rule.key] = rule
        self._memo.clear()
        self.version += 1
        if field_update:
            self.field_updates.append(rule.name)

    def remove(self, name: str) -> None:
        """Drop a rule by name (used by ablations)."""
        for i, rule in enumerate(self._rules):
            if rule.name == name:
                del self._rules[i]
                del self._index[rule.key]
                self._memo.clear()
                self.version += 1
                return
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    # -- matching / propagation -----------------------------------------------------

    def lookup(self, uop: Uop) -> Optional[Rule]:
        """The first rule matching ``uop``, or None (default policy).

        The result is memoized directly on the (static, per-site) uop,
        stamped with :attr:`version` so learned/dropped rules invalidate
        it; the shape-keyed ``_memo`` backs uops seen for the first time.
        """
        memo = uop._rule
        if memo is not None and memo[0] is self and memo[1] == self.version:
            return memo[2]
        key = (uop.kind, uop.alu, uop.addr_mode)
        try:
            found = self._memo[key]
        except KeyError:
            found = self._index.get(key)
            if found is None:
                for rule in self._rules:
                    if rule.matches(uop):
                        found = rule
                        break
            self._memo[key] = found
        uop._rule = (self, self.version, found)
        return found

    def propagate(self, uop: Uop, src_pids: Sequence[int], base_pid: int = 0):
        """Destination PID for ``uop`` given its source-operand PIDs.

        Returns an int PID, or :data:`MEMORY_POLICY` when the rule defers to
        the alias subsystem (LD/ST).
        """
        rule = self.lookup(uop)
        policy = rule.propagation if rule else self.default_propagation
        if policy is Propagation.ZERO:
            return 0
        if policy is Propagation.COPY_SRC or policy is Propagation.FIRST_SRC:
            return src_pids[0] if src_pids else 0
        if policy is Propagation.NONZERO_SRC:
            return _nonzero_source(src_pids)
        if policy is Propagation.BASE_REG:
            return base_pid
        if policy is Propagation.WILD:
            return WILD_PID
        if policy in (Propagation.FROM_MEMORY, Propagation.TO_MEMORY):
            return MEMORY_POLICY
        raise AssertionError(f"unhandled policy {policy}")  # pragma: no cover

    # -- reporting (Table I regeneration) ----------------------------------------------

    def to_rows(self) -> List[Dict[str, str]]:
        """Rows in the shape of paper Table I."""
        rows = []
        for rule in self._rules:
            rows.append({
                "uop": rule.kind.value if rule.alu is None
                       else rule.alu.value.upper(),
                "addr_mode": rule.addr_mode.value if rule.addr_mode else "any",
                "propagation": rule.propagation.value,
                "example": rule.example,
                "learned": rule.name in self.field_updates
                           or rule.name in _LEARNED_NAMES,
            })
        rows.append({
            "uop": "all other operations", "addr_mode": "-",
            "propagation": self.default_propagation.value, "example": "",
            "learned": False,
        })
        return rows


def _nonzero_source(src_pids: Sequence[int]) -> int:
    """Table I's ADD/AND reg-reg policy, extended for the wild sentinel.

    "If the PID of one source operand is zero, then assign the PID of the
    other source operand."  When both are tagged, a real (positive) PID
    beats the wild sentinel; two positive PIDs keep the first (pointer
    difference expressions favour the minuend).
    """
    if not src_pids:
        return 0
    first = src_pids[0]
    second = src_pids[1] if len(src_pids) > 1 else 0
    if first == 0:
        return second
    if second == 0:
        return first
    if first == WILD_PID:
        return second
    return first


# The expert seed: pointer copies and pointer arithmetic via ADD.
_SEED_RULES: Tuple[Rule, ...] = (
    Rule("mov-rr", UopKind.MOV, Propagation.COPY_SRC,
         addr_mode=AddrMode.REG_REG, example="ptr1 = ptr2;"),
    Rule("add-rr", UopKind.ALU, Propagation.NONZERO_SRC, alu=AluOp.ADD,
         addr_mode=AddrMode.REG_REG, example="ptr2 = ptr1 + offset;"),
    Rule("add-ri", UopKind.ALU, Propagation.FIRST_SRC, alu=AluOp.ADD,
         addr_mode=AddrMode.REG_IMM, example="ptr2 = ptr1 + 4;"),
)

# Rules the offline checker profiling step added (Section V-A's process,
# run over SPEC/PARSEC/RIPE/ASan-suite/How2Heap in the paper).
_LEARNED_RULES: Tuple[Rule, ...] = (
    Rule("and-rr", UopKind.ALU, Propagation.NONZERO_SRC, alu=AluOp.AND,
         addr_mode=AddrMode.REG_REG,
         example="mask = 0xffff0000; ptr2 = ptr1 & mask;"),
    Rule("and-ri", UopKind.ALU, Propagation.FIRST_SRC, alu=AluOp.AND,
         addr_mode=AddrMode.REG_IMM, example="ptr2 = ptr1 & 0xffff0000;"),
    Rule("lea", UopKind.LEA, Propagation.BASE_REG,
         example="ptr = &a[50];"),
    Rule("add-rm", UopKind.ALU, Propagation.NONZERO_SRC, alu=AluOp.ADD,
         addr_mode=AddrMode.REG_MEM, example="ptr2 = ptr1 + *count;"),
    Rule("sub-rr", UopKind.ALU, Propagation.FIRST_SRC, alu=AluOp.SUB,
         addr_mode=AddrMode.REG_REG, example="ptr2 = ptr1 - offset;"),
    Rule("sub-ri", UopKind.ALU, Propagation.FIRST_SRC, alu=AluOp.SUB,
         addr_mode=AddrMode.REG_IMM, example="ptr2 = ptr1 - 4;"),
    Rule("ld", UopKind.LD, Propagation.FROM_MEMORY,
         example="int *ptr2 = ptr1[100];"),
    Rule("st", UopKind.ST, Propagation.TO_MEMORY,
         example="*ptr1 = ptr2;"),
    Rule("movi", UopKind.LIMM, Propagation.WILD,
         example="int *p = (int *)0x7fff1000;"),
)

_LEARNED_NAMES = {rule.name for rule in _LEARNED_RULES}
