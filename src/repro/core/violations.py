"""Memory-safety violation taxonomy and reporting.

These are the violation classes the paper's security evaluation (Section
VII-A) detects: out-of-bounds accesses, use-after-free, double free, invalid
free, wild (constant-address) dereferences, and heap-spray / resource
exhaustion attempts at allocation time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class ViolationKind(enum.Enum):
    """What a capability micro-op flagged."""

    OUT_OF_BOUNDS = "out-of-bounds"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    #: Dereference through PID(-1): a constant integer address that was never
    #: produced by a registered allocation (Table I's MOVI rule).
    WILD_DEREFERENCE = "wild-dereference"
    #: Allocation request above the configured maximum block size (the
    #: heap-spray / resource-exhaustion anchor point).
    HEAP_SPRAY = "heap-spray"
    #: Write to a read-only capability or similar permission mismatch.
    PERMISSION = "permission"

    @property
    def cwe(self) -> str:
        """The MITRE CWE identifier this violation class maps to."""
        return _CWE_MAP[self]


#: Violation class → CWE (the taxonomy security advisories use).
_CWE_MAP = {
    ViolationKind.OUT_OF_BOUNDS: "CWE-787/125",   # OOB write / read
    ViolationKind.USE_AFTER_FREE: "CWE-416",
    ViolationKind.DOUBLE_FREE: "CWE-415",
    ViolationKind.INVALID_FREE: "CWE-590",        # free of non-heap memory
    ViolationKind.WILD_DEREFERENCE: "CWE-822",    # untrusted pointer deref
    ViolationKind.HEAP_SPRAY: "CWE-789",          # excessive allocation
    ViolationKind.PERMISSION: "CWE-732",          # incorrect permissions
}


@dataclass(frozen=True)
class Violation:
    """One flagged violation, with enough context to diagnose it."""

    kind: ViolationKind
    pid: int
    address: int = 0
    size: int = 0
    instr_address: int = 0
    detail: str = ""
    #: Optional provenance chain (alloc → free → faulting access),
    #: attached when the machine runs with provenance recording armed.
    #: Plain data so the frozen record stays picklable; excluded from
    #: ``__str__`` so violation lines stay byte-identical either way.
    provenance: Optional[dict] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind.value} (pid={self.pid}, addr={self.address:#x}, "
            f"pc={self.instr_address:#x}) {self.detail}"
        )


class CapabilityException(Exception):
    """Raised by the machine when a capability check fires and the run is
    configured to trap (``halt_on_violation=True``)."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class ViolationLog:
    """Accumulates violations over a run (used when not trapping)."""

    violations: List[Violation] = field(default_factory=list)

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)

    def count(self, kind: Optional[ViolationKind] = None) -> int:
        if kind is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.kind is kind)

    @property
    def flagged(self) -> bool:
        return bool(self.violations)

    def kinds(self) -> List[ViolationKind]:
        return [v.kind for v in self.violations]
