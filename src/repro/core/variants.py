"""The CHEx86 design-space variants evaluated in the paper (Figure 6).

Five configurations share one machine:

* **INSECURE** — the unprotected baseline x86 core.
* **HW_ONLY** — no instrumentation; the load/store unit performs the
  capability check fused into every load/store, directly affecting the
  latency of all memory operations.
* **BINARY_TRANSLATION** — a dynamic binary translator instruments every
  macro instruction with a register-memory addressing mode; the check
  occupies *macro-stream* fetch/decode slots (lower front-end throughput).
* **UCODE_ALWAYS_ON** — the microcode engine injects a ``capCheck`` for
  every load/store micro-op regardless of whether it touches the heap.
* **UCODE_PREDICTION** — the paper's default: prediction-driven, surgical
  injection only for dereferences through tracked (non-zero PID) pointers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Variant(enum.Enum):
    INSECURE = "insecure"
    HW_ONLY = "hardware-only"
    BINARY_TRANSLATION = "binary-translation"
    UCODE_ALWAYS_ON = "ucode-always-on"
    UCODE_PREDICTION = "ucode-prediction"
    #: Runs programs statically rewritten by ``repro.translator`` with
    #: explicit ``capchk`` ISA-extension instructions: no injection at all —
    #: the checks live in the macro stream (design point (b), realized).
    BT_ISA_EXTENSION = "bt-isa-extension"


class CheckPolicy(enum.Enum):
    """Where/when capability checks happen."""

    NONE = "none"          # no checks at all
    LSU = "lsu"            # fused into every load/store (no extra uops)
    ALL_MEM = "all-mem"    # a capCheck uop for every memory micro-op
    TRACKED = "tracked"    # a capCheck uop only for tracked-pointer bases
    EXPLICIT = "explicit"  # no injection; capchk instructions in the binary


@dataclass(frozen=True)
class VariantTraits:
    """Static behaviour of one design point."""

    variant: Variant
    #: Speculative pointer tracker + alias machinery active.
    tracks_pointers: bool
    #: Heap entry/exit interception and capGen/capFree generation active.
    intercepts_heap: bool
    check_policy: CheckPolicy
    #: Checks ride in the macro stream (binary translation), consuming
    #: front-end fetch/decode bandwidth rather than being injected post-decode.
    checks_in_macro_stream: bool = False

    @property
    def secured(self) -> bool:
        return self.check_policy is not CheckPolicy.NONE


_TRAITS = {
    Variant.INSECURE: VariantTraits(
        Variant.INSECURE, tracks_pointers=False, intercepts_heap=False,
        check_policy=CheckPolicy.NONE,
    ),
    Variant.HW_ONLY: VariantTraits(
        Variant.HW_ONLY, tracks_pointers=True, intercepts_heap=True,
        check_policy=CheckPolicy.LSU,
    ),
    Variant.BINARY_TRANSLATION: VariantTraits(
        Variant.BINARY_TRANSLATION, tracks_pointers=True, intercepts_heap=True,
        check_policy=CheckPolicy.ALL_MEM, checks_in_macro_stream=True,
    ),
    Variant.UCODE_ALWAYS_ON: VariantTraits(
        Variant.UCODE_ALWAYS_ON, tracks_pointers=True, intercepts_heap=True,
        check_policy=CheckPolicy.ALL_MEM,
    ),
    Variant.UCODE_PREDICTION: VariantTraits(
        Variant.UCODE_PREDICTION, tracks_pointers=True, intercepts_heap=True,
        check_policy=CheckPolicy.TRACKED,
    ),
    Variant.BT_ISA_EXTENSION: VariantTraits(
        Variant.BT_ISA_EXTENSION, tracks_pointers=True, intercepts_heap=True,
        check_policy=CheckPolicy.EXPLICIT,
    ),
}


def traits_of(variant: Variant) -> VariantTraits:
    """The :class:`VariantTraits` for ``variant``."""
    return _TRAITS[variant]


#: Variants in the order Figure 6 plots them.
FIGURE6_ORDER = (
    Variant.INSECURE,
    Variant.HW_ONLY,
    Variant.BINARY_TRANSLATION,
    Variant.UCODE_ALWAYS_ON,
    Variant.UCODE_PREDICTION,
)
