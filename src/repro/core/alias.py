"""Spilled-pointer alias tracking: shadow alias table, alias cache, store
buffer PID extension (paper Section V-C).

When a register holding a pointer is spilled to memory, CHEx86 must
remember which PID that memory word carries so a later reload can be
re-tagged.  The authoritative record is a **5-level hierarchical shadow
alias table** structured like an x86-64 page table and traversed by a
hardware walker; a small 2-way **alias cache** (plus a fully associative
victim cache) makes the common lookups cheap, and PIDs of not-yet-committed
stores ride in the **store buffer** so transient stores never pollute the
cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..memory.cache import SetAssocCache

#: Levels of the hierarchical table (mirrors 5-level x86-64 paging).
WALK_LEVELS = 5
#: Bits consumed per level over the 48-bit word-index space.
_LEVEL_BITS = (9, 9, 9, 9, 9)
#: Bytes per table node, for shadow-storage accounting: 512 entries x 8 B.
NODE_BYTES = 512 * 8


def _shift_masks(bits: Tuple[int, ...]) -> Tuple[Tuple[int, int], ...]:
    pairs = []
    shift = sum(bits)
    for width in bits:
        shift -= width
        pairs.append((shift, (1 << width) - 1))
    return tuple(pairs)


#: Per-level (shift, mask) pairs over the word index, precomputed: the
#: table traversals run on the load/store hot path.
_UPPER_SHIFT_MASKS = _shift_masks(_LEVEL_BITS)[:-1]
_LEAF_MASK = (1 << _LEVEL_BITS[-1]) - 1


@dataclass
class AliasTableStats:
    walks: int = 0
    levels_touched: int = 0
    entries_set: int = 0
    entries_cleared: int = 0


class ShadowAliasTable:
    """The 5-level hierarchical alias table.

    Maps a 64-bit (word-aligned) virtual address to the PID of the pointer
    spilled there.  Unlike page tables whose leaves hold physical page
    numbers, the lowest-level entries hold PIDs (Section V-C).  The nested
    dict structure mirrors the radix levels so that the storage accounting
    (Figure 9: overhead scales with the number of *references*, not with
    total memory) and the walk-latency accounting are both faithful.
    """

    def __init__(self) -> None:
        self._root: Dict = {}
        self._nodes = 1  # the root node always exists
        self.stats = AliasTableStats()

    @staticmethod
    def _indices(address: int) -> Tuple[int, ...]:
        word = address >> 3
        return tuple((word >> shift) & mask
                     for shift, mask in _UPPER_SHIFT_MASKS) \
            + (word & _LEAF_MASK,)

    def set(self, address: int, pid: int) -> None:
        """Record that the word at ``address`` holds a spilled PID."""
        if pid == 0:
            self.clear(address)
            return
        word = address >> 3
        node = self._root
        for shift, mask in _UPPER_SHIFT_MASKS:
            index = (word >> shift) & mask
            nxt = node.get(index)
            if nxt is None:
                nxt = {}
                node[index] = nxt
                self._nodes += 1
            node = nxt
        leaf_index = word & _LEAF_MASK
        if leaf_index not in node:
            self.stats.entries_set += 1
        node[leaf_index] = pid

    def clear(self, address: int) -> None:
        """A non-pointer value overwrote the word: drop any alias entry."""
        word = address >> 3
        node = self._root
        for shift, mask in _UPPER_SHIFT_MASKS:
            node = node.get((word >> shift) & mask)
            if node is None:
                return
        leaf_index = word & _LEAF_MASK
        if leaf_index in node:
            del node[leaf_index]
            self.stats.entries_cleared += 1

    def walk(self, address: int) -> int:
        """Hardware table walk; returns the PID (0 if absent).

        Touches up to :data:`WALK_LEVELS` levels; the level count feeds the
        walk-latency model.
        """
        stats = self.stats
        stats.walks += 1
        word = address >> 3
        node = self._root
        touched = 1
        for shift, mask in _UPPER_SHIFT_MASKS:
            node = node.get((word >> shift) & mask)
            if node is None:
                stats.levels_touched += touched
                return 0
            touched += 1
        stats.levels_touched += touched
        return node.get(word & _LEAF_MASK, 0)

    def peek(self, address: int) -> int:
        """Walk without stats (checker / debugging)."""
        word = address >> 3
        node = self._root
        for shift, mask in _UPPER_SHIFT_MASKS:
            node = node.get((word >> shift) & mask)
            if node is None:
                return 0
        return node.get(word & _LEAF_MASK, 0)

    @property
    def shadow_bytes(self) -> int:
        """Shadow storage consumed by the table nodes (Figure 9)."""
        return self._nodes * NODE_BYTES

    @property
    def live_entries(self) -> int:
        return self.stats.entries_set - self.stats.entries_cleared


class AliasCache:
    """The in-processor alias cache: 256-entry 2-way + 32-entry victim.

    Keyed by word address, holding PIDs.  Misses fall back to the hardware
    walker over the shadow alias table.  Coherence: a remote store to a
    spilled alias invalidates the line in every other core's alias cache
    (modelled by :class:`repro.pipeline.system.System`).
    """

    def __init__(self, entries: int = 256, ways: int = 2,
                 victim_entries: int = 32) -> None:
        self.cache = SetAssocCache(entries, ways, line_shift=3,
                                   victim_entries=victim_entries,
                                   name="alias-cache")

    def lookup(self, address: int, table: ShadowAliasTable) -> Tuple[int, bool]:
        """PID at ``address``; returns (pid, cache-hit?).

        Only real aliases are installed on a miss: caching negative results
        would let plain data loads sharing a page with spilled pointers
        evict the aliases the cache exists for.
        """
        cached = self.cache.lookup(address)
        if cached is not None:
            self.cache.access(address, cached)  # count the hit, refresh LRU
            return cached, True
        pid = table.walk(address)
        if pid:
            self.cache.access(address, pid)  # miss + install
        else:
            self.cache.stats.misses += 1     # miss, nothing to cache
        return pid, False

    def install(self, address: int, pid: int) -> None:
        """Committed store path: update/insert without a table walk."""
        if self.cache.lookup(address) is not None:
            self.cache.update(address, pid)
        else:
            self.cache.access(address, pid)

    def invalidate(self, address: int) -> bool:
        return self.cache.invalidate(address)

    @property
    def stats(self):
        return self.cache.stats


@dataclass
class _PendingStore:
    seq: int
    address: int
    pid: int


class StoreBufferPids:
    """PID extension of the store buffer (Section V-C).

    Transient stores that may spill pointers hold their PIDs here until
    commit; only committed stores update the alias cache and table.  A
    squash drops the younger entries without any alias-state side effects.
    """

    def __init__(self, capacity: int = 56) -> None:
        self.capacity = capacity
        self._pending: Deque[_PendingStore] = deque()
        self.peak_occupancy = 0
        self.total_buffered = 0
        #: Entries recorded while the buffer was already at capacity — the
        #: timing model turns these into dispatch stalls; functionally the
        #: entry is still kept (no alias update may ever be lost).
        self.overflows = 0

    def record(self, seq: int, address: int, pid: int) -> None:
        if len(self._pending) >= self.capacity:
            self.overflows += 1
        self._pending.append(_PendingStore(seq, address, pid))
        self.total_buffered += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._pending))

    def forward(self, address: int) -> Optional[int]:
        """Store-to-load forwarding of PIDs for same-address reloads."""
        for entry in reversed(self._pending):
            if entry.address == address:
                return entry.pid
        return None

    def commit_upto(self, seq: int, table: ShadowAliasTable,
                    cache: AliasCache) -> List[Tuple[int, int]]:
        """Drain entries with sequence <= ``seq`` into the alias structures.

        Returns the (address, pid) pairs committed, so the system layer can
        broadcast invalidations to other cores.
        """
        committed: List[Tuple[int, int]] = []
        while self._pending and self._pending[0].seq <= seq:
            entry = self._pending.popleft()
            table.set(entry.address, entry.pid)
            if entry.pid:
                cache.install(entry.address, entry.pid)
            else:
                cache.invalidate(entry.address)
            committed.append((entry.address, entry.pid))
        return committed

    def squash_after(self, seq: int) -> int:
        dropped = 0
        while self._pending and self._pending[-1].seq > seq:
            self._pending.pop()
            dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._pending)
