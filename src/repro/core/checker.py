"""The hardware checker co-processor and rule auto-construction workflow.

Section V-A: the pointer-tracking rule database is constructed
incrementally.  Starting from a small expert seed, an offline profiling run
engages a checker co-processor that, for every micro-op producing a result,
exhaustively searches the shadow tables to decide whether the result is an
address inside any tracked (allocated or freed) block, and compares that
ground truth against the PID the speculative tracker predicted.  A mismatch
dumps the offending instruction and its execution state and requests a rule
update.

:class:`RuleAutoConstructor` automates the paper's human-in-the-loop step
against a catalog of candidate rules: it repeatedly profiles a workload,
groups mismatches by micro-op signature, installs the matching candidate,
and stops when a profiling pass comes back clean.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..microop.uops import AddrMode, AluOp, Uop, UopKind
from .capability import ShadowCapabilityTable
from .rules import Rule, RuleDatabase, _LEARNED_RULES


@dataclass(frozen=True)
class Mismatch:
    """One checker-detected rule failure, with its execution state dump."""

    kind: UopKind
    alu: Optional[AluOp]
    addr_mode: AddrMode
    predicted_pid: int
    actual_pid: int
    pc: int
    result_value: int

    @property
    def signature(self) -> Tuple:
        return (self.kind, self.alu, self.addr_mode)


@dataclass
class CheckerStats:
    validations: int = 0
    confirmed: int = 0
    mismatches: int = 0
    not_of_interest: int = 0  # result not inside any tracked block


class HardwareChecker:
    """Validates tracker predictions against exhaustive shadow-table search."""

    def __init__(self, captable: ShadowCapabilityTable) -> None:
        self.captable = captable
        self.stats = CheckerStats()
        self.mismatches: List[Mismatch] = []

    def ground_truth_pid(self, value: int) -> int:
        """Exhaustive search: PID of the tracked block containing ``value``.

        Searches allocated *and* freed blocks; 0 when the value is not an
        address of interest (stack, text, untracked global, plain data).
        """
        capability = self.captable.find_any_by_address(value)
        return capability.pid if capability is not None else 0

    def validate(self, uop: Uop, predicted_pid: int, result_value: int,
                 pc: int) -> bool:
        """Compare the tracker's PID for a produced result against ground
        truth; records a mismatch dump on failure.  Returns ok?"""
        self.stats.validations += 1
        actual = self.ground_truth_pid(result_value)
        if actual == 0:
            self.stats.not_of_interest += 1
            # The tracker claiming "untracked" or "wild" is consistent with
            # the search failing; a positive PID for a non-address is not.
            if predicted_pid <= 0:
                self.stats.confirmed += 1
                return True
        elif predicted_pid == actual:
            self.stats.confirmed += 1
            return True
        self.stats.mismatches += 1
        self.mismatches.append(Mismatch(
            kind=uop.kind, alu=uop.alu, addr_mode=uop.addr_mode,
            predicted_pid=predicted_pid, actual_pid=actual, pc=pc,
            result_value=result_value,
        ))
        return False

    def mismatch_signatures(self) -> Counter:
        return Counter(m.signature for m in self.mismatches)


@dataclass
class LearningStep:
    """One iteration of the auto-construction loop."""

    round: int
    mismatches: int
    rule_added: Optional[str]
    signatures: Tuple[Tuple, ...] = ()


class RuleAutoConstructor:
    """Automates Section V-A's incremental rule-database construction.

    ``profile`` is a callable that runs one offline profiling pass with the
    given rule database and returns the :class:`HardwareChecker` used (the
    machine wires the checker to every result-producing micro-op).
    ``catalog`` is the space of rules an expert could write; the constructor
    picks the candidate matching the most frequent mismatch signature each
    round — the "manual intervention" of the paper, mechanized.
    """

    def __init__(
        self,
        profile: Callable[[RuleDatabase], HardwareChecker],
        catalog: Sequence[Rule] = _LEARNED_RULES,
        max_rounds: int = 32,
    ) -> None:
        self._profile = profile
        self._catalog = list(catalog)
        self._max_rounds = max_rounds

    def construct(self, db: Optional[RuleDatabase] = None
                  ) -> Tuple[RuleDatabase, List[LearningStep]]:
        """Run profiling rounds until clean; returns (database, history)."""
        db = db if db is not None else RuleDatabase.seed()
        history: List[LearningStep] = []
        for round_no in range(1, self._max_rounds + 1):
            checker = self._profile(db)
            signatures = checker.mismatch_signatures()
            if not signatures:
                history.append(LearningStep(round_no, 0, None))
                break
            rule = self._pick_candidate(db, signatures)
            history.append(LearningStep(
                round=round_no,
                mismatches=checker.stats.mismatches,
                rule_added=rule.name if rule else None,
                signatures=tuple(signatures),
            ))
            if rule is None:
                # No candidate covers the remaining mismatches: genuine
                # manual intervention required — stop and report.
                break
            db.add(rule)
        return db, history

    def _pick_candidate(self, db: RuleDatabase,
                        signatures: Counter) -> Optional[Rule]:
        installed = {rule.name for rule in db}
        for (kind, alu, addr_mode), _ in signatures.most_common():
            for rule in self._catalog:
                if rule.name in installed:
                    continue
                if rule.kind is not kind:
                    continue
                if rule.alu is not None and rule.alu is not alu:
                    continue
                if rule.addr_mode is not None and rule.addr_mode is not addr_mode:
                    continue
                return rule
        # Load mismatches that persist after the LD rule is installed mean
        # the *producer* side is missing: spilled pointers are never being
        # recorded.  The execution-state dump makes this obvious to the
        # expert (the loaded value sits in tracked memory a store put
        # there), so the mechanized intervention proposes the ST rule.
        if any(kind is UopKind.LD for kind, _, _ in signatures):
            for rule in self._catalog:
                if rule.kind is UopKind.ST and rule.name not in installed:
                    return rule
        return None
