"""The speculative pointer tracker (paper Section V).

Lives in the processor front-end and tags every architectural register with
the PID of the capability it (speculatively) carries.  Because tracking
happens on speculatively fetched instructions, each register tag keeps two
fields (Section V-D):

* the **finalized PID** propagated by the last committed instruction, and
* a **vector of transient PIDs** from in-flight older instructions, each
  paired with its sequence number.

Capability transfers always use the transient PID with the highest sequence
number (the fetch stage runs ahead of the pipe); on a squash, transients
younger than the offending instruction are discarded; on commit, the
oldest transient graduates into the finalized field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..microop.uops import NUM_UREGS, Uop
from .capability import WILD_PID
from .rules import MEMORY_POLICY, Propagation, RuleDatabase


@dataclass
class TrackerStats:
    """Rule-application counters."""

    transfers: int = 0         # register-to-register PID propagations
    wild_assignments: int = 0  # MOVI rule firings (PID <- -1)
    zeroed: int = 0            # default-rule results
    commits: int = 0
    squashes: int = 0
    squashed_tags: int = 0

    def register_metrics(self, registry,
                         prefix: str = "machine.tracker") -> None:
        """Expose the rule-application counters as ``<prefix>.*`` gauges."""
        registry.register_object(prefix, self, (
            "transfers", "wild_assignments", "zeroed", "commits",
            "squashes", "squashed_tags"))


class _RegTag:
    """PID tag of one architectural register: finalized + transient vector."""

    __slots__ = ("committed", "transient")

    def __init__(self) -> None:
        self.committed = 0
        self.transient: List[Tuple[int, int]] = []  # (seq, pid), seq ascending

    def current(self) -> int:
        return self.transient[-1][1] if self.transient else self.committed

    def write(self, seq: int, pid: int) -> None:
        self.transient.append((seq, pid))

    def commit_upto(self, seq: int) -> None:
        """Fold transients with sequence number <= seq into the finalized PID."""
        kept = 0
        for entry_seq, pid in self.transient:
            if entry_seq <= seq:
                self.committed = pid
                kept += 1
            else:
                break
        if kept:
            del self.transient[:kept]

    def squash_after(self, seq: int) -> int:
        """Drop transients younger than ``seq``; returns how many dropped."""
        keep = len(self.transient)
        while keep and self.transient[keep - 1][0] > seq:
            keep -= 1
        dropped = len(self.transient) - keep
        if dropped:
            del self.transient[keep:]
        return dropped


class SpeculativePointerTracker:
    """Front-end PID tracking over the extended (arch + temp) register file."""

    def __init__(self, rules: Optional[RuleDatabase] = None) -> None:
        self.rules = rules if rules is not None else RuleDatabase.table1()
        self._tags = [_RegTag() for _ in range(NUM_UREGS)]
        # Registers with outstanding transients: commit/squash only touch
        # these (hot path — commit runs once per macro instruction).
        self._dirty: set = set()
        self.stats = TrackerStats()

    # -- tag access -----------------------------------------------------------

    def current_pid(self, reg: int) -> int:
        """The speculative PID of ``reg`` (highest-sequence transient)."""
        return self._tags[reg].current()

    def committed_pid(self, reg: int) -> int:
        return self._tags[reg].committed

    def set_pid(self, reg: int, pid: int, seq: int) -> None:
        """Record a (speculative) capability transfer into ``reg``."""
        self._tags[reg].transient.append((seq, pid))
        self._dirty.add(reg)

    def base_pid(self, uop: Uop) -> int:
        """PID of the addressing base register of a memory uop (0 if none).

        Disp-only operands model PC-relative accesses into the binary image
        (constant-pool loads); those are untracked — the *wild* path is
        reserved for register-held constant addresses produced by the MOVI
        rule (Section VII-B distinguishes exactly these two idioms).
        """
        if uop.mem is None or uop.mem.base is None:
            return 0
        return self.current_pid(int(uop.mem.base))

    # -- rule application --------------------------------------------------------

    def apply(self, uop: Uop, seq: int):
        """Apply the rule database to one decoded micro-op.

        Returns one of:

        * ``None`` — no destination PID action (flag-only ops, branches);
        * :data:`MEMORY_POLICY` — the machine must resolve via the alias
          subsystem (LD destination / ST source);
        * an ``int`` PID — already written to the destination tag.

        The policy dispatch mirrors :meth:`RuleDatabase.propagate` but
        reads only the operand tags the selected policy actually consumes
        (this runs once per tracked micro-op — the hot path).
        """
        rules = self.rules
        rule = rules.lookup(uop)
        policy = rule.propagation if rule else rules.default_propagation
        if policy is Propagation.ZERO:
            pid = 0
        elif policy is Propagation.COPY_SRC or policy is Propagation.FIRST_SRC:
            srcs = uop.srcs
            pid = self._tags[srcs[0]].current() if srcs else 0
        elif policy is Propagation.NONZERO_SRC:
            tags = self._tags
            srcs = uop.srcs
            first = tags[srcs[0]].current() if srcs else 0
            second = tags[srcs[1]].current() if len(srcs) > 1 else 0
            if first == 0:
                pid = second
            elif second == 0 or first != WILD_PID:
                pid = first
            else:
                pid = second
        elif policy is Propagation.BASE_REG:
            mem = uop.mem
            pid = 0
            if mem is not None and mem.base is not None:
                pid = self._tags[int(mem.base)].current()
        elif policy is Propagation.WILD:
            pid = WILD_PID
        else:  # FROM_MEMORY / TO_MEMORY
            return MEMORY_POLICY
        if uop.dst is None:
            return None
        self.set_pid(uop.dst, pid, seq)
        if pid == WILD_PID:
            self.stats.wild_assignments += 1
        elif pid:
            self.stats.transfers += 1
        else:
            self.stats.zeroed += 1
        return pid

    # -- speculation management ------------------------------------------------------

    def commit(self, seq: int) -> None:
        """All instructions with sequence number <= ``seq`` have committed."""
        self.stats.commits += 1
        dirty = self._dirty
        if not dirty:
            return
        tags = self._tags
        # Common case at end-of-instruction commit: every transient is old
        # enough, every tag drains wholesale, and the dirty set empties —
        # tracked via ``partial`` staying None so no per-commit list is
        # allocated.
        partial = None
        for reg in dirty:
            tag = tags[reg]
            transient = tag.transient
            if transient[-1][0] <= seq:
                tag.committed = transient[-1][1]
                transient.clear()
            else:
                tag.commit_upto(seq)
                if transient:
                    if partial is None:
                        partial = [reg]
                    else:
                        partial.append(reg)
        dirty.clear()
        if partial is not None:
            dirty.update(partial)

    def squash(self, seq: int) -> None:
        """Misprediction recovery: discard transient state younger than
        the offending instruction (Section V-D)."""
        self.stats.squashes += 1
        clean = []
        for reg in self._dirty:
            tag = self._tags[reg]
            self.stats.squashed_tags += tag.squash_after(seq)
            if not tag.transient:
                clean.append(reg)
        self._dirty.difference_update(clean)

    def snapshot(self) -> Dict[int, int]:
        """Current speculative PID of every register with a non-zero tag."""
        return {
            reg: tag.current()
            for reg, tag in enumerate(self._tags)
            if tag.current()
        }
