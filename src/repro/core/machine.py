"""The CHEx86 machine: functional execution + CHEx86 protection + timing.

One :class:`Chex86Machine` is one core.  It executes a program at micro-op
granularity, running the paper's whole stack in the right places:

* **front end** — fetch, heap-function interception (MCU), CISC-to-RISC
  decode, Table I rule application by the speculative pointer tracker,
  reload prediction, and ``capCheck`` injection;
* **back end** — functional execution of every micro-op (including the
  capability micro-ops against the shadow capability table), alias-table
  resolution with misprediction classification, and the scoreboard timing
  model;
* **commit** — PID tag finalization, store-buffer drain into the alias
  structures, and invalidation broadcast in multi-core systems.

Wrong paths are not executed; their cost is charged as squash penalty
cycles (see ``repro.pipeline.timing``), and the tracker/store-buffer squash
logic is exercised with the offending sequence numbers exactly as the
recovery hardware would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..heap.allocator import HOSTOP_UOP_COST
from ..heap.library import host_dispatch_table, registrations_for
from ..isa.instructions import INSTR_SLOT, Instr, Op
from ..isa.program import Program, STACK_TOP
from ..isa.registers import MASK64, RET_REG, Flag, Reg, compute_flags, to_s64
from ..memory.cache import SetAssocCache
from ..memory.tlb import Tlb
from ..microop.decoder import Decoder, DecodePath
from ..microop.uops import AluOp, NUM_UREGS, Uop, UopKind
from ..pipeline.branch import FrontEndPredictors
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..pipeline.timing import FuType, TimingModel
from ..telemetry.registry import MERGE_LAST, MetricsRegistry
from ..telemetry.tracer import EventTracer
from .alias import AliasCache, StoreBufferPids, WALK_LEVELS
from .capability import CAPABILITY_BYTES, WILD_PID
from .checker import HardwareChecker
from .fastpath import (
    DecodedBlock,
    Superblock,
    compile_block,
    compile_superblock,
)
from .mcu import (
    CHECK_INJECT,
    CHECK_SUPPRESS,
    MicrocodeCustomizationUnit,
)
from .predictor import MispredictKind, PointerReloadPredictor
from .sbcompile import compile_replay
from .rules import MEMORY_POLICY, RuleDatabase
from .tracker import SpeculativePointerTracker
from .variants import CheckPolicy, Variant, traits_of
from .violations import CapabilityException, Violation, ViolationKind, ViolationLog

_RSP = int(Reg.RSP)
_RAX = int(RET_REG)

#: Middle setting of the 3-way ``block_cache_enabled`` knob: cache and
#: replay per-instruction :class:`DecodedBlock`\ s but never form
#: superblocks.  ``True`` (the default) additionally compiles and
#: replays superblocks; any falsy value forces the slow path (every
#: dynamic instruction recompiles its block).
BLOCK_CACHE_BLOCKS = "blocks"


class MachineError(Exception):
    """The simulated machine reached a state it cannot continue from."""


@dataclass
class RunResult:
    """Everything a run produced, with the derived metrics the paper plots."""

    program: str
    variant: Variant
    halted: bool
    instructions: int
    uops: int
    native_uops: int
    injected_uops: int
    cycles: int
    violations: ViolationLog
    machine: "Chex86Machine"

    # Ratio accessors follow the repo-wide zero-denominator convention:
    # a run that executed nothing yields 0.0, never ZeroDivisionError.

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def uop_expansion(self) -> float:
        """Dynamic uops relative to the native translation (>= 1.0 for
        any run that executed; 0.0 when nothing was decoded)."""
        return self.uops / self.native_uops if self.native_uops else 0.0

    @property
    def flagged(self) -> bool:
        return self.violations.flagged

    def normalized_performance(self, baseline_cycles: int) -> float:
        """Figure 6 top: baseline time / this time (1.0 = no slowdown)."""
        return baseline_cycles / self.cycles if self.cycles else 0.0


class Chex86Machine:
    """One simulated core running one program under a chosen variant."""

    def __init__(
        self,
        program: Program,
        variant: Variant = Variant.UCODE_PREDICTION,
        config: CoreConfig = DEFAULT_CONFIG,
        system: Optional["System"] = None,
        rules: Optional[RuleDatabase] = None,
        critical_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        halt_on_violation: bool = True,
        enable_checker: bool = False,
        host_hooks: Optional[Dict[str, Callable]] = None,
        profile_interval: int = 100_000,
        stack_base: int = STACK_TOP,
        entry_label: Optional[str] = None,
    ) -> None:
        self.program = program
        self.variant = variant
        self.traits = traits_of(variant)
        self.config = config
        if system is None:
            # Deferred import: pipeline.system itself imports core modules.
            from ..pipeline.system import System
            system = System(config)
        self.system = system
        self.core_id = self.system.register_core(self)
        self.memory = self.system.memory
        self.allocator = self.system.allocator
        self.captable = self.system.captable
        self.alias_table = self.system.alias_table
        self.halt_on_violation = halt_on_violation
        self.violations = ViolationLog()

        # Architectural state (extended with the two microcode temporaries).
        self.regs: List[int] = [0] * NUM_UREGS
        self.flags = Flag(0)
        self.rip = (program.labels[entry_label] if entry_label is not None
                    else program.entry)
        self.regs[_RSP] = stack_base - 8 * 16  # leave a guard gap at the top
        self.regs[int(Reg.RBP)] = self.regs[_RSP]

        # Front end.
        self.decoder = Decoder()
        self.predictors = FrontEndPredictors(config.btb_entries,
                                             config.ras_entries)
        self.tracker = SpeculativePointerTracker(
            rules if rules is not None else RuleDatabase.table1())
        self.reload_predictor = PointerReloadPredictor(config.predictor_entries)
        self.mcu = MicrocodeCustomizationUnit(
            registrations_for(program), self.traits, critical_ranges)

        # Per-core shadow caches and TLB.
        self.capcache = SetAssocCache(config.capcache_entries,
                                      config.capcache_entries,  # fully assoc.
                                      line_shift=0, name="capcache")
        self.alias_cache = AliasCache(config.aliascache_entries,
                                      config.aliascache_ways,
                                      config.alias_victim_entries)
        self.store_buffer = StoreBufferPids(config.sq_entries)
        self.tlb = Tlb(config.dtlb_entries, config.dtlb_ways,
                       hosting=self.system.alias_hosting_pages)

        # Timing.
        self.timing = TimingModel(config, self.system.l2,
                                  name=f"core{self.core_id}")

        # Host escape table (the heap library's implementation).
        self.host_table = host_dispatch_table(self.allocator)
        if host_hooks:
            self.host_table.update(host_hooks)

        # Checker co-processor (rule auto-construction workflow).
        self.checker = HardwareChecker(self.captable) if enable_checker else None

        # Hot-loop caches: variant/config facts that never change per run.
        self._tracks = self.traits.tracks_pointers
        self._validate = self._tracks and self.checker is not None
        self._tracked_policy = self.traits.check_policy is CheckPolicy.TRACKED
        self._lsu = self.mcu.lsu_checks()
        self._lsu_latency = config.lsu_check_latency
        self._br_penalty = config.branch_mispredict_penalty
        self._flush_penalty = config.alias_flush_penalty
        self._capcheck_latency = config.capcheck_latency
        self._captable_latency = config.captable_latency
        self._walk_latency = config.alias_walk_level_latency * WALK_LEVELS

        # Decoded-block fast path: per-pc precompiled front-end plans and
        # the UopKind-indexed execute dispatch table (built once per core).
        # block_cache_enabled is a 3-way knob: True (default) also forms
        # and replays superblocks; BLOCK_CACHE_BLOCKS caches per-
        # instruction blocks only; any falsy value forces the slow path —
        # every dynamic instruction recompiles its block.  All three must
        # be behaviourally identical (the differential fuzz suite's
        # oracle).
        self.block_cache_enabled = True
        self._blocks_compiled = 0
        self._blocks: Dict[int, DecodedBlock] = {}
        # Superblock replay state: per-entry-pc compiled chains (None is
        # cached too, marking pcs where formation failed so the quantum
        # loop does not retry them), plus the frontend.* coverage
        # counters.  fallback_instructions counts every instruction
        # retired through step() so that superblock_instructions +
        # fallback_instructions == instructions holds exactly.
        self._superblocks: Dict[int, Optional[Superblock]] = {}
        self._superblocks_compiled = 0
        self._superblock_instructions = 0
        self._superblock_bailouts = 0
        self._fallback_instructions = 0
        self._dispatch: Dict[UopKind, Callable] = {
            UopKind.LD: self._exec_load,
            UopKind.ST: self._exec_store,
            UopKind.ALU: self._exec_alu,
            UopKind.LIMM: self._exec_limm,
            UopKind.MOV: self._exec_mov,
            UopKind.LEA: self._exec_lea,
            UopKind.BR: self._exec_br,
            UopKind.JMP: self._exec_jmp,
            UopKind.JMP_IND: self._exec_jmp_ind,
            UopKind.CAPCHECK: self._exec_capcheck,
            UopKind.CAPGEN_BEGIN: self._exec_capgen_begin,
            UopKind.CAPGEN_END: self._exec_capgen_end,
            UopKind.CAPFREE_BEGIN: self._exec_capfree_begin,
            UopKind.CAPFREE_END: self._exec_capfree_end,
            UopKind.HOSTOP: self._exec_hostop,
            UopKind.NOP: self._exec_nop,
            UopKind.ZERO_IDIOM: self._exec_zero_idiom,
            UopKind.HALT: self._exec_halt,
        }

        # Capability event state (pending two-step generations/frees).
        self._pending_gens: List[int] = []
        self._pending_frees: List[int] = []

        # Bookkeeping.
        self._seq = 0
        self.instructions = 0
        self.native_uops = 0
        self.total_uops = 0
        self.halted = False
        self._global_pids: Dict[str, int] = {}

        # Figure 3 profiling: distinct PIDs dereferenced per interval.
        self.profile_interval = profile_interval
        self._interval_pids: Set[int] = set()
        self.interval_pid_counts: List[int] = []

        # Table II profiling: (pc, pid) trace of pointer-reload events.
        self.trace_reloads = False
        self.reload_trace: List[Tuple[int, int]] = []

        # SimPoint-style profiling: per-interval basic-block (instruction
        # execution frequency) vectors.  Enabled by setting bbv_interval.
        self.bbv_interval: int = 0
        self.bbv_vectors: List[Dict[int, int]] = []
        self._bbv_current: Dict[int, int] = {}

        # Execution tracing: set trace_limit > 0 to record the first N
        # (pc, instruction) steps for debugging; format with format_trace().
        # The trace list must exist before the trace_limit property setter
        # recomputes the hoisted _trace_active flag.
        self.execution_trace: List[Tuple[int, Instr]] = []
        self.trace_limit = 0

        # Telemetry: the pull-based metrics registry reads the plain-int
        # stats counters above only when a snapshot is taken, so the hot
        # loop never pays for it.  The event tracer is off (None) until
        # attach_tracer(); emit sites test `self._tracer is not None`.
        self.telemetry = MetricsRegistry()
        self._register_metrics(self.telemetry)
        self._tracer: Optional[EventTracer] = None
        # Provenance recorder (telemetry.provenance); None until
        # enable_provenance().  Emit sites test `self._prov is not None`
        # so the disarmed hot path pays one identity check per site.
        self._prov: Optional["ProvenanceRecorder"] = None
        self._quantum_metrics = False
        self._quantum_base: Optional[Dict[str, float]] = None
        self.quantum_deltas: List[Dict[str, float]] = []

        self._load_program()

    # ------------------------------------------------------------------ load

    def _load_program(self) -> None:
        """Load globals, seed capabilities for symbol-table objects, and
        seed alias entries for the constant-pool slots.

        In a multicore system the program image and shadow state are
        per-process: the first core to attach performs the load, later
        cores just pick up the global PID map.
        """
        key = id(self.program)
        already = self.system.loaded_programs.get(key)
        if already is not None:
            self._global_pids = already
            return
        for obj in self.program.globals:
            if obj.init_words:
                self.memory.fill_words(obj.address, obj.init_words)
        if self.traits.intercepts_heap:
            for obj in self.program.symbol_table():
                pid = self.captable.register_global(obj.address, obj.size)
                self._global_pids[obj.name] = pid
            for obj in self.program.globals:
                if obj.pool_for is not None \
                        and obj.pool_for in self._global_pids:
                    self.alias_table.set(obj.address,
                                         self._global_pids[obj.pool_for])
                    self.tlb.mark_alias_hosting(obj.address)
        self.system.loaded_programs[key] = self._global_pids

    def global_pid(self, name: str) -> int:
        """PID assigned to a symbol-table global at load (0 if untracked)."""
        return self._global_pids.get(name, 0)

    # ------------------------------------------------------------- tracing

    @property
    def trace_limit(self) -> int:
        """Record the first N ``(pc, instr)`` steps (0 disables tracing).

        Stored behind a property so the per-step check is one precomputed
        boolean (``_trace_active``) instead of a limit comparison against
        ``len(execution_trace)`` on every instruction; the setter (also
        hit by snapshot restore) recomputes it.
        """
        return self._trace_limit

    @trace_limit.setter
    def trace_limit(self, value: int) -> None:
        self._trace_limit = value
        self._trace_active = bool(value) \
            and len(self.execution_trace) < value

    # ------------------------------------------------------------- telemetry

    def _register_metrics(self, registry: MetricsRegistry) -> None:
        """Wire every subsystem's stats into the metrics registry.

        The hierarchical naming scheme (docs/observability.md):
        ``machine.*`` (front-end/commit counts and the MCU/tracker),
        ``predictor.*``, ``cache.{cap,alias,l1i,l1d}.*``, ``timing.*``,
        ``heap.*`` (system-shared, merge=last), ``shadow.*`` and
        ``violations.*``.  Derived paper metrics (uop expansion, miss
        rates, accuracy, squash fraction, IPC) are ratio metrics, so
        merged/differenced snapshots recompute them correctly.
        """
        registry.register_object("machine", self, {
            "instructions": "instructions",
            "uops": "total_uops",
            "native_uops": "native_uops",
        })
        registry.ratio("machine.ipc", "machine.instructions",
                       "timing.cycles")
        registry.ratio("machine.uop_expansion", "machine.uops",
                       "machine.native_uops")
        registry.register_object("frontend", self, {
            "blocks_compiled": "_blocks_compiled",
            "superblocks_compiled": "_superblocks_compiled",
            "superblock_instructions": "_superblock_instructions",
            "superblock_bailouts": "_superblock_bailouts",
            "fallback_instructions": "_fallback_instructions",
        })
        registry.ratio("frontend.superblock_coverage",
                       "frontend.superblock_instructions",
                       "machine.instructions")
        self.mcu.stats.register_metrics(registry, "machine.mcu")
        self.tracker.stats.register_metrics(registry, "machine.tracker")
        self.reload_predictor.stats.register_metrics(registry, "predictor")
        self.capcache.stats.register_metrics(registry, "cache.cap")
        self.alias_cache.stats.register_metrics(registry, "cache.alias")
        self.timing.register_metrics(registry, "timing")
        self.allocator.stats.register_metrics(registry, "heap")
        registry.gauge("shadow.bytes",
                       lambda machine=self: machine.system.shadow_bytes,
                       merge=MERGE_LAST)
        registry.gauge("shadow.capabilities",
                       lambda machine=self: len(machine.captable),
                       merge=MERGE_LAST)
        registry.gauge("shadow.live_aliases",
                       lambda machine=self: machine.alias_table.live_entries,
                       merge=MERGE_LAST)
        registry.gauge("violations.count",
                       lambda machine=self: machine.violations.count())
        # Per-kind detection profile (dotted violations.<kind> family)
        # with the CWE id attached as metadata, so sweep diffs can name
        # which weakness classes a config change gained or lost.
        for kind in ViolationKind:
            registry.gauge(
                f"violations.{kind.value}",
                lambda machine=self, kind=kind: machine.violations.count(kind),
                meta={"cwe": kind.cwe})

    def metrics_snapshot(self) -> Dict[str, float]:
        """Finalized snapshot of every registered metric (finishes the
        timing model first so ``timing.cycles`` is current)."""
        self.timing.finish()
        return self.telemetry.snapshot()

    def snapshot(self) -> bytes:
        """Serialize the complete machine state (see ``core.snapshot``).

        Only legal at an instruction boundary (between ``step()`` calls);
        the restored machine continues the run exactly from here.
        """
        from .snapshot import capture, to_bytes

        return to_bytes(capture(self))

    @classmethod
    def restore(cls, data: bytes) -> "Chex86Machine":
        """Reconstruct a machine from :meth:`snapshot` bytes.

        Raises ``SnapshotSchemaError`` when the snapshot was written by
        an incompatible version of the serializer.
        """
        from .snapshot import restore as _restore

        return _restore(data)

    def flush_profiling_intervals(self) -> None:
        """Append any trailing partial profiling interval.

        ``step()`` appends an interval's accumulator only at exact
        interval boundaries, so a run whose length is not a multiple of
        the interval ends with unrecorded state.  This flush is
        idempotent and safe on a boundary: at an exact boundary (or
        after a previous flush) the accumulator is already empty, so
        calling it twice never double-appends.  An *empty* trailing
        partial is not recorded — only boundary-complete intervals may
        carry a zero count, matching the accounting the Figure 3
        profiler has always used.
        """
        if self.profile_interval and self._interval_pids:
            self.interval_pid_counts.append(len(self._interval_pids))
            self._interval_pids = set()
        if self.bbv_interval and self._bbv_current:
            self.bbv_vectors.append(self._bbv_current)
            self._bbv_current = {}

    def attach_tracer(self, tracer: EventTracer) -> EventTracer:
        """Start streaming structured events into ``tracer``."""
        self._tracer = tracer
        return tracer

    def detach_tracer(self) -> Optional[EventTracer]:
        tracer, self._tracer = self._tracer, None
        return tracer

    def enable_provenance(self, history_limit: int = 16):
        """Arm context-sensitive provenance recording (default off).

        Returns the :class:`~repro.telemetry.provenance.ProvenanceRecorder`
        now tracking this machine.  Armed machines bail out of superblock
        replay into exact per-instruction execution (like the tracer), so
        architectural results are identical — only timing-of-recording
        differs.  Idempotent: re-enabling returns the live recorder.
        """
        if self._prov is None:
            from ..telemetry.provenance import ProvenanceRecorder
            self._prov = ProvenanceRecorder(self.program,
                                            history_limit=history_limit)
        return self._prov

    def disable_provenance(self):
        """Detach and return the recorder (None if never enabled)."""
        recorder, self._prov = self._prov, None
        return recorder

    @property
    def provenance(self):
        """The armed provenance recorder, or None."""
        return self._prov

    def enable_quantum_metrics(self) -> None:
        """Record a metrics delta at every ``run_quantum`` boundary.

        Each entry of :attr:`quantum_deltas` covers exactly one quantum:
        counters are differenced against the previous boundary and ratio
        metrics recomputed over the interval, so a quantum's miss rate is
        *its* miss rate, not the cumulative one.
        """
        self._quantum_metrics = True
        self._quantum_base = self.metrics_snapshot()

    def _record_quantum(self) -> None:
        snapshot = self.metrics_snapshot()
        self.quantum_deltas.append(
            self.telemetry.delta(self._quantum_base, snapshot))
        self._quantum_base = snapshot

    def stats_summary(self) -> str:
        """Human-readable digest of every subsystem's statistics.

        Rendered from the metrics registry: the snapshot is the single
        source, and this is just one formatting of it (byte-identical to
        the historical hand-assembled summary).
        """
        snap = self.metrics_snapshot()
        lines = [
            f"program {self.program.name!r} under {self.variant.value}:",
            f"  instructions  {snap['machine.instructions']:>12,}   "
            f"uops {snap['machine.uops']:,} "
            f"({snap['machine.mcu.injected_uops']:,} injected)",
            f"  cycles        {snap['timing.cycles']:>12,}   "
            f"IPC {snap['machine.ipc']:.2f}",
            f"  capability$   {snap['cache.cap.accesses']:>12,} accesses, "
            f"{snap['cache.cap.miss_rate']:.1%} miss",
            f"  alias$        {snap['cache.alias.accesses']:>12,} accesses, "
            f"{snap['cache.alias.miss_rate']:.1%} miss",
            f"  reload pred.  {snap['predictor.lookups']:>12,} lookups, "
            f"{snap['predictor.accuracy']:.1%} accurate "
            f"(P0AN {snap['predictor.p0an']} / PNA0 {snap['predictor.pna0']} "
            f"/ PMAN {snap['predictor.pman']})",
            f"  squash        {snap['timing.squash_fraction']:>11.1%} of time "
            f"({snap['timing.alias_squash_cycles']:,} alias cycles)",
            f"  heap          {snap['heap.total_allocs']:,} allocs, "
            f"{snap['heap.total_frees']:,} frees, "
            f"peak live {snap['heap.max_live']:,}",
            f"  shadow        {snap['shadow.bytes']:,} B "
            f"({snap['shadow.capabilities']} capabilities, "
            f"{snap['shadow.live_aliases']} live aliases)",
            f"  violations    {snap['violations.count']:,}",
        ]
        return "\n".join(lines)

    def format_trace(self) -> str:
        """Render the recorded execution trace (see ``trace_limit``)."""
        from ..isa.disasm import format_instr

        labels_by_address = {addr: name
                             for name, addr in self.program.labels.items()}
        lines = []
        for pc, instr in self.execution_trace:
            label = labels_by_address.get(pc)
            prefix = f"{label}: " if label and instr.label == label else ""
            lines.append(f"{pc:#x}:  {prefix}"
                         f"{format_instr(instr, labels_by_address)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------- run

    def run_quantum(self, budget: int) -> int:
        """Execute up to ``budget`` macro instructions (multicore timeslice).

        A trapping violation halts the core and is recorded.  Returns the
        number of instructions actually executed.

        In the default superblock mode (``block_cache_enabled is True``)
        the loop replays whole compiled superblocks with one dispatch per
        chain.  A superblock is entered only when replaying it in full is
        exactly equivalent to per-instruction stepping: the remaining
        budget covers its length, no execution trace or event tracer is
        active, and no ``profile_interval``/``bbv_interval`` boundary
        lands inside it.  Everything else — including a trapping
        ``CapabilityException`` mid-chain, which unwinds to the trapping
        member — takes the per-instruction path.
        """
        start = self.instructions
        executed = 0
        try:
            if self.block_cache_enabled is True:
                superblocks = self._superblocks
                profile_interval = self.profile_interval
                while not self.halted and executed < budget:
                    pc = self.rip
                    try:
                        sb = superblocks[pc]
                    except KeyError:
                        sb = superblocks[pc] = self._compile_superblock(pc)
                    if sb is not None:
                        n = sb.length
                        bbv = self.bbv_interval
                        if (n <= budget - executed
                                and not self._trace_active
                                and self._tracer is None
                                and self._prov is None
                                and self.instructions % profile_interval + n
                                    < profile_interval
                                and (not bbv or
                                     self.instructions % bbv + n < bbv)):
                            replay = sb.replay
                            executed += (replay(self) if replay is not None
                                         else self._step_superblock(sb))
                            continue
                        self._superblock_bailouts += 1
                    self.step()
                    executed += 1
            else:
                while not self.halted and executed < budget:
                    self.step()
                    executed += 1
        except CapabilityException as exc:
            self.violations.record(exc.violation)
            self.halted = True
            # Members a trapping superblock retired before the violation
            # still count as executed (they committed normally).
            executed = self.instructions - start
        if self._quantum_metrics:
            self._record_quantum()
        return executed

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Execute until ``halt``, a trapping violation, or the budget."""
        self.run_quantum(max_instructions)
        stats = self.timing.finish()
        return RunResult(
            program=self.program.name,
            variant=self.variant,
            halted=self.halted,
            instructions=self.instructions,
            uops=self.total_uops,
            native_uops=self.native_uops,
            injected_uops=self.mcu.stats.injected_uops,
            cycles=stats.cycles,
            violations=self.violations,
            machine=self,
        )

    def step(self) -> None:
        """Fetch, decode, instrument, and execute one macro instruction.

        The front end runs through the decoded-block fast path: the first
        visit to a pc compiles its full front-end product (decode +
        interception + check-injection plan) into a :class:`DecodedBlock`;
        every later visit replays the plan and only consults the live
        tracker state (base-register PIDs) where the paper's prediction
        policy demands it.
        """
        pc = self.rip
        block = self._blocks.get(pc)
        if block is None:
            block = self._compile_block(pc)
        if self._trace_active:
            trace = self.execution_trace
            trace.append((pc, block.instr))
            if len(trace) >= self._trace_limit:
                self._trace_active = False

        # Per-dynamic-instance front-end accounting (decode counters,
        # heap-interception events) — identical to re-decoding every step.
        dstats = self.decoder.stats
        dstats.macro_ops += 1
        dstats.native_uops += block.native_uops
        path = block.path
        if path is DecodePath.SIMPLE:
            dstats.simple += 1
        elif path is DecodePath.COMPLEX:
            dstats.complex += 1
        else:
            dstats.msrom += 1
        self.native_uops += block.native_uops
        mcu = self.mcu
        if block.intercept_deltas is not None:
            mcu.apply_intercept_stats(block.intercept_deltas)
            if self._tracer is not None:
                self._tracer.emit(self.timing.now, "uop_inject", pc,
                                  uops=block.intercept_deltas[4])
            if self._prov is not None:
                self._prov.on_inject(pc, block.intercept_deltas[4])
        self.timing.begin_macro(pc, block.fetch_slots, block.msrom)

        next_rip = block.fallthrough
        mstats = mcu.stats
        tracker = self.tracker
        seq = self._seq
        uops = 0
        # The sequence number and uop count advance in locals and sync back
        # in the finally block, so a trapping violation mid-instruction
        # still leaves the machine state exact.
        try:
            for handler, uop, base_reg, mode, check in block.entries:
                # ---- front end: pointer tracking + check injection --------
                if mode:
                    base_pid = tracker.current_pid(base_reg) \
                        if base_reg >= 0 else 0
                    if check is not None:
                        # An injection site; the *_IF_PID mode defers to the
                        # live tracker tag (prediction-driven policy).
                        if mode == CHECK_INJECT or base_pid:
                            mstats.injected_uops += 1
                            mstats.capchecks += 1
                            if self._prov is not None:
                                self._prov.on_inject(pc, 1)
                            check.pid = base_pid
                            seq += 1
                            uops += 1
                            self._exec_capcheck(check, pc, seq)
                            if self.halted:
                                break
                    elif mode == CHECK_SUPPRESS or base_pid:
                        # Context-sensitive mode outside the critical ranges.
                        mstats.capchecks_suppressed_context += 1

                seq += 1
                uops += 1
                target = handler(uop, pc, seq)
                if target is not None:
                    next_rip = target
                if self.halted:
                    break
        finally:
            self._seq = seq
            self.total_uops += uops

        # ---- commit ----------------------------------------------------------
        self.instructions += 1
        self._fallback_instructions += 1
        if self._tracks:
            tracker.commit(seq)
            if self.store_buffer._pending:
                committed = self.store_buffer.commit_upto(
                    seq, self.alias_table, self.alias_cache)
                for address, pid in committed:
                    if pid:
                        self.tlb.mark_alias_hosting(address)
                    self.system.broadcast_alias_invalidate(
                        address, self.core_id)
        if self.instructions % self.profile_interval == 0:
            self.interval_pid_counts.append(len(self._interval_pids))
            self._interval_pids = set()
        if self.bbv_interval:
            macro_index = block.macro_index
            self._bbv_current[macro_index] = \
                self._bbv_current.get(macro_index, 0) + 1
            if self.instructions % self.bbv_interval == 0:
                self.bbv_vectors.append(self._bbv_current)
                self._bbv_current = {}
        self.rip = next_rip

    def _compile_block(self, pc: int) -> DecodedBlock:
        try:
            block = compile_block(self, pc)
        except ValueError as exc:
            raise MachineError(
                f"control transfer outside text: rip={pc:#x}") from exc
        self._blocks_compiled += 1
        if self.block_cache_enabled:
            self._blocks[pc] = block
        return block

    def _block_at(self, pc: int) -> Optional[DecodedBlock]:
        """The decoded block at ``pc``, or None when pc is outside the
        text section (superblock formation stops instead of trapping —
        falling through into bad pcs must fault on the slow path)."""
        block = self._blocks.get(pc)
        if block is None:
            try:
                block = self._compile_block(pc)
            except MachineError:
                return None
        return block

    def _compile_superblock(self, pc: int) -> Optional[Superblock]:
        superblock = compile_superblock(self, pc)
        if superblock is not None:
            self._superblocks_compiled += 1
            superblock.replay = compile_replay(self, superblock)
        return superblock

    def _step_superblock(self, sb: Superblock) -> int:
        """Replay one compiled superblock (the multi-instruction path).

        Mirrors :meth:`step` member by member — fetch-group/icache
        charges, live tracker-dependent check injection, and the
        per-member tracker/store-buffer commit all stay interleaved in
        program order — while the bookkeeping nothing reads mid-chain
        (decode counters, ``instructions``, ``timing.macro_ops``, BBV
        counts) is applied as one batched delta by
        :meth:`_retire_members`.  A trapping ``CapabilityException``
        unwinds to exactly the state the per-instruction path would
        leave: completed members retired, the trapping member's
        front-end charges applied but its retire skipped, and ``rip`` at
        the trapping pc.  Returns the number of members retired.
        """
        fetch_block = self.timing.fetch_block
        tracker = self.tracker
        tracks = self._tracks
        store_buffer = self.store_buffer
        mstats = self.mcu.stats
        members = sb.members
        seq = self._seq
        uops = 0
        retired = 0
        next_rip = self.rip
        try:
            # The loop target binds each member's fallthrough to next_rip
            # before its body runs; control uops overwrite it below.
            for pc, slots, line, entries, next_rip in members:
                fetch_block(slots, line)
                for handler, uop, base_reg, mode, check in entries:
                    if mode:
                        base_pid = tracker.current_pid(base_reg) \
                            if base_reg >= 0 else 0
                        if check is not None:
                            if mode == CHECK_INJECT or base_pid:
                                mstats.injected_uops += 1
                                mstats.capchecks += 1
                                check.pid = base_pid
                                seq += 1
                                uops += 1
                                self._exec_capcheck(check, pc, seq)
                                if self.halted:
                                    break
                        elif mode == CHECK_SUPPRESS or base_pid:
                            mstats.capchecks_suppressed_context += 1
                    seq += 1
                    uops += 1
                    target = handler(uop, pc, seq)
                    if target is not None:
                        next_rip = target
                    if self.halted:
                        break
                if tracks:
                    tracker.commit(seq)
                    if store_buffer._pending:
                        committed = store_buffer.commit_upto(
                            seq, self.alias_table, self.alias_cache)
                        for address, pid in committed:
                            if pid:
                                self.tlb.mark_alias_hosting(address)
                            self.system.broadcast_alias_invalidate(
                                address, self.core_id)
                retired += 1
                if self.halted:
                    break
        except CapabilityException:
            # Slow unwind: the trapping member's fetch/decode charges
            # stand (as on the per-instruction path, which charges the
            # front end before executing), but it does not retire.
            self._superblock_bailouts += 1
            self._retire_members(sb, retired, retired + 1)
            self.rip = members[retired][0]
            raise
        finally:
            # Local seq/uop counts sync back even on a trap, exactly as
            # in step(), so mid-member state stays exact.
            self._seq = seq
            self.total_uops += uops
        self._retire_members(sb, retired, retired)
        self.rip = next_rip
        return retired

    def _retire_members(self, sb: Superblock, retired: int,
                        decoded: int) -> None:
        """Apply the batched bookkeeping for one superblock replay.

        ``decoded`` members incurred front-end charges (decode-path
        counters, native-uop counts, ``timing.macro_ops``); ``retired``
        members committed (``instructions``, BBV counts).  A full replay
        applies the precomputed O(1) aggregates; the trap/halt unwind
        recomputes the partial prefix from the member side table.
        """
        dstats = self.decoder.stats
        if decoded == sb.length:
            n_simple, n_complex, n_msrom = sb.decode_counts
            dstats.simple += n_simple
            dstats.complex += n_complex
            dstats.msrom += n_msrom
            dstats.native_uops += sb.native_uops
            self.native_uops += sb.native_uops
        else:
            for block in sb.blocks[:decoded]:
                path = block.path
                if path is DecodePath.SIMPLE:
                    dstats.simple += 1
                elif path is DecodePath.COMPLEX:
                    dstats.complex += 1
                else:
                    dstats.msrom += 1
                dstats.native_uops += block.native_uops
                self.native_uops += block.native_uops
        dstats.macro_ops += decoded
        self.timing.commit_macros(decoded)
        self.instructions += retired
        self._superblock_instructions += retired
        if self.bbv_interval:
            bbv = self._bbv_current
            for block in sb.blocks[:retired]:
                index = block.macro_index
                bbv[index] = bbv.get(index, 0) + 1

    def phase_counters(self) -> Dict[str, int]:
        """Flat per-phase cycle/uop counters (the ``--profile`` surface).

        Groups the front-end, issue, memory, and commit statistics that the
        hot loop accumulates, plus fast-path coverage, keyed
        ``phase.counter`` for stable JSON emission.
        """
        timing = self.timing.finish()
        decode = self.decoder.stats
        mstats = self.mcu.stats
        counters = {
            "frontend.fetch_groups": timing.fetch_groups,
            "frontend.icache_misses": timing.icache_misses,
            "frontend.blocks_compiled": self._blocks_compiled,
            "frontend.superblocks_compiled": self._superblocks_compiled,
            "frontend.superblock_instructions": self._superblock_instructions,
            "frontend.superblock_bailouts": self._superblock_bailouts,
            "frontend.fallback_instructions": self._fallback_instructions,
            "decode.macro_ops": decode.macro_ops,
            "decode.simple": decode.simple,
            "decode.complex": decode.complex,
            "decode.msrom": decode.msrom,
            "decode.native_uops": decode.native_uops,
            "decode.injected_uops": mstats.injected_uops,
            "decode.capchecks": mstats.capchecks,
            "decode.capchecks_suppressed": mstats.capchecks_suppressed_context,
            "execute.uops": timing.uops,
            "execute.loads": timing.loads,
            "execute.stores": timing.stores,
            "memory.l1d_misses": timing.l1d_misses,
            "memory.l2_misses": timing.l2_misses,
            "memory.dram_bytes": timing.dram_bytes,
            "memory.shadow_dram_bytes": timing.shadow_dram_bytes,
            "commit.instructions": self.instructions,
            "commit.cycles": timing.cycles,
            "commit.squash_cycles": timing.squash_cycles,
            "commit.branch_squash_cycles": timing.branch_squash_cycles,
            "commit.alias_squash_cycles": timing.alias_squash_cycles,
            "commit.rob_stall_events": timing.rob_stall_events,
        }
        for name, count in zip(FuType.NAMES, timing.fu_uops):
            counters[f"execute.fu_{name}_uops"] = count
        return counters

    # ------------------------------------------------------------ uop execute

    def _execute_uop(self, uop: Uop, pc: int, seq: int,
                     base_pid: int = 0) -> Optional[int]:
        """Execute one micro-op functionally and charge its timing.

        Dispatches through the per-kind handler table (the fast path calls
        the handlers directly).  Returns a control-flow target when the uop
        redirects fetch.
        """
        handler = self._dispatch.get(uop.kind)
        if handler is None:
            raise MachineError(f"unknown uop kind {uop.kind}")
        return handler(uop, pc, seq)

    def _exec_limm(self, uop: Uop, pc: int, seq: int) -> None:
        self.regs[uop.dst] = uop.imm & MASK64
        if self._tracks:
            self.tracker.apply(uop, seq)
        self.timing.schedule((), uop.dst, 1)
        if self._validate:
            self._check_rule(uop, pc)

    def _exec_mov(self, uop: Uop, pc: int, seq: int) -> None:
        self.regs[uop.dst] = self.regs[uop.srcs[0]]
        if self._tracks:
            self.tracker.apply(uop, seq)
        self.timing.schedule(uop.srcs, uop.dst, 1)
        if self._validate:
            self._check_rule(uop, pc)

    def _exec_lea(self, uop: Uop, pc: int, seq: int) -> None:
        self.regs[uop.dst] = self._effective_address(uop)
        if self._tracks:
            self.tracker.apply(uop, seq)
        self.timing.schedule(uop.reg_reads(), uop.dst, 1)
        if self._validate:
            self._check_rule(uop, pc)

    def _exec_nop(self, uop: Uop, pc: int, seq: int) -> None:
        self.timing.schedule((), None, 1)

    def _exec_zero_idiom(self, uop: Uop, pc: int, seq: int) -> None:
        pass  # squashed at the instruction queue: zero cost

    def _exec_halt(self, uop: Uop, pc: int, seq: int) -> None:
        self.halted = True

    # -- memory ops ---------------------------------------------------------------

    def _exec_load(self, uop: Uop, pc: int, seq: int) -> None:
        address = self._effective_address(uop)
        value = self.memory.read_word(address & ~7)
        self.regs[uop.dst] = value
        self.tlb.access(address)
        latency = self.timing.mem_access(address, is_store=False)
        if self._lsu:
            # Hardware-only variant: the capability check is fused into the
            # load/store unit ahead of the access, lengthening every load's
            # critical path (the paper's stated drawback of this variant).
            latency += self._lsu_latency
        done = self.timing.schedule(uop.reg_reads(), uop.dst, latency,
                                    FuType.LOAD)
        if self._tracks:
            # The rule database decides whether loads propagate PIDs from
            # memory (Table I's LD rule); without it the destination is
            # simply zeroed — which is what the checker co-processor then
            # catches during rule auto-construction.
            policy = self.tracker.apply(uop, seq)
            if policy is MEMORY_POLICY:
                self._resolve_reload(uop, pc, address & ~7, seq, done)
            if self._validate:
                self._check_rule(uop, pc)
        if self._lsu:
            self._lsu_check(uop, address, write=False, pc=pc)

    def _exec_store(self, uop: Uop, pc: int, seq: int) -> None:
        address = self._effective_address(uop)
        data = self.regs[uop.srcs[0]] if uop.srcs else (uop.imm & MASK64)
        self.memory.write_word(address & ~7, data)
        self.tlb.access(address)
        self.timing.mem_access(address, is_store=True)
        store_latency = 1
        if self._lsu:
            store_latency += self._lsu_latency
        self.timing.schedule(uop.reg_reads(), None, store_latency,
                             FuType.STORE)
        if self._tracks:
            policy = self.tracker.apply(uop, seq)
            if policy is MEMORY_POLICY:
                src_pid = (self.tracker.current_pid(uop.srcs[0])
                           if uop.srcs else 0)
                if src_pid == WILD_PID:
                    # The alias table records genuine capabilities only; the
                    # wild sentinel stays register-resident (Section V-A).
                    src_pid = 0
                self.store_buffer.record(seq, address & ~7, src_pid)
        if self._lsu:
            self._lsu_check(uop, address, write=True, pc=pc)

    def _resolve_reload(self, uop: Uop, pc: int, address: int, seq: int,
                        done: int = 0) -> None:
        """Alias resolution for a load destination (the reload path).

        The predictor (and its blacklist) is part of the pointer-tracking
        hardware every protected variant carries; only the *recovery
        penalties* are specific to the prediction-driven check policy —
        the always-on policies inject the check regardless, so a wrong
        front-end PID is repaired by forwarding, never by a flush.
        """
        predicted, blacklisted = self.reload_predictor.predict_ex(pc)
        # Store-to-load forwarding of PIDs beats the cache/table.
        forwarded = self.store_buffer.forward(address)
        if forwarded is not None:
            actual = forwarded
        elif blacklisted:
            # Confidently a data load: the alias-cache validation lookup is
            # skipped (the blacklist's anti-pollution role).  When the
            # blacklist is stale the walk result disagrees, the P0AN path
            # below recovers, and the blacklist entry is retrained.
            actual = self.alias_table.peek(address)
            if actual:
                # Upper radix levels hit the walker's paging-structure
                # caches; only the leaf (and occasionally one directory)
                # entry moves from memory.
                self.timing.shadow_access(self._walk_latency, 16)
                self.timing.occupy(FuType.WALKER, done, self._walk_latency)
                self.alias_cache.install(address, actual)
                if self._prov is not None:
                    self._prov.on_walk(pc)
        elif self.tlb.page_hosts_aliases(address):
            actual, hit = self.alias_cache.lookup(address, self.alias_table)
            if not hit:
                # The hardware walker traverses up to five levels; it is
                # off the load's critical path but occupies the walker
                # and moves shadow traffic.
                self.timing.shadow_access(self._walk_latency, 16)
                self.timing.occupy(FuType.WALKER, done, self._walk_latency)
                if self._prov is not None:
                    self._prov.on_walk(pc)
        else:
            actual = 0
        outcome = self.reload_predictor.update(pc, predicted, actual)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.timing.now, "predictor", pc,
                        predicted=predicted, actual=actual,
                        outcome=outcome or "correct")
        if self._prov is not None:
            self._prov.on_reload(pc, outcome or "correct")
        if self._tracked_policy:
            if outcome == MispredictKind.P0AN:
                # Missing check: flush, squash, re-inject (Figure 5d).
                # The flush resolves when the load's effective address (and
                # thus the alias lookup) is available — the load's done cycle.
                self.timing.redirect(done, self._flush_penalty,
                                     alias=True)
                self.tracker.squash(seq)
                self.store_buffer.squash_after(seq)
                if tracer is not None:
                    tracer.emit(self.timing.now, "squash", pc,
                                cause="alias",
                                penalty=self._flush_penalty)
            elif outcome == MispredictKind.PNA0:
                # The check injected for the predicted PID becomes a zero
                # idiom, squashed at the instruction queue (Figure 5c).
                ghost = Uop(UopKind.CAPCHECK, injected=True)
                self.mcu.stats.injected_uops += 1
                if self._prov is not None:
                    self._prov.on_inject(pc, 1)
                self.mcu.demote_to_zero_idiom(ghost)
                self.total_uops += 1
        if self.trace_reloads and actual > 0:
            self.reload_trace.append((pc, actual))
        self.tracker.set_pid(uop.dst, actual, seq)

    # -- ALU / branches ----------------------------------------------------------------

    def _exec_alu(self, uop: Uop, pc: int, seq: int) -> None:
        alu = uop.alu
        # Operand order matches the decoded form: register sources first,
        # then the immediate (at most two operands reach the ALU).
        srcs = uop.srcs
        regs = self.regs
        imm = uop.imm
        if srcs:
            a = regs[srcs[0]]
            if len(srcs) > 1:
                b = regs[srcs[1]]
            elif imm is not None:
                b = imm & MASK64
            else:
                b = 0
        elif imm is not None:
            a = imm & MASK64
            b = 0
        else:
            a = b = 0
        result, carry, overflow = _alu_binary(alu, a, b)
        if alu not in (AluOp.CMP, AluOp.TEST) and uop.dst is not None:
            self.regs[uop.dst] = result
        if uop.writes_flags:
            self.flags = compute_flags(result, carry, overflow)
        if self._tracks:
            self.tracker.apply(uop, seq)
        if alu is AluOp.MUL:
            fu, latency = FuType.MULT, 3
        else:
            fu, latency = FuType.ALU, 1
        self.timing.schedule(uop.srcs, uop.dst, latency, fu,
                             uop.reads_flags, uop.writes_flags)
        if self._validate and uop.dst is not None:
            self._check_rule(uop, pc)

    def _exec_jmp(self, uop: Uop, pc: int, seq: int) -> Optional[int]:
        self.timing.schedule(uop.srcs, None, 1, FuType.ALU)
        # Direct jumps/calls: target known at decode; push calls on RAS.
        instrs = self.program.instrs
        macro_index = uop.macro_index
        if 0 <= macro_index < len(instrs) \
                and instrs[macro_index].op is Op.CALL:
            self.predictors.on_call(pc + INSTR_SLOT)
            if self._prov is not None:
                self._prov.on_call(pc)
        self.timing.taken_branch()
        return uop.target

    def _exec_br(self, uop: Uop, pc: int, seq: int) -> Optional[int]:
        done = self.timing.schedule(uop.srcs, None, 1, FuType.ALU, True)
        taken = _branch_taken(uop.cond, self.flags)
        correct = self.predictors.resolve_conditional(pc, taken)
        if not correct:
            self.timing.redirect(done, self._br_penalty)
            if self._tracks:
                self.tracker.squash(seq)
                self.store_buffer.squash_after(seq)
            if self._tracer is not None:
                self._tracer.emit(self.timing.now, "squash", pc,
                                  cause="branch", penalty=self._br_penalty)
        elif taken:
            self.timing.taken_branch()
        return uop.target if taken else None

    def _exec_jmp_ind(self, uop: Uop, pc: int, seq: int) -> Optional[int]:
        # Indirect jump (function return in this ISA).
        done = self.timing.schedule(uop.srcs, None, 1, FuType.ALU)
        actual = self.regs[uop.srcs[0]]
        instrs = self.program.instrs
        macro_index = uop.macro_index
        instr_op = instrs[macro_index].op \
            if 0 <= macro_index < len(instrs) else None
        if instr_op is Op.RET and self._prov is not None:
            self._prov.on_ret()
        correct = self.predictors.resolve_indirect(
            pc, actual, is_return=instr_op is Op.RET)
        if not correct:
            self.timing.redirect(done, self._br_penalty)
            if self._tracks:
                self.tracker.squash(seq)
                self.store_buffer.squash_after(seq)
            if self._tracer is not None:
                self._tracer.emit(self.timing.now, "squash", pc,
                                  cause="branch", penalty=self._br_penalty)
        else:
            self.timing.taken_branch()
        return actual

    # -- capability micro-ops ---------------------------------------------------------------

    def _exec_capcheck(self, uop: Uop, pc: int, seq: int = 0) -> None:
        # Injected checks carry the PID the MCU attached at decode; native
        # capchk ISA-extension instructions (the binary-translation path)
        # resolve it from the pointer tracker here.
        pid = uop.pid if uop.injected else self.tracker.base_pid(uop)
        address = self._effective_address(uop)
        if pid == 0:
            # Conservative (always-on) check of an untracked access: the
            # hardware still has to consult shadow metadata to establish
            # that no capability governs the address — the Watchdog-style
            # cost of indiscriminate instrumentation the paper measures at
            # ~40% (Section VII-C).
            self.timing.shadow_access(self._capcheck_latency, 8)
            self.timing.schedule(uop.reg_reads(), None,
                                 self._capcheck_latency, FuType.CMU,
                                 False, False, self._capcheck_latency)
            if self._tracer is not None:
                self._tracer.emit(self.timing.now, "capcheck", pc,
                                  pid=0, address=address, ok=True)
            if self._prov is not None:
                self._prov.on_check(pc)
            return
        latency = self._capcheck_latency
        if not self.capcache.access(pid):
            # Capability-cache miss: the shadow-table fetch delays this
            # check's completion but the CMU itself stays pipelined (the
            # fetch rides the walker/memory path).
            latency += self._captable_latency
            self.timing.shadow_access(latency, CAPABILITY_BYTES)
        self.timing.schedule(uop.reg_reads(), None, latency, FuType.CMU,
                             False, False, self._capcheck_latency)
        violation = self.captable.check(pid, address, 8,
                                        write=uop.check_write)
        if self._tracer is not None:
            self._tracer.emit(self.timing.now, "capcheck", pc,
                              pid=pid, address=address,
                              ok=violation is None)
        if self._prov is not None:
            self._prov.on_check(pc)
        if violation is not None:
            self._flag(violation, pc)
        elif pid > 0:
            self._interval_pids.add(pid)

    def _lsu_check(self, uop: Uop, address: int, write: bool, pc: int) -> None:
        """Hardware-only variant: the LSU checks every memory access.

        The fixed check latency is folded into the memory operation itself
        (see ``_exec_load``/``_exec_store``); this resolves the capability
        lookup functionally and charges capability-cache miss penalties.
        """
        base_pid = self.tracker.base_pid(uop)
        if base_pid == 0:
            return
        if not self.capcache.access(base_pid):
            latency = self._captable_latency
            self.timing.shadow_access(latency, CAPABILITY_BYTES)
            self.timing.occupy(FuType.CMU, self.timing.now, latency)
        violation = self.captable.check(base_pid, address, 8, write=write)
        if violation is not None:
            self._flag(violation, pc)
        elif base_pid > 0:
            self._interval_pids.add(base_pid)

    def _exec_capgen_begin(self, uop: Uop, pc: int, seq: int = 0) -> None:
        size = 1
        for src in uop.srcs:
            size *= to_s64(self.regs[src])
        pid, violation = self.captable.begin_generation(size)
        self._pending_gens.append(pid)
        self.timing.schedule(uop.srcs, None, 3, FuType.CMU)
        # Lifecycle record lands at the entry interception (before any
        # flag) so even a heap-spray violation sees its allocation context.
        if self._prov is not None:
            self._prov.on_capgen(pid, pc, self.timing.now, size)
        if violation is not None:
            self._flag(violation, pc)

    def _exec_capgen_end(self, uop: Uop, pc: int = 0, seq: int = 0) -> None:
        if not self._pending_gens:
            return  # exit reached without a matching entry interception
        pid = self._pending_gens.pop()
        base = self.regs[uop.srcs[0]]
        self.captable.end_generation(pid, base)
        self.timing.schedule(uop.srcs, None, 3, FuType.CMU)
        if self._tracer is not None:
            capability = self.captable.get(pid)
            self._tracer.emit(
                self.timing.now, "capgen", pc, pid=pid, base=base,
                size=capability.bounds if capability is not None else 0)
        # The return register carries the PID even when the allocation
        # failed: the capability exists but was never validated, so any
        # dereference of the NULL return is flagged.
        self.tracker.set_pid(uop.srcs[0], pid, seq)
        self.capcache.access(pid)  # a fresh allocation is immediately in use

    def _exec_capfree_begin(self, uop: Uop, pc: int, seq: int = 0) -> None:
        ptr_reg = uop.srcs[0]
        pointer = self.regs[ptr_reg]
        self.timing.schedule(uop.srcs, None, 3, FuType.CMU)
        if pointer == 0:
            self._pending_frees.append(0)  # free(NULL): defined no-op
            return
        pid = self.tracker.current_pid(ptr_reg)
        violation = self.captable.begin_free(pid)
        if violation is None:
            capability = self.captable.get(pid)
            if capability is not None and capability.base != pointer:
                violation = Violation(
                    kind=ViolationKind.INVALID_FREE, pid=pid, address=pointer,
                    detail=f"free of interior pointer {pointer:#x} "
                           f"(base {capability.base:#x})",
                )
        self._pending_frees.append(pid if violation is None else 0)
        if violation is not None:
            self._flag(violation, pc)

    def _exec_capfree_end(self, uop: Uop = None, pc: int = 0,
                          seq: int = 0) -> None:
        if not self._pending_frees:
            return
        pid = self._pending_frees.pop()
        self.timing.schedule((), None, 3, FuType.CMU)
        if pid == 0:
            return
        self.captable.end_free(pid)
        self.capcache.invalidate(pid)
        self.system.broadcast_cap_invalidate(pid, self.core_id)
        if self._tracer is not None:
            self._tracer.emit(self.timing.now, "capfree", pc, pid=pid)
        if self._prov is not None:
            self._prov.on_capfree(pid, pc, self.timing.now)

    # -- host escapes -------------------------------------------------------------------------

    def _exec_hostop(self, uop: Uop, pc: int = 0, seq: int = 0) -> None:
        handler = self.host_table.get(uop.host_name)
        if handler is None:
            raise MachineError(f"no host routine named {uop.host_name!r}")
        handler(self.regs)
        cost = HOSTOP_UOP_COST.get(uop.host_name, 80)
        self.timing.routine_call(cost, (int(Reg.RDI), int(Reg.RSI)),
                                 int(Reg.RAX))

    # -- helpers ---------------------------------------------------------------------------------

    def _effective_address(self, uop: Uop) -> int:
        mem = uop.mem
        address = mem.disp
        if mem.base is not None:
            address += self.regs[int(mem.base)]
        if mem.index is not None:
            address += self.regs[int(mem.index)] * mem.scale
        return address & MASK64

    def _check_rule(self, uop: Uop, pc: int) -> None:
        """Checker co-processor hook: validate the tracker's prediction."""
        if self.checker is None or uop.dst is None or not self._tracks:
            return
        predicted = self.tracker.current_pid(uop.dst)
        self.checker.validate(uop, predicted, self.regs[uop.dst], pc)

    def _flag(self, violation: Violation, pc: int) -> None:
        violation = Violation(
            kind=violation.kind, pid=violation.pid, address=violation.address,
            size=violation.size, instr_address=pc, detail=violation.detail,
            provenance=(self._prov.chain(violation, pc)
                        if self._prov is not None else None),
        )
        if self._tracer is not None:
            self._tracer.emit(self.timing.now, "violation", pc,
                              violation=violation.kind.value,
                              pid=violation.pid,
                              address=violation.address)
        if self.halt_on_violation:
            raise CapabilityException(violation)
        self.violations.record(violation)


# ---------------------------------------------------------------------------
# ALU and branch-condition semantics.
# ---------------------------------------------------------------------------

def _alu_compute(alu: AluOp, operands: List[int]) -> Tuple[int, bool, bool]:
    """64-bit ALU semantics; returns (result, carry, overflow)."""
    a = operands[0] if operands else 0
    b = operands[1] if len(operands) > 1 else 0
    return _alu_binary(alu, a, b)


def _alu_binary(alu: AluOp, a: int, b: int) -> Tuple[int, bool, bool]:
    """Two-operand ALU core (the execute loop extracts operands inline).

    Sign tests use the sign bit directly — ``(x >> 63) & 1`` agrees with
    ``to_s64(x) >= 0`` for every unsigned 64-bit pattern and skips the
    helper call on the hottest arithmetic path.
    """
    if alu is AluOp.ADD:
        total = a + b
        result = total & MASK64
        carry = total > MASK64
        sign_a = (a >> 63) & 1
        overflow = sign_a == ((b >> 63) & 1) and \
            ((result >> 63) & 1) != sign_a
        return result, carry, overflow
    if alu is AluOp.SUB or alu is AluOp.CMP:
        total = a - b
        result = total & MASK64
        carry = a < b
        sign_a = (a >> 63) & 1
        overflow = sign_a != ((b >> 63) & 1) and \
            ((result >> 63) & 1) != sign_a
        return result, carry, overflow
    if alu is AluOp.AND or alu is AluOp.TEST:
        return a & b, False, False
    if alu is AluOp.OR:
        return a | b, False, False
    if alu is AluOp.XOR:
        return a ^ b, False, False
    if alu is AluOp.MUL:
        return (a * b) & MASK64, False, False
    if alu is AluOp.SHL:
        return (a << (b & 63)) & MASK64, False, False
    if alu is AluOp.SHR:
        return (a >> (b & 63)) & MASK64, False, False
    if alu is AluOp.NEG:
        return (-a) & MASK64, a != 0, False
    if alu is AluOp.NOT:
        return (~a) & MASK64, False, False
    raise MachineError(f"unknown ALU op {alu}")  # pragma: no cover


def _branch_taken(cond: str, flags: Flag) -> bool:
    # Plain-int flag tests: IntFlag's ``&`` operator goes through the
    # enum machinery, which shows up at one branch resolve per BR uop.
    bits = int(flags)
    zf = bool(bits & 1)   # Flag.ZF
    sf = bool(bits & 2)   # Flag.SF
    cf = bool(bits & 4)   # Flag.CF
    of = bool(bits & 8)   # Flag.OF
    if cond == "je":
        return zf
    if cond == "jne":
        return not zf
    if cond == "jl":
        return sf != of
    if cond == "jle":
        return zf or sf != of
    if cond == "jg":
        return not zf and sf == of
    if cond == "jge":
        return sf == of
    if cond == "jb":
        return cf
    if cond == "jae":
        return not cf
    raise MachineError(f"unknown branch condition {cond}")  # pragma: no cover
