"""Versioned machine checkpoint/restore (sampled-simulation substrate).

A snapshot is a *curated*, schema-versioned capture of everything one
:class:`~repro.core.machine.Chex86Machine` needs to resume mid-run:
architectural registers and flags, simulated memory, the shadow
capability and alias tables, tracker/predictor/branch state, every stats
counter the telemetry registry reads, and the timing scoreboard.  The
restored machine is observationally indistinguishable from one that ran
uninterrupted — same architectural state, same violation log, same
``metrics_snapshot()`` — which is the property the checkpoint-fidelity
differential suite (``tests/test_snapshot.py``) pins for seeded random
programs.

Design rules (why this is not a naive ``pickle(machine)``):

* **Plain-data tree.**  Only builtins, enums, and a few small dataclasses
  (``Program``, ``CoreConfig``, ``Violation``) are serialized.  Bound
  methods, closures, and the telemetry registry never enter the snapshot;
  a restore constructs a *fresh* machine (rebuilding all of those) and
  then overwrites its mutable state.
* **Stats identity.**  The metrics registry holds gauge closures over the
  live stats objects (``mcu.stats``, ``timing.stats``, each cache's
  ``CacheStats``, the system allocator's ``HeapStats``...).  Restore
  therefore assigns fields *in place* on the fresh machine's stats
  objects instead of replacing them, so every registered gauge keeps
  reading the right object.
* **Shared-object aliasing.**  System-owned state (memory, allocator,
  capability/alias tables, L2, the alias-hosting page set that the TLB
  aliases) is mutated in place for the same reason.
* **Decoded blocks and superblocks are dropped.**  ``DecodedBlock`` and
  ``Superblock`` entries carry bound execute handlers; the restored
  machine recompiles both lazily.  The compile *counts* are restored,
  and re-decoding records no decode stats (the per-dynamic-instance
  accounting lives in ``step()``/``_retire_members``), so nothing is
  double-charged.

Not captured (a :class:`SnapshotError` is raised where silence would be a
lie): multicore systems, attached event tracers, the checker
co-processor, and custom host hooks (the ASan runtime).  A custom
``RuleDatabase`` is not serialized either — restored machines use the
fresh machine's rule table — and the debug ``execution_trace`` is
dropped (``trace_limit`` survives).

Schema discipline: ``SNAPSHOT_SCHEMA`` is bumped on any layout change,
and :func:`from_bytes` refuses a mismatched snapshot loudly with
:class:`SnapshotSchemaError` — a stale checkpoint must never be replayed
as if it matched the current machine.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
from collections import deque
from pathlib import Path
from typing import Dict, Union

from ..isa.registers import Flag
from ..telemetry import spans
from .violations import ViolationLog

#: Bumped whenever the snapshot layout changes incompatibly.
#: v2: superblock fast-path counters (superblocks_compiled,
#: superblock_instructions, superblock_bailouts, fallback_instructions).
#: v3: provenance recorder state (shadow call stack, capability
#: lifecycles, per-context cost tables) — None when disarmed.
SNAPSHOT_SCHEMA = 3


class SnapshotError(Exception):
    """The machine state cannot be captured or restored."""


class SnapshotSchemaError(SnapshotError):
    """The snapshot's schema version does not match this code."""


# Stats field lists, by subsystem.  These are the exact attribute sets the
# telemetry registry (or phase_counters) reads; a new counter added to a
# stats dataclass must be added here and SNAPSHOT_SCHEMA bumped.
_DECODE_FIELDS = ("simple", "complex", "msrom", "macro_ops", "native_uops")
_MCU_FIELDS = ("injected_uops", "capchecks", "capchecks_suppressed_context",
               "capgen_events", "capfree_events", "entry_intercepts",
               "exit_intercepts", "zero_idioms")
_TRACKER_FIELDS = ("transfers", "wild_assignments", "zeroed", "commits",
                   "squashes", "squashed_tags")
_RELOAD_PRED_FIELDS = ("lookups", "predictions", "correct", "pna0", "p0an",
                       "pman", "blacklist_filtered")
_BRANCH_FIELDS = ("cond_predictions", "cond_mispredictions",
                  "indirect_predictions", "indirect_mispredictions",
                  "ras_overflows")
_CACHE_FIELDS = ("hits", "misses", "evictions", "invalidations",
                 "victim_hits")
_TLB_FIELDS = ("hits", "misses", "alias_walks_filtered")
_TIMING_FIELDS = ("cycles", "uops", "macro_ops", "squash_cycles",
                  "branch_squash_cycles", "alias_squash_cycles",
                  "hostop_cycles", "fetch_groups", "icache_misses", "loads",
                  "stores", "l1d_misses", "l2_misses", "dram_bytes",
                  "shadow_dram_bytes", "rob_stall_events")
_MEMORY_FIELDS = ("reads", "writes", "bytes_read", "bytes_written")
_HEAP_FIELDS = ("total_allocs", "total_frees", "failed_allocs", "live",
                "max_live", "bytes_allocated")
_CAPTABLE_FIELDS = ("lookups", "generated", "freed")
_ALIAS_TABLE_FIELDS = ("walks", "levels_touched", "entries_set",
                       "entries_cleared")
_COHERENCE_FIELDS = ("cap_invalidate_messages", "alias_invalidate_messages",
                     "cap_invalidate_hits", "alias_invalidate_hits")


def _fields(obj, names) -> Dict[str, int]:
    return {name: getattr(obj, name) for name in names}


def _assign(obj, values: Dict[str, int]) -> None:
    for name, value in values.items():
        setattr(obj, name, value)


# ---------------------------------------------------------------- capture

def _check_snapshotable(machine) -> None:
    """v1 restrictions: refuse state the snapshot cannot represent."""
    if len(machine.system.cores) != 1:
        raise SnapshotError(
            "only single-core machines are snapshotable (the system has "
            f"{len(machine.system.cores)} registered cores)")
    if machine._tracer is not None:
        raise SnapshotError(
            "detach the event tracer before snapshotting (tracers are "
            "not serializable)")
    if machine.checker is not None:
        raise SnapshotError(
            "machines with the checker co-processor are not snapshotable")
    from ..heap.library import host_dispatch_table
    default_hooks = set(host_dispatch_table(machine.allocator))
    if set(machine.host_table) != default_hooks:
        raise SnapshotError(
            "machines with custom host hooks (e.g. the ASan runtime) are "
            "not snapshotable")


def _capture_cache(cache) -> Dict[str, object]:
    state = {
        "sets": [list(s.items()) for s in cache._sets],
        "victim": (list(cache._victim.items())
                   if cache._victim is not None else None),
        "stats": _fields(cache.stats, _CACHE_FIELDS),
    }
    return state


def _restore_cache(cache, state: Dict[str, object]) -> None:
    saved_sets = state["sets"]
    if len(saved_sets) != len(cache._sets):
        raise SnapshotError(
            f"cache {cache.name}: snapshot has {len(saved_sets)} sets, "
            f"machine has {len(cache._sets)} (config mismatch)")
    for set_, items in zip(cache._sets, saved_sets):
        set_.clear()
        set_.update(items)
    if cache._victim is not None and state["victim"] is not None:
        cache._victim.clear()
        cache._victim.update(state["victim"])
    _assign(cache.stats, state["stats"])


def capture(machine) -> Dict[str, object]:
    """Build the versioned plain-data snapshot tree for ``machine``.

    The tree shares no mutable structure with the machine — it stays
    valid even if the machine keeps running afterwards.
    """
    with spans.maybe("snapshot.capture", category="core",
                     instructions=machine.instructions):
        return _capture(machine)


def _capture(machine) -> Dict[str, object]:
    _check_snapshotable(machine)
    from .. import __version__

    predictors = machine.predictors
    cond = predictors.cond
    tracker = machine.tracker
    reload_pred = machine.reload_predictor
    timing = machine.timing
    system = machine.system
    allocator = system.allocator
    captable = system.captable
    alias_table = system.alias_table

    state = {
        # Architectural + bookkeeping.
        "regs": list(machine.regs),
        "flags": int(machine.flags),
        "rip": machine.rip,
        "halted": machine.halted,
        "instructions": machine.instructions,
        "native_uops": machine.native_uops,
        "total_uops": machine.total_uops,
        "seq": machine._seq,
        "pending_gens": list(machine._pending_gens),
        "pending_frees": list(machine._pending_frees),
        "global_pids": dict(machine._global_pids),
        "violations": list(machine.violations.violations),
        # Provenance recorder state (None when disarmed); plain data so
        # restored machines resume recording in the same call context.
        "provenance": (machine._prov.state_tree()
                       if machine._prov is not None else None),
        # Profiling state.
        "profile_interval": machine.profile_interval,
        "interval_pids": set(machine._interval_pids),
        "interval_pid_counts": list(machine.interval_pid_counts),
        "trace_reloads": machine.trace_reloads,
        "reload_trace": list(machine.reload_trace),
        "bbv_interval": machine.bbv_interval,
        "bbv_vectors": [dict(v) for v in machine.bbv_vectors],
        "bbv_current": dict(machine._bbv_current),
        "trace_limit": machine.trace_limit,
        # Fast-path metadata (blocks and superblocks themselves are
        # recompiled lazily).
        "block_cache_enabled": machine.block_cache_enabled,
        "blocks_compiled": machine._blocks_compiled,
        "superblocks_compiled": machine._superblocks_compiled,
        "superblock_instructions": machine._superblock_instructions,
        "superblock_bailouts": machine._superblock_bailouts,
        "fallback_instructions": machine._fallback_instructions,
        # Quantum-metrics bookkeeping (plain snapshot dicts).
        "quantum_metrics": machine._quantum_metrics,
        "quantum_base": (dict(machine._quantum_base)
                         if machine._quantum_base is not None else None),
        "quantum_deltas": [dict(d) for d in machine.quantum_deltas],
        # Front end.
        "decode_stats": _fields(machine.decoder.stats, _DECODE_FIELDS),
        "predictors": {
            "bimodal": list(cond._bimodal),
            "tables": [[(e.tag, e.ctr, e.useful) for e in table]
                       for table in cond._tables],
            "history": cond._history,
            "stats": _fields(cond.stats, _BRANCH_FIELDS),
            "btb": _capture_cache(predictors.btb),
            "ras_stack": list(predictors.ras._stack),
            "ras_overflows": predictors.ras.overflows,
        },
        "tracker": {
            "tags": [(tag.committed, list(tag.transient))
                     for tag in tracker._tags],
            "dirty": set(tracker._dirty),
            "stats": _fields(tracker.stats, _TRACKER_FIELDS),
        },
        "reload_predictor": {
            "table": [None if e is None
                      else (e.tag, e.last_pid, e.stride, e.conf, e.useful)
                      for e in reload_pred._table],
            "blacklist": list(reload_pred._blacklist),
            "stats": _fields(reload_pred.stats, _RELOAD_PRED_FIELDS),
        },
        "mcu_stats": _fields(machine.mcu.stats, _MCU_FIELDS),
        # Per-core shadow caches, store buffer, TLB.
        "capcache": _capture_cache(machine.capcache),
        "alias_cache": _capture_cache(machine.alias_cache.cache),
        "store_buffer": {
            "pending": [(p.seq, p.address, p.pid)
                        for p in machine.store_buffer._pending],
            "peak_occupancy": machine.store_buffer.peak_occupancy,
            "total_buffered": machine.store_buffer.total_buffered,
            "overflows": machine.store_buffer.overflows,
        },
        "tlb": {
            "cache": _capture_cache(machine.tlb._cache),
            "stats": _fields(machine.tlb.stats, _TLB_FIELDS),
        },
        # Timing scoreboard.
        "timing": {
            "stats": _fields(timing.stats, _TIMING_FIELDS),
            "fu_uops": list(timing.stats.fu_uops),
            "l1i": _capture_cache(timing.l1i),
            "l1d": _capture_cache(timing.l1d),
            "pools": [pool._free if pool._single else list(pool._free)
                      for pool in timing._pools],
            "reg_ready": list(timing._reg_ready),
            "rob": list(timing._rob),
            "lq": list(timing._lq),
            "sq": list(timing._sq),
            "issue_tags": list(timing._issue_tags),
            "issue_counts": list(timing._issue_counts),
            "commit_tags": list(timing._commit_tags),
            "commit_counts": list(timing._commit_counts),
            "fetch_cycle": timing._fetch_cycle,
            "group_used": timing._group_used,
            "last_iline": timing._last_iline,
            "last_commit": timing._last_commit,
        },
        # System-shared state (single-core: owned by this machine's run).
        "system": {
            "memory_pages": {page: list(words)
                             for page, words in system.memory._pages.items()},
            "memory_stats": _fields(system.memory.stats, _MEMORY_FIELDS),
            "allocator": {
                "top": allocator._top,
                "bins": dict(allocator._bins),
                "stats": _fields(allocator.stats, _HEAP_FIELDS),
                "records": [(r.serial, r.address, r.size, r.freed)
                            for r in allocator.records],
            },
            "captable": {
                "table": [(c.pid, c.base, c.bounds, c.perms)
                          for c in captable._table.values()],
                "next_pid": captable._next_pid,
                "bases": list(captable._bases),
                "stats": _fields(captable.stats, _CAPTABLE_FIELDS),
            },
            "alias_table": {
                "root": copy.deepcopy(alias_table._root),
                "nodes": alias_table._nodes,
                "stats": _fields(alias_table.stats, _ALIAS_TABLE_FIELDS),
            },
            "l2": _capture_cache(system.l2),
            "coherence": _fields(system.coherence, _COHERENCE_FIELDS),
            "hosting_pages": set(system.alias_hosting_pages),
        },
    }
    return {
        "schema": SNAPSHOT_SCHEMA,
        "version": __version__,
        "variant": machine.variant,
        "config": machine.config,
        "halt_on_violation": machine.halt_on_violation,
        "critical_ranges": (list(machine.mcu.critical_ranges)
                            if machine.mcu.critical_ranges is not None
                            else None),
        "program": machine.program,
        "state": state,
    }


# ---------------------------------------------------------------- restore

def restore(source: Union[bytes, Dict[str, object]]):
    """Reconstruct a machine from snapshot bytes (or a captured tree).

    The returned machine owns a fresh :class:`System` and continues the
    run exactly where the snapshot was taken.
    """
    with spans.maybe("snapshot.restore", category="core"):
        return _restore(source)


def _restore(source: Union[bytes, Dict[str, object]]):
    if isinstance(source, (bytes, bytearray, memoryview)):
        tree = from_bytes(bytes(source))
    else:
        tree = _check_tree(copy.deepcopy(source))
    from .machine import Chex86Machine

    machine = Chex86Machine(
        tree["program"],
        variant=tree["variant"],
        config=tree["config"],
        critical_ranges=tree["critical_ranges"],
        halt_on_violation=tree["halt_on_violation"],
    )
    _apply_state(machine, tree["state"])
    return machine


def _apply_state(machine, state: Dict[str, object]) -> None:
    # Architectural + bookkeeping.  List contents are replaced in place
    # where other objects may hold the list; plain attributes are assigned.
    machine.regs[:] = state["regs"]
    machine.flags = Flag(state["flags"])
    machine.rip = state["rip"]
    machine.halted = state["halted"]
    machine.instructions = state["instructions"]
    machine.native_uops = state["native_uops"]
    machine.total_uops = state["total_uops"]
    machine._seq = state["seq"]
    machine._pending_gens = list(state["pending_gens"])
    machine._pending_frees = list(state["pending_frees"])
    machine._global_pids = dict(state["global_pids"])
    # The violation log is replaced wholesale: the registry gauge reads
    # ``machine.violations`` through the machine attribute at call time.
    log = ViolationLog()
    for violation in state["violations"]:
        log.record(violation)
    machine.violations = log

    saved_prov = state["provenance"]
    if saved_prov is not None:
        from ..telemetry.provenance import ProvenanceRecorder
        machine._prov = ProvenanceRecorder.from_state(machine.program,
                                                      saved_prov)
    else:
        machine._prov = None

    machine.profile_interval = state["profile_interval"]
    machine._interval_pids = set(state["interval_pids"])
    machine.interval_pid_counts = list(state["interval_pid_counts"])
    machine.trace_reloads = state["trace_reloads"]
    machine.reload_trace = [tuple(t) for t in state["reload_trace"]]
    machine.bbv_interval = state["bbv_interval"]
    machine.bbv_vectors = [dict(v) for v in state["bbv_vectors"]]
    machine._bbv_current = dict(state["bbv_current"])
    machine.trace_limit = state["trace_limit"]

    machine.block_cache_enabled = state["block_cache_enabled"]
    machine._blocks_compiled = state["blocks_compiled"]
    machine._superblocks_compiled = state["superblocks_compiled"]
    machine._superblock_instructions = state["superblock_instructions"]
    machine._superblock_bailouts = state["superblock_bailouts"]
    machine._fallback_instructions = state["fallback_instructions"]
    # Recompiled lazily against the new program: DecodedBlock entries and
    # superblock member tables carry bound execute handlers.
    machine._blocks.clear()
    machine._superblocks.clear()

    machine._quantum_metrics = state["quantum_metrics"]
    machine._quantum_base = (dict(state["quantum_base"])
                             if state["quantum_base"] is not None else None)
    machine.quantum_deltas = [dict(d) for d in state["quantum_deltas"]]

    # Front end.  Stats objects are kept and written in place: the
    # telemetry registry's gauges close over them.
    _assign(machine.decoder.stats, state["decode_stats"])
    machine.decoder._cache.clear()

    saved = state["predictors"]
    cond = machine.predictors.cond
    cond._bimodal[:] = saved["bimodal"]
    for table, entries in zip(cond._tables, saved["tables"]):
        for entry, (tag, ctr, useful) in zip(table, entries):
            entry.tag = tag
            entry.ctr = ctr
            entry.useful = useful
    cond._history = saved["history"]
    cond._refold()
    # In place: FrontEndPredictors.stats aliases cond.stats.
    _assign(cond.stats, saved["stats"])
    _restore_cache(machine.predictors.btb, saved["btb"])
    machine.predictors.ras._stack = list(saved["ras_stack"])
    machine.predictors.ras.overflows = saved["ras_overflows"]

    saved = state["tracker"]
    for tag, (committed, transient) in zip(machine.tracker._tags,
                                           saved["tags"]):
        tag.committed = committed
        tag.transient = [tuple(t) for t in transient]
    machine.tracker._dirty = set(saved["dirty"])
    _assign(machine.tracker.stats, saved["stats"])

    saved = state["reload_predictor"]
    from .predictor import _Entry
    table = []
    for item in saved["table"]:
        if item is None:
            table.append(None)
        else:
            entry = _Entry(item[0])
            entry.last_pid, entry.stride, entry.conf, entry.useful = item[1:]
            table.append(entry)
    machine.reload_predictor._table = table
    machine.reload_predictor._blacklist = [tuple(t)
                                           for t in saved["blacklist"]]
    _assign(machine.reload_predictor.stats, saved["stats"])

    _assign(machine.mcu.stats, state["mcu_stats"])

    _restore_cache(machine.capcache, state["capcache"])
    _restore_cache(machine.alias_cache.cache, state["alias_cache"])

    saved = state["store_buffer"]
    from .alias import _PendingStore
    machine.store_buffer._pending = deque(
        _PendingStore(*entry) for entry in saved["pending"])
    machine.store_buffer.peak_occupancy = saved["peak_occupancy"]
    machine.store_buffer.total_buffered = saved["total_buffered"]
    machine.store_buffer.overflows = saved["overflows"]

    # ``tlb._hosting`` IS ``system.alias_hosting_pages`` — restored below.
    _restore_cache(machine.tlb._cache, state["tlb"]["cache"])
    _assign(machine.tlb.stats, state["tlb"]["stats"])

    # Timing scoreboard.
    saved = state["timing"]
    timing = machine.timing
    _assign(timing.stats, saved["stats"])
    timing.stats.fu_uops[:] = saved["fu_uops"]
    _restore_cache(timing.l1i, saved["l1i"])
    _restore_cache(timing.l1d, saved["l1d"])
    for pool, free in zip(timing._pools, saved["pools"]):
        # A multi-unit pool's free list was captured heap-ordered; copying
        # it verbatim preserves the heap invariant.
        pool._free = free if pool._single else list(free)
    timing._reg_ready[:] = saved["reg_ready"]
    timing._rob = deque(saved["rob"])
    timing._lq = deque(saved["lq"])
    timing._sq = deque(saved["sq"])
    timing._issue_tags[:] = saved["issue_tags"]
    timing._issue_counts[:] = saved["issue_counts"]
    timing._commit_tags[:] = saved["commit_tags"]
    timing._commit_counts[:] = saved["commit_counts"]
    timing._fetch_cycle = saved["fetch_cycle"]
    timing._group_used = saved["group_used"]
    timing._last_iline = saved["last_iline"]
    timing._last_commit = saved["last_commit"]

    # System-shared state: every object is mutated in place (the machine,
    # allocator closures, and TLB all hold references into it).
    saved = state["system"]
    system = machine.system
    system.memory._pages = {page: list(words)
                            for page, words in saved["memory_pages"].items()}
    _assign(system.memory.stats, saved["memory_stats"])

    from ..heap.allocator import AllocationRecord
    alloc_state = saved["allocator"]
    allocator = system.allocator
    allocator._top = alloc_state["top"]
    allocator._bins = dict(alloc_state["bins"])
    _assign(allocator.stats, alloc_state["stats"])  # registered MERGE_LAST
    allocator.records = [AllocationRecord(serial, address, size, freed)
                         for serial, address, size, freed
                         in alloc_state["records"]]
    # Serial-order rebuild reproduces _record_alloc's last-wins semantics
    # for reused addresses, with identity shared against ``records``.
    allocator._by_address = {}
    for record in allocator.records:
        allocator._by_address[record.address] = record

    from .capability import Capability
    cap_state = saved["captable"]
    captable = system.captable
    captable._table = {
        pid: Capability(pid=pid, base=base, bounds=bounds, perms=perms)
        for pid, base, bounds, perms in cap_state["table"]
    }
    captable._next_pid = cap_state["next_pid"]
    captable._bases = [tuple(t) for t in cap_state["bases"]]
    _assign(captable.stats, cap_state["stats"])

    alias_state = saved["alias_table"]
    alias_table = system.alias_table
    alias_table._root = copy.deepcopy(alias_state["root"])
    alias_table._nodes = alias_state["nodes"]
    _assign(alias_table.stats, alias_state["stats"])

    _restore_cache(system.l2, saved["l2"])
    _assign(system.coherence, saved["coherence"])

    # In place: the TLB's ``_hosting`` set is this very object.
    system.alias_hosting_pages.clear()
    system.alias_hosting_pages.update(saved["hosting_pages"])

    # The program object was re-created by unpickling: re-key the load
    # registry so a second core attaching later sees the restored PIDs.
    system.loaded_programs.clear()
    system.loaded_programs[id(machine.program)] = machine._global_pids


# ------------------------------------------------------------- wire format

def to_bytes(tree: Dict[str, object]) -> bytes:
    """Serialize a captured snapshot tree."""
    return pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)


def from_bytes(data: bytes) -> Dict[str, object]:
    """Deserialize and schema-check snapshot bytes."""
    try:
        tree = pickle.loads(data)
    except Exception as exc:
        raise SnapshotError(f"not a machine snapshot: {exc}") from exc
    return _check_tree(tree)


def _check_tree(tree) -> Dict[str, object]:
    if not isinstance(tree, dict) or "schema" not in tree:
        raise SnapshotError("not a machine snapshot (no schema field)")
    if tree["schema"] != SNAPSHOT_SCHEMA:
        raise SnapshotSchemaError(
            f"snapshot schema {tree['schema']!r} does not match the "
            f"supported schema {SNAPSHOT_SCHEMA}; re-create the checkpoint "
            f"with this version of the simulator")
    return tree


def snapshot_digest(data: bytes) -> str:
    """Content hash of snapshot bytes (engine cache keys, integrity)."""
    return hashlib.sha256(data).hexdigest()


def save(machine, path: Union[str, Path]) -> str:
    """Snapshot ``machine`` to ``path`` atomically; returns the digest."""
    data = to_bytes(capture(machine))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, target)
    return snapshot_digest(data)


def load(path: Union[str, Path], expected_digest: str = ""):
    """Restore a machine from a snapshot file.

    ``expected_digest`` (when given) must match the file content — a
    checkpoint that was rewritten since its cell spec was built is
    rejected rather than silently replayed.
    """
    data = Path(path).read_bytes()
    if expected_digest and snapshot_digest(data) != expected_digest:
        raise SnapshotError(
            f"checkpoint {path} content does not match its recorded "
            f"digest; the file changed since the cell was scheduled")
    return restore(data)
