"""Pointer-reload (spilled-alias) prediction — paper Section V-B/V-C.

The key observation (Table II) is that the *sequence of PIDs* a given load
instruction reloads is highly predictable — constant, striding, batched, or
repeating — because it correlates with the instruction address, not the
load's effective address.  CHEx86 therefore re-purposes a stride predictor:
a 512-entry table indexed by instruction address whose entries carry the
last PID seen, the PID stride, and a 2-bit saturating confidence counter,
plus a blacklist of loads known to fetch data values rather than spilled
pointers (avoiding destructive aliasing in the predictor table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instructions import INSTR_SLOT


class MispredictKind:
    """The three pointer-reload misprediction classes (Figure 5)."""

    #: Predicted PID(N), actual untracked: demote the injected check to a
    #: zero idiom at the instruction queue — no flush.
    PNA0 = "PNA0"
    #: Predicted untracked, actual PID(N): flush and re-inject — the only
    #: class that pays the pipeline-flush penalty.
    P0AN = "P0AN"
    #: Predicted PID(M), actual PID(N): forward the right PID — no flush.
    PMAN = "PMAN"


@dataclass
class PredictorStats:
    lookups: int = 0
    predictions: int = 0      # lookups that predicted a non-zero PID
    correct: int = 0          # outcome matched (incl. correct "untracked")
    pna0: int = 0
    p0an: int = 0
    pman: int = 0
    blacklist_filtered: int = 0

    @property
    def mispredictions(self) -> int:
        return self.pna0 + self.p0an + self.pman

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return self.correct / self.lookups

    @property
    def misprediction_rate(self) -> float:
        return 1.0 - self.accuracy

    def register_metrics(self, registry, prefix: str = "predictor") -> None:
        """Expose the prediction counters as ``<prefix>.*`` gauges.

        ``accuracy`` defaults to 1.0 on zero lookups, matching the
        :attr:`accuracy` property exactly (a predictor that was never
        consulted was never wrong).
        """
        registry.register_object(prefix, self, (
            "lookups", "predictions", "correct", "pna0", "p0an", "pman",
            "blacklist_filtered"))
        registry.gauge(f"{prefix}.mispredictions",
                       lambda stats=self: stats.mispredictions)
        registry.ratio(f"{prefix}.accuracy",
                       f"{prefix}.correct", f"{prefix}.lookups", default=1.0)
        registry.ratio(f"{prefix}.misprediction_rate",
                       f"{prefix}.mispredictions", f"{prefix}.lookups")


class _Entry:
    __slots__ = ("tag", "last_pid", "stride", "conf", "useful")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.last_pid = 0
        self.stride = 0
        self.conf = 0    # 2-bit saturating prediction confidence
        #: Replacement-contest counter.  Colliding loads (same table slot,
        #: different tag) decrement *this* — never ``conf`` — so an index
        #: collision cannot silently degrade the resident instruction's
        #: predictions; it can only, eventually, evict the whole entry.
        self.useful = 1


class PointerReloadPredictor:
    """Stride-based PID predictor with a non-pointer-load blacklist."""

    #: 2-bit saturating counter ceiling.
    CONF_MAX = 3
    #: Confidence required before a prediction is made.
    CONF_THRESHOLD = 2

    def __init__(self, entries: int = 512, blacklist_entries: int = 512) -> None:
        if entries <= 0 or blacklist_entries <= 0:
            raise ValueError("predictor sizes must be positive")
        self.entries = entries
        self._table: List[Optional[_Entry]] = [None] * entries
        self._blacklist: List[Tuple[int, int]] = [(0, 0)] * blacklist_entries
        self._bl_size = blacklist_entries
        self.stats = PredictorStats()

    # -- front-end interface -------------------------------------------------

    def predict(self, pc: int) -> int:
        """Predicted PID reloaded by the load at ``pc`` (0 = not a reload).

        A tag hit always predicts *some* PID: the is-this-a-pointer-reload
        decision only needs the tag match, and a wrong PID value costs a
        cheap PMAN forward, whereas predicting "not a reload" for a real
        reload costs a P0AN pipeline flush (Figure 5d).  The stride is only
        applied once the confidence counter trusts it.
        """
        self.stats.lookups += 1
        if self._blacklisted(pc):
            self.stats.blacklist_filtered += 1
            return 0
        entry = self._table[self._index(pc)]
        if entry is None or entry.tag != pc:
            return 0
        if entry.conf >= self.CONF_THRESHOLD:
            prediction = entry.last_pid + entry.stride
        else:
            prediction = entry.last_pid
        self.stats.predictions += 1
        return prediction if prediction > 0 else entry.last_pid

    def predict_ex(self, pc: int) -> Tuple[int, bool]:
        """:meth:`predict` fused with the blacklist decision.

        Returns ``(prediction, blacklisted)`` from a single blacklist
        probe — the resolve path needs both, and probing twice (once
        inside :meth:`predict`, once via :meth:`is_blacklisted`) doubles
        the hottest table access.  Counter for counter identical to
        calling ``predict(pc)`` then ``is_blacklisted(pc)``.
        """
        stats = self.stats
        stats.lookups += 1
        tag, conf = self._blacklist[(pc // INSTR_SLOT) % self._bl_size]
        if tag == pc and conf >= self.CONF_THRESHOLD:
            stats.blacklist_filtered += 1
            return 0, True
        entry = self._table[(pc // INSTR_SLOT) % self.entries]
        if entry is None or entry.tag != pc:
            return 0, False
        if entry.conf >= self.CONF_THRESHOLD:
            prediction = entry.last_pid + entry.stride
        else:
            prediction = entry.last_pid
        stats.predictions += 1
        return (prediction if prediction > 0 else entry.last_pid), False

    def update(self, pc: int, predicted: int, actual: int) -> Optional[str]:
        """Train on the execute-stage outcome; returns the mispredict class.

        ``actual`` is the PID found in the shadow alias table at the load's
        effective address (0 when the location held no spilled pointer).
        """
        if predicted == actual:
            self.stats.correct += 1
            outcome = None
        elif predicted and not actual:
            outcome = MispredictKind.PNA0
            self.stats.pna0 += 1
        elif not predicted:
            outcome = MispredictKind.P0AN
            self.stats.p0an += 1
        else:
            outcome = MispredictKind.PMAN
            self.stats.pman += 1
        self._train(pc, actual)
        return outcome

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _classify(predicted: int, actual: int) -> Optional[str]:
        if predicted == actual:
            return None
        if predicted and not actual:
            return MispredictKind.PNA0
        if not predicted and actual:
            return MispredictKind.P0AN
        return MispredictKind.PMAN

    def _train(self, pc: int, actual: int) -> None:
        bl_index = self._bl_index(pc)
        bl_tag, bl_conf = self._blacklist[bl_index]
        if actual == 0:
            # Strengthen the blacklist for this load; decay any stride entry.
            if bl_tag == pc:
                self._blacklist[bl_index] = (pc, min(bl_conf + 1, self.CONF_MAX))
            elif bl_conf == 0:
                self._blacklist[bl_index] = (pc, 1)
            else:
                self._blacklist[bl_index] = (bl_tag, bl_conf - 1)
            return
        # A real pointer reload: clear blacklist pressure, train the stride.
        if bl_tag == pc and bl_conf:
            self._blacklist[bl_index] = (pc, bl_conf - 1)
        index = self._index(pc)
        entry = self._table[index]
        if entry is None or entry.tag != pc:
            # Index collision: contest the slot via the replacement
            # counter only.  The resident entry's tag/last_pid/stride/conf
            # stay untouched, so its own predictions are unaffected until
            # it is actually evicted (the paper's blacklist rationale —
            # no destructive aliasing in the predictor table).
            if entry is not None and entry.useful > 0:
                entry.useful -= 1
                return
            entry = _Entry(pc)
            self._table[index] = entry
            entry.last_pid = actual
            entry.conf = 1
            return
        entry.useful = min(entry.useful + 1, self.CONF_MAX)
        stride = actual - entry.last_pid
        if stride == entry.stride:
            entry.conf = min(entry.conf + 1, self.CONF_MAX)
        else:
            if entry.conf:
                entry.conf -= 1
            if entry.conf == 0:
                entry.stride = stride
                entry.conf = 1
        entry.last_pid = actual

    def is_blacklisted(self, pc: int) -> bool:
        """Whether ``pc`` is confidently known to load data, not pointers.

        Beyond suppressing predictions, this lets the machine skip the
        alias-cache validation lookup for known data loads (the blacklist's
        "avoid destructive aliasing" role, Section V-C); a stale entry is
        caught by the table walk on the P0AN path and retrained.
        """
        return self._blacklisted(pc)

    def _blacklisted(self, pc: int) -> bool:
        tag, conf = self._blacklist[self._bl_index(pc)]
        return tag == pc and conf >= self.CONF_THRESHOLD

    def _index(self, pc: int) -> int:
        return (pc // INSTR_SLOT) % self.entries

    def _bl_index(self, pc: int) -> int:
        return (pc // INSTR_SLOT) % self._bl_size
