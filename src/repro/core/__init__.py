"""CHEx86 core: capabilities, pointer tracking, microcode customization."""

from .alias import AliasCache, ShadowAliasTable, StoreBufferPids, WALK_LEVELS
from .capability import (
    CAPABILITY_BYTES,
    Capability,
    Perm,
    ShadowCapabilityTable,
    WILD_PID,
)
from .checker import HardwareChecker, LearningStep, Mismatch, RuleAutoConstructor
from .machine import Chex86Machine, MachineError, RunResult
from .mcu import MicrocodeCustomizationUnit, critical_ranges_for
from .predictor import MispredictKind, PointerReloadPredictor
from .rules import MEMORY_POLICY, Propagation, Rule, RuleDatabase
from .tracker import SpeculativePointerTracker
from .variants import FIGURE6_ORDER, CheckPolicy, Variant, VariantTraits, traits_of
from .violations import (
    CapabilityException,
    Violation,
    ViolationKind,
    ViolationLog,
)

__all__ = [
    "AliasCache",
    "CAPABILITY_BYTES",
    "Capability",
    "CapabilityException",
    "CheckPolicy",
    "Chex86Machine",
    "FIGURE6_ORDER",
    "HardwareChecker",
    "LearningStep",
    "MEMORY_POLICY",
    "MachineError",
    "MicrocodeCustomizationUnit",
    "Mismatch",
    "MispredictKind",
    "Perm",
    "PointerReloadPredictor",
    "Propagation",
    "Rule",
    "RuleAutoConstructor",
    "RuleDatabase",
    "RunResult",
    "ShadowAliasTable",
    "ShadowCapabilityTable",
    "SpeculativePointerTracker",
    "StoreBufferPids",
    "Variant",
    "VariantTraits",
    "Violation",
    "ViolationKind",
    "ViolationLog",
    "WALK_LEVELS",
    "WILD_PID",
    "critical_ranges_for",
    "traits_of",
]
