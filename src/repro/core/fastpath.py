"""Decoded-block fast path: a per-static-site front-end cache.

The paper's front end motivates this (Figure 2): x86 cores avoid
re-decoding hot code with a decoded-uop cache (the DSB), and CHEx86
injects its capability micro-ops at exactly that decode boundary.  The
whole front-end product of one static instruction — native micro-ops,
heap-interception plan, ``capCheck`` injection plan, fetch-slot count,
MSROM flag — is therefore a pure function of ``(program, pc, variant)``
and can be compiled once.  ``Chex86Machine.step()`` replays the
precompiled plan per dynamic instance; only the tracker-dependent
decisions (the base register's PID, predicted reloads) stay live.

Per-instance statistics stay exact: the replay path charges decode
counters, interception deltas, and check injection/suppression counters
for every dynamic execution, so a fast-path run is bit-identical to the
old decode-every-step loop — including all ``results/*.txt`` artifacts.

One level up, :class:`Superblock` chains consecutive decoded blocks of a
straight-line region into a single replay unit (the trace-cache idea:
amortize per-instruction dispatch across a whole run of hot code).
``Chex86Machine.run_quantum`` replays superblocks with one dispatch per
*block*, applying the aggregated decode/stat deltas in O(1) per replay;
the per-member side table keeps fetch-group, icache, trace, BBV and
profile-interval accounting bit-identical to per-instruction stepping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import INSTR_SLOT, Instr
from ..microop.decoder import DecodePath
from ..microop.uops import UopKind

#: Formation cap: a superblock never chains more than this many member
#: instructions.  Bounds compile cost and keeps the budget-aware entry
#: guard (`remaining >= len(superblock)`) from starving short quanta.
SUPERBLOCK_MAX_MEMBERS = 64

#: Micro-op kinds that redirect (or end) fetch: a member containing one
#: terminates superblock formation (the control uop itself is included —
#: its dynamic target just ends the replay).
_CONTROL_KINDS = frozenset((UopKind.BR, UopKind.JMP, UopKind.JMP_IND,
                            UopKind.HALT))


@dataclass(slots=True)
class DecodedBlock:
    """Everything the front end produces for one static instruction.

    ``entries`` holds one ``(handler, uop, base_reg, check_mode,
    check_template)`` tuple per micro-op in issue order (MCU-injected
    interception uops first, then the native translation).  ``base_reg``
    is the extended index of the addressing base register (-1 when the
    access has none or no check decision is needed); ``check_mode`` is a
    ``repro.core.mcu.CHECK_*`` constant.
    """

    instr: Instr
    macro_index: int
    path: DecodePath
    native_uops: int
    fetch_slots: int
    msrom: bool
    fallthrough: int
    intercept_deltas: Optional[Tuple[int, int, int, int, int]]
    entries: Tuple[tuple, ...]


def compile_block(machine, pc: int) -> DecodedBlock:
    """Compile the front-end plan for the instruction at ``pc``.

    Raises ValueError (from ``Program.fetch``) when ``pc`` is outside the
    text section; the machine turns that into its usual MachineError.
    """
    program = machine.program
    instr = program.fetch(pc)
    macro_index = program.index_of(pc)
    uops, path = machine.decoder.translation(
        instr, pc, macro_index, id(program))
    injected, deltas = machine.mcu.intercept_plan(pc)

    traits = machine.traits
    fetch_slots = 1
    if traits.checks_in_macro_stream and any(u.is_mem for u in uops):
        fetch_slots = 2
    msrom = path is DecodePath.MSROM or bool(injected)

    track = traits.tracks_pointers
    dispatch = machine._dispatch
    entries = []
    for uop in injected + list(uops):
        base_reg = -1
        mode = 0
        check = None
        if track and uop.is_mem and not uop.injected:
            mode, check = machine.mcu.static_check_plan(pc, uop)
            if check is not None:
                check.macro_index = macro_index
            mem = uop.mem
            if mem is not None and mem.base is not None:
                base_reg = int(mem.base)
        entries.append((dispatch[uop.kind], uop, base_reg, mode, check))

    return DecodedBlock(
        instr=instr,
        macro_index=macro_index,
        path=path,
        native_uops=len(uops),
        fetch_slots=fetch_slots,
        msrom=msrom,
        fallthrough=pc + INSTR_SLOT,
        intercept_deltas=deltas if any(deltas) else None,
        entries=tuple(entries),
    )


@dataclass(slots=True)
class Superblock:
    """A straight-line chain of :class:`DecodedBlock`\\ s replayed as one
    unit (the trace-cache idea one level above the decoded-uop cache).

    ``members`` is the replay-time side table: one ``(pc, fetch_slots,
    icache_line, entries, fallthrough)`` tuple per member instruction,
    with the fetch-group slot count (MSROM widening already applied) and
    the icache line index precomputed so the executor passes plain ints
    to ``TimingModel.fetch_block``.  ``blocks`` keeps the member
    :class:`DecodedBlock`\\ s for the partial-retire unwind path and for
    BBV accounting.  The decode-stat aggregates (``native_uops`` and the
    per-path counts) let a full replay charge its front-end counters as
    one O(1) delta instead of per instruction.
    """

    entry: int
    length: int
    blocks: Tuple[DecodedBlock, ...]
    members: Tuple[Tuple[int, int, int, Tuple[tuple, ...], int], ...]
    native_uops: int
    #: (simple, complex, msrom) decode-path counts across members.
    decode_counts: Tuple[int, int, int]
    #: Specialized replay function generated by ``sbcompile.compile_replay``
    #: (None when the trace compiler declined; the machine then replays
    #: through the interpreted executor).
    replay: Optional[object] = None


def compile_superblock(machine, pc: int) -> Optional[Superblock]:
    """Chain decoded blocks from ``pc`` into a superblock, or ``None``.

    Formation rules (each is required for replay exactness or cost
    control):

    * members follow fallthrough order; the first member containing a
      control-transfer/halt micro-op is included and terminates the
      chain (its dynamic target simply ends the replay);
    * a heap-interception site (``intercept_deltas`` set) stops the
      chain *before* itself — interception charges MCU stats and emits
      trace events that the per-instruction path owns;
    * a pc outside the text section stops the chain (falling through
      into it must trap exactly where the slow path traps);
    * chains are capped at :data:`SUPERBLOCK_MAX_MEMBERS` members and
      must have at least two (a single-member superblock is just the
      decoded-block fast path with extra dispatch).
    """
    fetch_width = machine.config.fetch_width
    line_shift = machine.timing._line_shift
    blocks = []
    pcs = []
    cursor = pc
    while len(blocks) < SUPERBLOCK_MAX_MEMBERS:
        block = machine._block_at(cursor)
        if block is None or block.intercept_deltas is not None:
            break
        blocks.append(block)
        pcs.append(cursor)
        if any(entry[1].kind in _CONTROL_KINDS for entry in block.entries):
            break
        cursor = block.fallthrough
    if len(blocks) < 2:
        return None

    members = []
    native_uops = 0
    n_simple = n_complex = n_msrom = 0
    for member_pc, block in zip(pcs, blocks):
        slots = fetch_width if block.msrom else block.fetch_slots
        members.append((member_pc, slots, member_pc >> line_shift,
                        block.entries, block.fallthrough))
        native_uops += block.native_uops
        path = block.path
        if path is DecodePath.SIMPLE:
            n_simple += 1
        elif path is DecodePath.COMPLEX:
            n_complex += 1
        else:
            n_msrom += 1

    return Superblock(
        entry=pc,
        length=len(blocks),
        blocks=tuple(blocks),
        members=tuple(members),
        native_uops=native_uops,
        decode_counts=(n_simple, n_complex, n_msrom),
    )
