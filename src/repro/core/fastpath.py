"""Decoded-block fast path: a per-static-site front-end cache.

The paper's front end motivates this (Figure 2): x86 cores avoid
re-decoding hot code with a decoded-uop cache (the DSB), and CHEx86
injects its capability micro-ops at exactly that decode boundary.  The
whole front-end product of one static instruction — native micro-ops,
heap-interception plan, ``capCheck`` injection plan, fetch-slot count,
MSROM flag — is therefore a pure function of ``(program, pc, variant)``
and can be compiled once.  ``Chex86Machine.step()`` replays the
precompiled plan per dynamic instance; only the tracker-dependent
decisions (the base register's PID, predicted reloads) stay live.

Per-instance statistics stay exact: the replay path charges decode
counters, interception deltas, and check injection/suppression counters
for every dynamic execution, so a fast-path run is bit-identical to the
old decode-every-step loop — including all ``results/*.txt`` artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import INSTR_SLOT, Instr
from ..microop.decoder import DecodePath


@dataclass(slots=True)
class DecodedBlock:
    """Everything the front end produces for one static instruction.

    ``entries`` holds one ``(handler, uop, base_reg, check_mode,
    check_template)`` tuple per micro-op in issue order (MCU-injected
    interception uops first, then the native translation).  ``base_reg``
    is the extended index of the addressing base register (-1 when the
    access has none or no check decision is needed); ``check_mode`` is a
    ``repro.core.mcu.CHECK_*`` constant.
    """

    instr: Instr
    macro_index: int
    path: DecodePath
    native_uops: int
    fetch_slots: int
    msrom: bool
    fallthrough: int
    intercept_deltas: Optional[Tuple[int, int, int, int, int]]
    entries: Tuple[tuple, ...]


def compile_block(machine, pc: int) -> DecodedBlock:
    """Compile the front-end plan for the instruction at ``pc``.

    Raises ValueError (from ``Program.fetch``) when ``pc`` is outside the
    text section; the machine turns that into its usual MachineError.
    """
    program = machine.program
    instr = program.fetch(pc)
    macro_index = program.index_of(pc)
    uops, path = machine.decoder.translation(
        instr, pc, macro_index, id(program))
    injected, deltas = machine.mcu.intercept_plan(pc)

    traits = machine.traits
    fetch_slots = 1
    if traits.checks_in_macro_stream and any(u.is_mem for u in uops):
        fetch_slots = 2
    msrom = path is DecodePath.MSROM or bool(injected)

    track = traits.tracks_pointers
    dispatch = machine._dispatch
    entries = []
    for uop in injected + list(uops):
        base_reg = -1
        mode = 0
        check = None
        if track and uop.is_mem and not uop.injected:
            mode, check = machine.mcu.static_check_plan(pc, uop)
            if check is not None:
                check.macro_index = macro_index
            mem = uop.mem
            if mem is not None and mem.base is not None:
                base_reg = int(mem.base)
        entries.append((dispatch[uop.kind], uop, base_reg, mode, check))

    return DecodedBlock(
        instr=instr,
        macro_index=macro_index,
        path=path,
        native_uops=len(uops),
        fetch_slots=fetch_slots,
        msrom=msrom,
        fallthrough=pc + INSTR_SLOT,
        intercept_deltas=deltas if any(deltas) else None,
        entries=tuple(entries),
    )
