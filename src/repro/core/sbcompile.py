"""Superblock trace compiler: specialized replay functions.

The interpreted superblock executor (``Chex86Machine._step_superblock``)
already amortizes per-*instruction* dispatch, but it still pays per-uop
interpretation: tuple unpacking, check-mode branching, handler calls, and
attribute traffic for operands that are all pure functions of the static
superblock.  This module closes that gap the way a trace cache does — by
*compiling the trace*: for each :class:`~.fastpath.Superblock` it emits a
straight-line Python function with every static decision folded at
compile time:

* operand register indices, immediates, effective-address shapes, FU
  classes, and latencies appear as literals;
* the per-uop check-injection mode (``CHECK_*``) is resolved into the
  exact residual code — nothing for never-checked uops, a counter bump
  for suppressed sites, the inlined ``capCheck`` body for injection
  sites (guarded by the live base-register PID where the prediction
  policy demands it);
* Table I rule lookups are resolved to their propagation policy (legal
  because rules can only change through the checker co-processor, and
  compilation is refused when a checker is attached), and the tracker's
  per-policy tag updates are inlined;
* ALU semantics, flag derivation, and branch-condition tests are emitted
  per concrete ``AluOp``/condition instead of dispatched.

Exactness contract: the generated function performs *the same mutating
calls in the same order* as the interpreted path — ``timing.fetch_block``
/ ``schedule`` / ``mem_access`` / ``shadow_access``, memory reads/writes,
TLB and capability-cache touches, tracker tag writes, store-buffer
records, and predictor updates all stay interleaved per member.  Only
side-effect-free recomputation (operand decoding, rule lookup, effective
addresses, flag bit twiddling) is hoisted to compile time.  The local
``seq`` counter is flushed before any operation that can raise a
``CapabilityException`` so a trapping replay unwinds with bit-identical
machine state; the trap handler retires the completed prefix and leaves
``rip`` at the trapping member, exactly like the interpreted executor.

Compilation is refused (returning ``None``, which makes the machine fall
back to the interpreted executor) when a checker co-processor is attached
(rules may learn mid-run) or when a member uses a construct the emitter
does not specialize; unknown uop kinds fall back to a plain handler call
inside the generated code, so refusal is rare.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instructions import INSTR_SLOT, Op
from ..isa.registers import MASK64, _FLAG_VALUES
from ..memory.memory import PAGE_SHIFT, PAGE_SIZE
from ..microop.uops import AluOp, Uop, UopKind
from ..telemetry import spans
from .capability import CAPABILITY_BYTES, WILD_PID
from .mcu import (
    CHECK_INJECT,
    CHECK_INJECT_IF_PID,
    CHECK_NEVER,
    CHECK_SUPPRESS,
    CHECK_SUPPRESS_IF_PID,
)
from .predictor import MispredictKind
from .rules import Propagation
from .violations import CapabilityException

#: Memory-resolved propagation policies (the machine routes these through
#: the alias subsystem rather than the register tags).
_MEMORY_POLICIES = (Propagation.FROM_MEMORY, Propagation.TO_MEMORY)

#: Branch-condition expressions over the flag bit vector ``_f``
#: (ZF=bit0, SF=bit1, CF=bit2, OF=bit3) — each evaluates to a bool and
#: agrees with ``machine._branch_taken`` for every flag pattern.
_COND_EXPRS = {
    "je": "(_f & 1) != 0",
    "jne": "(_f & 1) == 0",
    "jl": "((_f >> 1) & 1) != ((_f >> 3) & 1)",
    "jle": "(_f & 1) != 0 or ((_f >> 1) & 1) != ((_f >> 3) & 1)",
    "jg": "(_f & 1) == 0 and ((_f >> 1) & 1) == ((_f >> 3) & 1)",
    "jge": "((_f >> 1) & 1) == ((_f >> 3) & 1)",
    "jb": "(_f & 4) != 0",
    "jae": "(_f & 4) == 0",
}

#: Replay-time prologue bindings, in dependency order.  Only the ones a
#: superblock's body actually references are emitted.
_PROLOGUE = (
    ("timing", "timing = m.timing"),
    ("schedule", "schedule = timing.schedule"),
    ("schedule1", "schedule1 = timing.schedule_simple"),
    ("t_stats", "t_stats = timing.stats"),
    ("fetch_line", "fetch_line = timing.fetch_line"),
    ("mem_access", "mem_access = timing.mem_access"),
    ("shadow_access", "shadow_access = timing.shadow_access"),
    ("taken_branch", "taken_branch = timing.taken_branch"),
    ("redirect", "redirect = timing.redirect"),
    ("regs", "regs = m.regs"),
    ("mem_stats", "mem_stats = m.memory.stats"),
    ("mem_pages", "mem_pages = m.memory._pages"),
    ("new_page", "new_page = m.memory._page"),
    ("tlb_sets", "tlb_sets = m.tlb._cache._sets"),
    ("tlbc_stats", "tlbc_stats = m.tlb._cache.stats"),
    ("tlb_stats", "tlb_stats = m.tlb.stats"),
    ("tlb_refill", "tlb_refill = m.tlb.refill"),
    ("l1d_sets", "l1d_sets = timing.l1d._sets"),
    ("l1d_stats", "l1d_stats = timing.l1d.stats"),
    ("mem_miss", "mem_miss = timing.mem_access_miss"),
    ("tracker", "tracker = m.tracker"),
    ("tags", "tags = m.tracker._tags"),
    ("dirty", "dirty = m.tracker._dirty"),
    ("tcommit", "tcommit = m.tracker.commit"),
    ("tstats", "tstats = m.tracker.stats"),
    ("sbuf", "sbuf = m.store_buffer"),
    ("pending_q", "pending_q = m.store_buffer._pending"),
    ("atable", "atable = m.alias_table"),
    ("acache", "acache = m.alias_cache"),
    ("tlb_mark", "tlb_mark = m.tlb.mark_alias_hosting"),
    ("sys_bcast", "sys_bcast = m.system.broadcast_alias_invalidate"),
    ("mstats", "mstats = m.mcu.stats"),
    ("predict_ex", "predict_ex = m.reload_predictor.predict_ex"),
    ("pred_update", "pred_update = m.reload_predictor.update"),
    ("sb_forward", "sb_forward = m.store_buffer.forward"),
    ("atable_peek", "atable_peek = m.alias_table.peek"),
    ("acache_install", "acache_install = m.alias_cache.install"),
    ("acache_lookup", "acache_lookup = m.alias_cache.lookup"),
    ("tlb_hosts", "tlb_hosts = m.tlb.page_hosts_aliases"),
    ("occupy", "occupy = timing.occupy"),
    ("capcache_access", "capcache_access = m.capcache.access"),
    ("captable_check", "captable_check = m.captable.check"),
    ("ipids_add", "ipids_add = m._interval_pids.add"),
    ("resolve_cond", "resolve_cond = m.predictors.resolve_conditional"),
    ("resolve_ind", "resolve_ind = m.predictors.resolve_indirect"),
    ("on_call", "on_call = m.predictors.on_call"),
)


class _Unsupported(Exception):
    """A construct the emitter does not specialize; fall back to the
    interpreted executor."""


#: Source -> code-object cache shared across machines.  The generated
#: source depends only on the static superblock (program text, variant
#: policy, rule database, timing constants); every machine-specific
#: object is bound *by name* at exec/replay time, so two machines
#: compiling the same superblock produce byte-identical source and can
#: share the (immutable) code object.  This makes re-creating a machine
#: over the same program — benchmark repeats, differential runs,
#: snapshot-restore recompiles — skip the dominant ``compile()`` cost.
_CODE_CACHE: dict = {}


class _Emitter:
    """Accumulates body lines, namespace constants, and pending ``seq``
    increments for one generated replay function."""

    def __init__(self) -> None:
        self.body: List[str] = []
        self.ns: dict = {"MASK64": MASK64}
        self.need: set = set()
        self.pending = 0
        self._obj_names: dict = {}

    # -- code accumulation ------------------------------------------------

    def line(self, text: str, depth: int = 0) -> None:
        self.body.append("    " * (3 + depth) + text)

    def bump(self) -> None:
        """One uop's ``seq``/``total_uops`` advance (folded until used)."""
        self.pending += 1

    def flush(self, depth: int = 0) -> None:
        """Materialize pending ``seq`` increments.

        Must run before any emitted code that reads ``seq`` or that can
        raise a ``CapabilityException`` — the unwind path publishes the
        local back to ``machine._seq`` and must see the same value the
        interpreted path would.
        """
        if self.pending:
            self.line(f"seq += {self.pending}", depth)
            self.pending = 0

    def const(self, obj, prefix: str) -> str:
        """Bind ``obj`` into the function's namespace; returns its name."""
        key = id(obj)
        name = self._obj_names.get(key)
        if name is None:
            name = f"{prefix}{len(self._obj_names)}"
            self._obj_names[key] = name
            self.ns[name] = obj
        return name


# -- expression builders ----------------------------------------------------


def _ea_expr(mem) -> str:
    """Effective-address expression (same sum as ``_effective_address``)."""
    parts = []
    if mem.base is not None:
        parts.append(f"regs[{int(mem.base)}]")
    if mem.index is not None:
        term = f"regs[{int(mem.index)}]"
        if mem.scale != 1:
            term = f"{term} * {mem.scale}"
        parts.append(term)
    if mem.disp or not parts:
        parts.append(str(mem.disp))
    return "(" + " + ".join(parts) + ") & MASK64"


def _emit_current_pid(e: _Emitter, reg: int, out: str, depth: int = 0) -> None:
    """Inline ``tracker.current_pid(reg)`` into local ``out``."""
    e.need.add("tags")
    e.line(f"_t = tags[{reg}]; _tr = _t.transient", depth)
    e.line(f"{out} = _tr[-1][1] if _tr else _t.committed", depth)


def _emit_set_pid(e: _Emitter, dst: int, pid_expr: str, depth: int = 0) -> None:
    """Inline ``tracker.set_pid(dst, pid, seq)`` plus the stats triage
    that ``tracker.apply`` performs after a tag write."""
    e.flush(depth)
    e.need.update(("tags", "dirty", "tstats"))
    e.line(f"tags[{dst}].transient.append((seq, {pid_expr}))", depth)
    e.line(f"dirty.add({dst})", depth)
    if pid_expr == "0":
        e.line("tstats.zeroed += 1", depth)
    elif pid_expr == str(WILD_PID):
        e.line("tstats.wild_assignments += 1", depth)
    else:
        e.line(f"if {pid_expr} == {WILD_PID}:", depth)
        e.line("tstats.wild_assignments += 1", depth + 1)
        e.line(f"elif {pid_expr}:", depth)
        e.line("tstats.transfers += 1", depth + 1)
        e.line("else:", depth)
        e.line("tstats.zeroed += 1", depth + 1)


def _policy_of(machine, uop: Uop) -> Propagation:
    rules = machine.tracker.rules
    rule = rules.lookup(uop)
    return rule.propagation if rule else rules.default_propagation


def _emit_apply(e: _Emitter, machine, uop: Uop) -> None:
    """Inline ``tracker.apply(uop, seq)`` for a register-destination uop.

    Memory policies never reach here for LIMM/MOV/LEA/ALU — their
    handlers discard ``apply``'s MEMORY_POLICY sentinel, which performs
    no tag write, so the residual code is empty.
    """
    policy = _policy_of(machine, uop)
    if policy in _MEMORY_POLICIES or uop.dst is None:
        return
    if policy is Propagation.ZERO:
        _emit_set_pid(e, uop.dst, "0")
        return
    if policy is Propagation.WILD:
        _emit_set_pid(e, uop.dst, str(WILD_PID))
        return
    srcs = uop.srcs
    if policy is Propagation.COPY_SRC or policy is Propagation.FIRST_SRC:
        if not srcs:
            _emit_set_pid(e, uop.dst, "0")
            return
        _emit_current_pid(e, srcs[0], "_pid")
        _emit_set_pid(e, uop.dst, "_pid")
        return
    if policy is Propagation.NONZERO_SRC:
        if not srcs:
            _emit_set_pid(e, uop.dst, "0")
            return
        if len(srcs) == 1:
            # second == 0 statically: apply() resolves to the first
            # source's PID for every first-PID value.
            _emit_current_pid(e, srcs[0], "_pid")
            _emit_set_pid(e, uop.dst, "_pid")
            return
        _emit_current_pid(e, srcs[0], "_p1")
        _emit_current_pid(e, srcs[1], "_p2")
        e.line("if _p1 == 0:")
        e.line("_pid = _p2", 1)
        e.line(f"elif _p2 == 0 or _p1 != {WILD_PID}:")
        e.line("_pid = _p1", 1)
        e.line("else:")
        e.line("_pid = _p2", 1)
        _emit_set_pid(e, uop.dst, "_pid")
        return
    if policy is Propagation.BASE_REG:
        mem = uop.mem
        if mem is None or mem.base is None:
            _emit_set_pid(e, uop.dst, "0")
            return
        _emit_current_pid(e, int(mem.base), "_pid")
        _emit_set_pid(e, uop.dst, "_pid")
        return
    raise _Unsupported(f"propagation policy {policy}")


# -- check-injection sites --------------------------------------------------


def _emit_capcheck_body(e: _Emitter, machine, check: Uop, pc: int,
                        depth: int) -> None:
    """Inline ``_exec_capcheck`` for an injected check template.

    ``base_pid`` and ``address`` are live locals; the tracer is known to
    be detached (the superblock entry guard refuses replay otherwise),
    and ``check.pid`` is not stamped — the inline body consumes the PID
    directly and nothing else reads the template's field.
    """
    e.need.update(("shadow_access", "schedule", "capcache_access",
                   "captable_check", "ipids_add"))
    lat = machine._capcheck_latency
    miss_lat = lat + machine._captable_latency
    rr = check.reg_reads()
    write = bool(check.check_write)
    e.line("if base_pid == 0:", depth)
    e.line(f"shadow_access({lat}, 8)", depth + 1)
    e.line(f"schedule({rr!r}, None, {lat}, 4, False, False, {lat})",
           depth + 1)
    e.line("else:", depth)
    e.line("if capcache_access(base_pid):", depth + 1)
    e.line(f"schedule({rr!r}, None, {lat}, 4, False, False, {lat})",
           depth + 2)
    e.line("else:", depth + 1)
    e.line(f"shadow_access({miss_lat}, {CAPABILITY_BYTES})", depth + 2)
    e.line(f"schedule({rr!r}, None, {miss_lat}, 4, False, False, {lat})",
           depth + 2)
    e.line(f"_v = captable_check(base_pid, address, 8, {write})", depth + 1)
    e.line("if _v is not None:", depth + 1)
    e.line(f"m._flag(_v, {pc})", depth + 2)
    e.line("elif base_pid > 0:", depth + 1)
    e.line("ipids_add(base_pid)", depth + 2)


def _emit_check_site(e: _Emitter, machine, entry, pc: int) -> bool:
    """Emit the front-end check decision for one entry.

    Returns True when the live local ``address`` holds the uop's
    effective address afterwards (the mem emitters then reuse it — the
    check template shares the uop's ``Mem`` operand, and no register
    writes intervene, so one computation is exact for both).
    """
    _handler, uop, base_reg, mode, check = entry
    if not mode:
        return False
    e.need.add("mstats")
    if check is not None:
        # Injection site: CHECK_INJECT fires always, *_IF_PID defers to
        # the live base-register tag (the prediction-driven policy).
        e.flush()
        if base_reg >= 0:
            _emit_current_pid(e, base_reg, "base_pid")
        else:
            e.line("base_pid = 0")
        e.line(f"address = {_ea_expr(uop.mem)}")
        if mode == CHECK_INJECT:
            e.line("mstats.injected_uops += 1")
            e.line("mstats.capchecks += 1")
            e.line("seq += 1")
            _emit_capcheck_body(e, machine, check, pc, depth=0)
        elif mode == CHECK_INJECT_IF_PID:
            if base_reg < 0:
                return True  # base_pid statically 0: never injects
            e.line("if base_pid:")
            e.line("mstats.injected_uops += 1", 1)
            e.line("mstats.capchecks += 1", 1)
            e.line("seq += 1", 1)
            _emit_capcheck_body(e, machine, check, pc, depth=1)
        else:  # pragma: no cover - static_check_plan never builds this
            raise _Unsupported(f"check mode {mode} with template")
        return True
    if mode == CHECK_SUPPRESS:
        e.line("mstats.capchecks_suppressed_context += 1")
    elif mode == CHECK_SUPPRESS_IF_PID:
        if base_reg >= 0:
            _emit_current_pid(e, base_reg, "base_pid")
            e.line("if base_pid:")
            e.line("mstats.capchecks_suppressed_context += 1", 1)
    else:  # pragma: no cover - exhaustive over CHECK_* constants
        raise _Unsupported(f"check mode {mode} without template")
    return False


# -- per-kind uop emitters --------------------------------------------------


def _emit_alu(e: _Emitter, machine, uop: Uop) -> None:
    alu = uop.alu
    srcs = uop.srcs
    imm = uop.imm
    e.bump()
    if srcs:
        e.line(f"a = regs[{srcs[0]}]")
        if len(srcs) > 1:
            e.line(f"b = regs[{srcs[1]}]")
        elif imm is not None:
            e.line(f"b = {imm & MASK64}")
        else:
            e.line("b = 0")
    elif imm is not None:
        e.line(f"a = {imm & MASK64}")
        e.line("b = 0")
    else:
        e.line("a = 0")
        e.line("b = 0")

    carry_expr = "0"
    overflow = False
    if alu is AluOp.ADD:
        e.line("_tot = a + b")
        e.line("result = _tot & MASK64")
        carry_expr = "4 if _tot > MASK64 else 0"
        overflow = True
        ov_test = ("_sa == ((b >> 63) & 1) and "
                   "((result >> 63) & 1) != _sa")
    elif alu is AluOp.SUB or alu is AluOp.CMP:
        e.line("result = (a - b) & MASK64")
        carry_expr = "4 if a < b else 0"
        overflow = True
        ov_test = ("_sa != ((b >> 63) & 1) and "
                   "((result >> 63) & 1) != _sa")
    elif alu is AluOp.AND or alu is AluOp.TEST:
        e.line("result = a & b")
    elif alu is AluOp.OR:
        e.line("result = a | b")
    elif alu is AluOp.XOR:
        e.line("result = a ^ b")
    elif alu is AluOp.MUL:
        e.line("result = (a * b) & MASK64")
    elif alu is AluOp.SHL:
        e.line("result = (a << (b & 63)) & MASK64")
    elif alu is AluOp.SHR:
        e.line("result = a >> (b & 63)")
    elif alu is AluOp.NEG:
        e.line("result = (-a) & MASK64")
        carry_expr = "4 if a != 0 else 0"
    elif alu is AluOp.NOT:
        e.line("result = (~a) & MASK64")
    else:  # pragma: no cover - exhaustive over AluOp
        raise _Unsupported(f"ALU op {alu}")

    writeback = alu not in (AluOp.CMP, AluOp.TEST) and uop.dst is not None
    if writeback:
        e.line(f"regs[{uop.dst}] = result")
    if uop.writes_flags:
        e.line("_bits = 1 if result == 0 else (2 if result >> 63 else 0)")
        if carry_expr != "0":
            e.line(f"_bits |= {carry_expr}")
        if overflow:
            e.line("_sa = (a >> 63) & 1")
            e.line(f"if {ov_test}:")
            e.line("_bits |= 8", 1)
        e.line("m.flags = _FLAGS[_bits]")
        e.ns["_FLAGS"] = _FLAG_VALUES
    if machine._tracks:
        _emit_apply(e, machine, uop)
    if alu is AluOp.MUL:
        e.need.add("schedule")
        e.line(f"schedule({srcs!r}, {uop.dst!r}, 3, 1, "
               f"{bool(uop.reads_flags)}, {bool(uop.writes_flags)})")
    else:
        e.need.add("schedule1")
        e.line(f"schedule1({srcs!r}, {uop.dst!r}, "
               f"{bool(uop.reads_flags)}, {bool(uop.writes_flags)})")


def _emit_limm(e: _Emitter, machine, uop: Uop) -> None:
    e.bump()
    e.line(f"regs[{uop.dst}] = {uop.imm & MASK64}")
    if machine._tracks:
        _emit_apply(e, machine, uop)
    e.need.add("schedule1")
    e.line(f"schedule1((), {uop.dst})")


def _emit_mov(e: _Emitter, machine, uop: Uop) -> None:
    e.bump()
    e.line(f"regs[{uop.dst}] = regs[{uop.srcs[0]}]")
    if machine._tracks:
        _emit_apply(e, machine, uop)
    e.need.add("schedule1")
    e.line(f"schedule1({uop.srcs!r}, {uop.dst})")


def _emit_lea(e: _Emitter, machine, uop: Uop) -> None:
    e.bump()
    e.line(f"regs[{uop.dst}] = {_ea_expr(uop.mem)}")
    if machine._tracks:
        _emit_apply(e, machine, uop)
    e.need.add("schedule1")
    e.line(f"schedule1({uop.reg_reads()!r}, {uop.dst})")


def _emit_nop(e: _Emitter, machine, uop: Uop) -> None:
    e.bump()
    e.need.add("schedule1")
    e.line("schedule1((), None)")


def _emit_zero_idiom(e: _Emitter, machine, uop: Uop) -> None:
    e.bump()  # squashed at the instruction queue: seq advances, no work


def _emit_tlb(e: _Emitter, machine) -> None:
    """Inline ``m.tlb.access(address)`` (dtlb hit path; misses call the
    refill continuation).  The dtlb key is the page — ``line_shift`` is 0
    and there is no victim array, so a set miss is a genuine miss."""
    e.need.update(("tlb_sets", "tlbc_stats", "tlb_stats", "tlb_refill"))
    num_sets = machine.tlb._cache.num_sets
    e.line(f"_pn = address >> {PAGE_SHIFT}")
    e.line(f"_ts = tlb_sets[_pn % {num_sets}]")
    e.line("if _pn in _ts:")
    e.line("_ts.move_to_end(_pn)", 1)
    e.line("tlbc_stats.hits += 1", 1)
    e.line("tlb_stats.hits += 1", 1)
    e.line("else:")
    e.line("tlb_refill(address)", 1)


def _emit_l1d(e: _Emitter, machine, out: Optional[str]) -> None:
    """Inline the L1d hit probe of ``timing.mem_access``; the hit latency
    lands in local ``out`` (None discards it — the store shape)."""
    e.need.update(("l1d_sets", "l1d_stats", "mem_miss"))
    l1 = machine.timing.l1d
    e.line(f"_ln = address >> {l1.line_shift}")
    e.line(f"_ds = l1d_sets[_ln % {l1.num_sets}]")
    e.line("if _ln in _ds:")
    e.line("_ds.move_to_end(_ln)", 1)
    e.line("l1d_stats.hits += 1", 1)
    if out is not None:
        e.line(f"{out} = {machine.timing._l1_latency}", 1)
        e.line("else:")
        e.line(f"{out} = mem_miss(address)", 1)
    else:
        e.line("else:")
        e.line("mem_miss(address)", 1)


def _emit_resolve_reload(e: _Emitter, machine, uop: Uop, pc: int) -> None:
    """Inline ``machine._resolve_reload`` for a memory-policy load.

    Locals ``_wa``, ``done``, and ``seq`` (flushed by the caller) are
    live; the tracer is known detached (superblock entry guard), so its
    emit calls vanish.  The PNA0 recovery's ghost check uop reduces to
    its counter effects — the interpreted path allocates a throwaway
    ``Uop`` only to demote it, which is pure stats.
    """
    e.need.update(("predict_ex", "pred_update", "sb_forward",
                   "atable_peek", "acache_install", "acache_lookup",
                   "tlb_hosts", "shadow_access", "occupy", "atable",
                   "tags", "dirty"))
    walk = machine._walk_latency
    e.line(f"predicted, _bl = predict_ex({pc})")
    e.line("_fwd = sb_forward(_wa)")
    e.line("if _fwd is not None:")
    e.line("actual = _fwd", 1)
    e.line("elif _bl:")
    e.line("actual = atable_peek(_wa)", 1)
    e.line("if actual:", 1)
    e.line(f"shadow_access({walk}, 16)", 2)
    e.line(f"occupy(5, done, {walk})", 2)
    e.line("acache_install(_wa, actual)", 2)
    e.line("elif tlb_hosts(_wa):")
    e.line("actual, _h = acache_lookup(_wa, atable)", 1)
    e.line("if not _h:", 1)
    e.line(f"shadow_access({walk}, 16)", 2)
    e.line(f"occupy(5, done, {walk})", 2)
    e.line("else:")
    e.line("actual = 0", 1)
    e.line(f"outcome = pred_update({pc}, predicted, actual)")
    if machine._tracked_policy:
        e.need.update(("redirect", "tracker", "sbuf", "mstats"))
        e.ns["P0AN"] = MispredictKind.P0AN
        e.ns["PNA0"] = MispredictKind.PNA0
        e.line("if outcome == P0AN:")
        e.line(f"redirect(done, {machine._flush_penalty}, alias=True)", 1)
        e.line("tracker.squash(seq)", 1)
        e.line("sbuf.squash_after(seq)", 1)
        e.line("elif outcome == PNA0:")
        e.line("mstats.injected_uops += 1", 1)
        e.line("mstats.zero_idioms += 1", 1)
        e.line("m.total_uops += 1", 1)
    e.line("if m.trace_reloads and actual > 0:")
    e.line(f"m.reload_trace.append(({pc}, actual))", 1)
    # tracker.set_pid (no stats triage on this path)
    e.line(f"tags[{uop.dst}].transient.append((seq, actual))")
    e.line(f"dirty.add({uop.dst})")


def _emit_load(e: _Emitter, machine, uop: Uop, pc: int,
               have_address: bool) -> None:
    e.bump()
    e.need.update(("mem_stats", "mem_pages", "t_stats", "schedule"))
    if not have_address:
        e.line(f"address = {_ea_expr(uop.mem)}")
    e.line("_wa = address & ~7")
    # Inlined read_word: _wa is 8-byte aligned by construction, and an
    # unmapped page reads as zero.
    e.line("mem_stats.reads += 1")
    e.line("mem_stats.bytes_read += 8")
    e.line(f"_pg = mem_pages.get(_wa >> {PAGE_SHIFT})")
    e.line(f"regs[{uop.dst}] = "
           f"_pg[(_wa & {PAGE_SIZE - 1}) >> 3] if _pg is not None else 0")
    _emit_tlb(e, machine)
    e.line("t_stats.loads += 1")
    _emit_l1d(e, machine, "_mlat")
    lsu_extra = f" + {machine._lsu_latency}" if machine._lsu else ""
    e.line(f"done = schedule({uop.reg_reads()!r}, {uop.dst}, "
           f"_mlat{lsu_extra}, 2)")
    if machine._tracks:
        policy = _policy_of(machine, uop)
        if policy in _MEMORY_POLICIES:
            e.flush()
            _emit_resolve_reload(e, machine, uop, pc)
        else:
            _emit_apply(e, machine, uop)
    if machine._lsu:
        e.flush()
        uname = e.const(uop, "U")
        e.line(f"m._lsu_check({uname}, address, False, {pc})")


def _emit_store(e: _Emitter, machine, uop: Uop, pc: int,
                have_address: bool) -> None:
    e.bump()
    e.need.update(("mem_stats", "mem_pages", "new_page", "t_stats",
                   "schedule"))
    if not have_address:
        e.line(f"address = {_ea_expr(uop.mem)}")
    e.line("_wa = address & ~7")
    data = f"regs[{uop.srcs[0]}]" if uop.srcs else str(uop.imm & MASK64)
    # Inlined write_word: _wa is aligned by construction, and register
    # values are invariantly 64-bit masked (every writeback masks).
    e.line("mem_stats.writes += 1")
    e.line("mem_stats.bytes_written += 8")
    e.line(f"_pg = mem_pages.get(_wa >> {PAGE_SHIFT})")
    e.line("if _pg is None:")
    e.line(f"_pg = new_page(_wa >> {PAGE_SHIFT})", 1)
    e.line(f"_pg[(_wa & {PAGE_SIZE - 1}) >> 3] = {data}")
    _emit_tlb(e, machine)
    e.line("t_stats.stores += 1")
    _emit_l1d(e, machine, None)
    latency = 1 + (machine._lsu_latency if machine._lsu else 0)
    e.line(f"schedule({uop.reg_reads()!r}, None, {latency}, 3)")
    if machine._tracks:
        policy = _policy_of(machine, uop)
        if policy in _MEMORY_POLICIES:
            e.flush()
            e.need.add("sbuf")
            if uop.srcs:
                _emit_current_pid(e, uop.srcs[0], "_spid")
                e.line(f"if _spid == {WILD_PID}:")
                e.line("_spid = 0", 1)
                e.line("sbuf.record(seq, _wa, _spid)")
            else:
                e.line("sbuf.record(seq, _wa, 0)")
        # A register-policy store has no destination tag: apply() is a
        # no-op, so no residual code.
    if machine._lsu:
        e.flush()
        uname = e.const(uop, "U")
        e.line(f"m._lsu_check({uname}, address, True, {pc})")


def _emit_br(e: _Emitter, machine, uop: Uop, pc: int, fallthrough: int) -> None:
    cond = _COND_EXPRS.get(uop.cond)
    if cond is None:
        raise _Unsupported(f"branch condition {uop.cond!r}")
    e.bump()
    e.flush()  # the squash path consumes seq
    e.need.update(("schedule1", "resolve_cond", "taken_branch", "redirect"))
    e.line(f"done = schedule1({uop.srcs!r}, None, True)")
    e.line("_f = m.flags._value_")
    e.line(f"taken = {cond}")
    e.line(f"if resolve_cond({pc}, taken):")
    e.line("if taken:", 1)
    e.line("taken_branch()", 2)
    e.line(f"next_rip = {uop.target}", 2)
    e.line("else:", 1)
    e.line(f"next_rip = {fallthrough}", 2)
    e.line("else:")
    e.line(f"redirect(done, {machine._br_penalty})", 1)
    if machine._tracks:
        e.need.update(("tracker", "sbuf"))
        e.line("tracker.squash(seq)", 1)
        e.line("sbuf.squash_after(seq)", 1)
    e.line(f"next_rip = {uop.target} if taken else {fallthrough}", 1)


def _emit_jmp(e: _Emitter, machine, uop: Uop, pc: int) -> None:
    e.bump()
    e.need.update(("schedule1", "taken_branch"))
    e.line(f"schedule1({uop.srcs!r}, None)")
    instrs = machine.program.instrs
    mi = uop.macro_index
    if 0 <= mi < len(instrs) and instrs[mi].op is Op.CALL:
        e.need.add("on_call")
        e.line(f"on_call({pc + INSTR_SLOT})")
    e.line("taken_branch()")
    e.line(f"next_rip = {uop.target}")


def _emit_jmp_ind(e: _Emitter, machine, uop: Uop, pc: int) -> None:
    e.bump()
    e.flush()  # the squash path consumes seq
    e.need.update(("schedule1", "resolve_ind", "taken_branch", "redirect"))
    e.line(f"done = schedule1({uop.srcs!r}, None)")
    e.line(f"next_rip = regs[{uop.srcs[0]}]")
    instrs = machine.program.instrs
    mi = uop.macro_index
    is_ret = 0 <= mi < len(instrs) and instrs[mi].op is Op.RET
    e.line(f"if resolve_ind({pc}, next_rip, is_return={is_ret}):")
    e.line("taken_branch()", 1)
    e.line("else:")
    e.line(f"redirect(done, {machine._br_penalty})", 1)
    if machine._tracks:
        e.need.update(("tracker", "sbuf"))
        e.line("tracker.squash(seq)", 1)
        e.line("sbuf.squash_after(seq)", 1)


def _emit_generic(e: _Emitter, entry, pc: int) -> None:
    """Plain handler call for kinds without a specialized emitter
    (host escapes, native capability uops).  None of these redirect
    fetch or set ``halted``, so the result is discarded."""
    handler, uop = entry[0], entry[1]
    e.bump()
    e.flush()  # handlers consume seq and may raise
    hname = e.const(handler, "H")
    uname = e.const(uop, "U")
    e.line(f"{hname}({uname}, {pc}, seq)")


# -- driver -----------------------------------------------------------------


def _emit_member_commit(e: _Emitter, machine, retired_count: int) -> None:
    """The per-member commit epilogue: tracker tag finalization and the
    store-buffer drain into the alias structures, then the retire mark."""
    e.flush()
    if machine._tracks:
        e.need.update(("dirty", "tcommit", "tstats", "pending_q", "sbuf",
                       "atable", "acache", "tlb_mark", "sys_bcast"))
        e.line("if dirty:")
        e.line("tcommit(seq)", 1)
        e.line("else:")
        e.line("tstats.commits += 1", 1)
        e.line("if pending_q:")
        e.line("for _a, _p in sbuf.commit_upto(seq, atable, acache):", 1)
        e.line("if _p:", 2)
        e.line("tlb_mark(_a)", 3)
        e.line(f"sys_bcast(_a, {machine.core_id})", 2)
    e.line(f"retired = {retired_count}")


def compile_replay(machine, sb) -> Optional[object]:
    """Compile ``sb`` into a specialized replay function, or ``None``.

    The returned callable has the same contract as
    ``Chex86Machine._step_superblock``: called under ``run_quantum``'s
    entry guard, it replays the whole superblock, returns the number of
    members retired, and unwinds a trapping ``CapabilityException`` with
    the completed prefix retired and ``rip`` at the trapping member.

    Refuses (returns ``None``) when a checker co-processor is attached:
    rule lookups are folded into the generated code, which is only sound
    while the rule database cannot learn mid-run.
    """
    if machine.checker is not None:
        return None
    with spans.maybe("sbcompile.compile", category="core",
                     entry=f"{sb.entry:#x}", members=len(sb.members)):
        return _compile_replay(machine, sb)


def _compile_replay(machine, sb) -> Optional[object]:
    try:
        e = _Emitter()
        e.need.add("regs")  # effective addresses / operands — always used
        members = sb.members
        last = len(members) - 1
        fetch_width = machine.timing._fetch_width
        for k, (pc, slots, line, entries, fallthrough) in enumerate(members):
            e.line(f"# -- member {k}: pc={pc:#x}")
            # Inlined fetch_block: group packing as two compares on the
            # precomputed slot count, icache only on a changed line.
            e.need.update(("timing", "t_stats", "fetch_line"))
            e.line(f"_gu = timing._group_used + {slots}")
            e.line(f"if _gu > {fetch_width}:")
            e.line("timing._fetch_cycle += 1", 1)
            e.line(f"timing._group_used = {slots}", 1)
            e.line("t_stats.fetch_groups += 1", 1)
            e.line("else:")
            e.line("timing._group_used = _gu", 1)
            e.line(f"if timing._last_iline != {line}:")
            e.line(f"fetch_line({line})", 1)
            for entry in entries:
                uop = entry[1]
                kind = uop.kind
                have_address = _emit_check_site(e, machine, entry, pc)
                if kind is UopKind.ALU:
                    _emit_alu(e, machine, uop)
                elif kind is UopKind.LD:
                    _emit_load(e, machine, uop, pc, have_address)
                elif kind is UopKind.ST:
                    _emit_store(e, machine, uop, pc, have_address)
                elif kind is UopKind.MOV:
                    _emit_mov(e, machine, uop)
                elif kind is UopKind.LIMM:
                    _emit_limm(e, machine, uop)
                elif kind is UopKind.LEA:
                    _emit_lea(e, machine, uop)
                elif kind is UopKind.NOP:
                    _emit_nop(e, machine, uop)
                elif kind is UopKind.ZERO_IDIOM:
                    _emit_zero_idiom(e, machine, uop)
                elif kind is UopKind.HALT:
                    e.bump()
                    e.line("m.halted = True")
                    _emit_member_commit(e, machine, k + 1)
                    e.line(f"next_rip = {fallthrough}")
                    e.line("break")
                    break  # trailing entries never execute once halted
                elif kind is UopKind.BR:
                    if k != last:
                        raise _Unsupported("control uop before last member")
                    _emit_br(e, machine, uop, pc, fallthrough)
                elif kind is UopKind.JMP:
                    if k != last:
                        raise _Unsupported("control uop before last member")
                    _emit_jmp(e, machine, uop, pc)
                elif kind is UopKind.JMP_IND:
                    if k != last:
                        raise _Unsupported("control uop before last member")
                    _emit_jmp_ind(e, machine, uop, pc)
                else:
                    _emit_generic(e, entry, pc)
            else:
                _emit_member_commit(e, machine, k + 1)
                if k == last and not any(
                        entry[1].kind in (UopKind.BR, UopKind.JMP,
                                          UopKind.JMP_IND)
                        for entry in entries):
                    e.line(f"next_rip = {fallthrough}")
    except _Unsupported:
        return None

    ns = e.ns
    ns["SB"] = sb
    ns["PCS"] = tuple(member[0] for member in members)
    ns["CapEx"] = CapabilityException
    if e.need & {"schedule", "schedule1", "t_stats", "fetch_line",
                 "mem_access", "shadow_access", "taken_branch", "redirect",
                 "l1d_sets", "l1d_stats", "mem_miss", "occupy"}:
        e.need.add("timing")
    prologue = [code for name, code in _PROLOGUE if name in e.need]
    src = "\n".join(
        ["def _replay(m):"]
        + ["    " + code for code in prologue]
        + [
            "    seq = m._seq",
            "    _seq0 = seq",
            "    retired = 0",
            "    try:",
            "        while True:",
        ]
        + e.body
        + [
            "            break",
            "    except CapEx:",
            "        m._superblock_bailouts += 1",
            "        m._retire_members(SB, retired, retired + 1)",
            "        m.rip = PCS[retired]",
            "        raise",
            "    finally:",
            "        m._seq = seq",
            "        m.total_uops += seq - _seq0",
            "    m._retire_members(SB, retired, retired)",
            "    m.rip = next_rip",
            "    return retired",
        ]
    )
    code = _CODE_CACHE.get(src)
    if code is None:
        code = compile(src, f"<superblock {sb.entry:#x}>", "exec")
        _CODE_CACHE[src] = code
    exec(code, ns)
    replay = ns["_replay"]
    replay.source = src  # introspection/debugging hook
    return replay
