"""The Microcode Customization Unit (MCU).

Implements the paper's on-demand micro-op instrumentation (Section IV):

* **Heap interception** — the OS registers the entry and exit instruction
  addresses of the heap-management functions (plus their register
  signatures) in MSRs; when fetch reaches one of those addresses the MCU
  re-routes translation through the microcode RAM and appends
  ``capGen.Begin/End`` or ``capFree.Begin/End`` micro-ops.
* **Dereference instrumentation** — depending on the variant's check
  policy, memory micro-ops get a ``capCheck`` micro-op injected ahead of
  them; in the prediction-driven default this is *surgical*: only
  dereferences whose base register carries a non-zero PID are checked.
* **Context sensitivity** — an optional set of security-critical code
  ranges restricts ``capCheck`` injection to those regions while heap
  interception (capability generation/freeing) stays always-on, so the
  shadow state is complete whenever checks are enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..heap.library import HeapFnKind, RegisteredFunction
from ..isa.registers import RET_REG
from ..microop.uops import Uop, UopKind
from .variants import CheckPolicy, VariantTraits

#: Static check-injection modes, resolved once per (pc, uop) site by
#: :meth:`MicrocodeCustomizationUnit.static_check_plan` and replayed by the
#: decoded-block fast path.  The ``*_IF_PID`` modes defer to the live base
#: PID from the speculative pointer tracker (the prediction-driven policy).
CHECK_NEVER = 0
CHECK_INJECT = 1
CHECK_INJECT_IF_PID = 2
CHECK_SUPPRESS = 3
CHECK_SUPPRESS_IF_PID = 4

#: Check policies that never inject (their checks are fused, explicit in
#: the binary, or absent).
_NO_INJECT_POLICIES = (CheckPolicy.NONE, CheckPolicy.LSU, CheckPolicy.EXPLICIT)


def critical_ranges_for(program, function_labels: Sequence[str]
                        ) -> List[Tuple[int, int]]:
    """Derive critical code ranges from function labels.

    Context-sensitive enforcement (Section IV) protects "security-critical
    code"; operators think in functions, the MCU in address ranges.  A
    function's extent runs from its label to the next *function boundary*
    — where function boundaries are the program entry plus every label the
    program ``call``s (internal loop labels do not split a function).
    """
    from ..isa.instructions import Op
    from ..isa.operands import LabelRef

    call_targets = {
        program.labels[operand.name]
        for instr in program.instrs if instr.op is Op.CALL
        for operand in instr.operands
        if isinstance(operand, LabelRef) and operand.name in program.labels
    }
    boundaries = sorted(call_targets | {program.entry, program.text_end})
    ranges: List[Tuple[int, int]] = []
    for name in function_labels:
        start = program.labels.get(name)
        if start is None:
            raise KeyError(f"no label {name!r} in program {program.name!r}")
        after = [b for b in boundaries if b > start]
        ranges.append((start, after[0] if after else program.text_end))
    return ranges


@dataclass
class McuStats:
    """Injection counters (Figure 6 bottom: micro-op expansion)."""

    injected_uops: int = 0
    capchecks: int = 0
    capchecks_suppressed_context: int = 0
    capgen_events: int = 0
    capfree_events: int = 0
    entry_intercepts: int = 0
    exit_intercepts: int = 0
    zero_idioms: int = 0

    def register_metrics(self, registry, prefix: str = "machine.mcu") -> None:
        """Expose the injection counters as ``<prefix>.*`` pull gauges."""
        registry.register_object(prefix, self, (
            "injected_uops", "capchecks", "capchecks_suppressed_context",
            "capgen_events", "capfree_events", "entry_intercepts",
            "exit_intercepts", "zero_idioms"))


class MicrocodeCustomizationUnit:
    """Injects capability micro-ops into the decoded stream."""

    def __init__(
        self,
        registrations: Sequence[RegisteredFunction],
        traits: VariantTraits,
        critical_ranges: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        self.traits = traits
        self._by_entry: Dict[int, RegisteredFunction] = {}
        self._by_exit: Dict[int, RegisteredFunction] = {}
        if traits.intercepts_heap:
            for registration in registrations:
                self._by_entry[registration.entry] = registration
                self._by_exit[registration.exit] = registration
        self.critical_ranges = list(critical_ranges) if critical_ranges else None
        self.stats = McuStats()

    # -- heap interception ------------------------------------------------------

    def intercept(self, address: int) -> List[Uop]:
        """Micro-ops to append for a fetch at ``address`` (usually none).

        Entry of an allocation routine yields ``capGen.Begin`` (reading the
        size registers); its exit yields ``capGen.End`` (reading the return
        register).  ``free`` mirrors this with ``capFree``; ``realloc``
        yields both pairs.
        """
        injected, deltas = self.intercept_plan(address)
        self.apply_intercept_stats(deltas)
        return injected

    def intercept_plan(
        self, address: int,
    ) -> Tuple[List[Uop], Tuple[int, int, int, int, int]]:
        """Like :meth:`intercept`, but without touching :attr:`stats`.

        Returns the injected uops together with the stat deltas one dynamic
        execution of this site incurs, as ``(entry_intercepts,
        exit_intercepts, capgen_events, capfree_events, injected_uops)``.
        The decoded-block fast path compiles this once per static site and
        applies the deltas per replay via :meth:`apply_intercept_stats`.
        """
        injected: List[Uop] = []
        entry = exit_ = capgen = capfree = 0
        registration = self._by_entry.get(address)
        if registration is not None:
            entry = 1
            if registration.kind in (HeapFnKind.FREE, HeapFnKind.REALLOC):
                injected.append(Uop(
                    UopKind.CAPFREE_BEGIN, srcs=(int(registration.ptr_reg),),
                    injected=True))
                capfree = 1
            if registration.kind in (HeapFnKind.ALLOC, HeapFnKind.REALLOC):
                injected.append(Uop(
                    UopKind.CAPGEN_BEGIN,
                    srcs=tuple(int(r) for r in registration.size_regs),
                    injected=True))
                capgen = 1
        registration = self._by_exit.get(address)
        if registration is not None:
            exit_ = 1
            if registration.kind in (HeapFnKind.FREE, HeapFnKind.REALLOC):
                injected.append(Uop(UopKind.CAPFREE_END, injected=True))
            if registration.kind in (HeapFnKind.ALLOC, HeapFnKind.REALLOC):
                injected.append(Uop(
                    UopKind.CAPGEN_END, srcs=(int(RET_REG),), injected=True))
        return injected, (entry, exit_, capgen, capfree, len(injected))

    def apply_intercept_stats(
        self, deltas: Tuple[int, int, int, int, int],
    ) -> None:
        """Charge one dynamic execution of an interception site."""
        stats = self.stats
        stats.entry_intercepts += deltas[0]
        stats.exit_intercepts += deltas[1]
        stats.capgen_events += deltas[2]
        stats.capfree_events += deltas[3]
        stats.injected_uops += deltas[4]

    # -- dereference instrumentation ----------------------------------------------

    def check_for(self, pc: int, uop: Uop, base_pid: int) -> Optional[Uop]:
        """The ``capCheck`` to inject ahead of memory micro-op ``uop``.

        Returns None when the policy does not instrument this access.  The
        LSU policy (hardware-only variant) never injects — its checks are
        fused into the load/store itself (the machine asks
        :meth:`lsu_checks` instead).
        """
        policy = self.traits.check_policy
        if policy in (CheckPolicy.NONE, CheckPolicy.LSU,
                      CheckPolicy.EXPLICIT):
            # EXPLICIT: the binary already carries its capchk instructions
            # (the translator's output); nothing to inject.
            return None
        if not uop.is_mem or uop.is_capability:
            return None
        if policy is CheckPolicy.TRACKED and base_pid == 0:
            return None
        if self.critical_ranges is not None and not self._critical(pc):
            # Context-sensitive mode: allocations are still tracked, but
            # checks outside the security-critical regions are not injected.
            self.stats.capchecks_suppressed_context += 1
            return None
        check = self._make(UopKind.CAPCHECK, mem=uop.mem)
        check.pid = base_pid
        check.check_write = uop.kind is UopKind.ST
        self.stats.capchecks += 1
        return check

    def static_check_plan(
        self, pc: int, uop: Uop,
    ) -> Tuple[int, Optional[Uop]]:
        """Resolve the static half of :meth:`check_for` for one site.

        Everything except the base register's PID is a pure function of
        ``(pc, uop, variant)``: whether the policy instruments at all,
        whether ``pc`` sits inside a critical range, and the shape of the
        injected ``capCheck``.  Returns ``(mode, template)`` where ``mode``
        is one of the ``CHECK_*`` constants and ``template`` is a reusable
        check uop (``pid`` is stamped per dynamic instance) or None.
        """
        policy = self.traits.check_policy
        if policy in _NO_INJECT_POLICIES:
            return CHECK_NEVER, None
        if not uop.is_mem or uop.is_capability:
            return CHECK_NEVER, None
        tracked = policy is CheckPolicy.TRACKED
        if self.critical_ranges is not None and not self._critical(pc):
            return (CHECK_SUPPRESS_IF_PID if tracked else CHECK_SUPPRESS,
                    None)
        template = Uop(UopKind.CAPCHECK, mem=uop.mem, injected=True,
                       check_write=uop.kind is UopKind.ST)
        return (CHECK_INJECT_IF_PID if tracked else CHECK_INJECT, template)

    def lsu_checks(self) -> bool:
        """Whether the load/store unit performs fused checks (HW-only)."""
        return self.traits.check_policy is CheckPolicy.LSU

    def demote_to_zero_idiom(self, check: Uop) -> None:
        """PNA0 recovery: mark an injected check as an x86 zero idiom so it
        is squashed at the instruction queue before dispatch."""
        check.kind = UopKind.ZERO_IDIOM
        self.stats.zero_idioms += 1

    # -- internals -------------------------------------------------------------------

    def _make(self, kind: UopKind, srcs: Tuple[int, ...] = (), mem=None) -> Uop:
        self.stats.injected_uops += 1
        return Uop(kind, srcs=srcs, mem=mem, injected=True)

    def _critical(self, pc: int) -> bool:
        return any(lo <= pc < hi for lo, hi in self.critical_ranges)

    @property
    def intercept_addresses(self) -> Tuple[int, ...]:
        return tuple(set(self._by_entry) | set(self._by_exit))
