"""The OS loader: process creation exactly as Section IV-C describes.

"At the time of scheduling a process on a CHEx86 core, the OS kernel or
other trusted entities may configure a set of model-specific registers
(MSRs) to register the instruction address of the entry and exit points of
key heap management functions ... Furthermore, at the time of process
creation and program loading, the OS kernel may also load the symbol table
into memory, if available, and further instruct CHEx86 (again, using a
privileged wrmsr instruction) to initialize the shadow capability table by
generating a capability for each global data object found in the symbol
table."

:class:`ProcessLoader` performs that sequence against an :class:`MsrFile`
and builds the machine from the MSR contents — the machine never sees
source-level information that didn't flow through the OS interface.  It
also demonstrates the context-switch path (MSRs saved and restored per
process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..heap.library import registrations_for
from ..isa.program import Program
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from .msr import MsrFile, MsrSnapshot


@dataclass
class Process:
    """One loaded process: its program plus its saved MSR state."""

    pid: int
    program: Program
    msr_state: MsrSnapshot
    variant: Variant


class ProcessLoader:
    """Creates CHEx86 processes through the privileged MSR interface."""

    def __init__(self, config: CoreConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.msr = MsrFile()
        self._next_pid = 1
        self.processes: Dict[int, Process] = {}
        self._running: Optional[int] = None

    # -- process creation --------------------------------------------------------

    def create_process(self, program: Program,
                       variant: Variant = Variant.UCODE_PREDICTION,
                       max_alloc_bytes: Optional[int] = None) -> Process:
        """Program the MSRs for ``program`` and record the process.

        Performs the paper's initial-configuration sequence:

        1. register every linked heap-management function's entry/exit
           addresses and signature (``wrmsr`` per slot);
        2. configure the maximum allocatable block size;
        3. enable capability protection;
        4. snapshot the MSR state for later context switches.

        (Step "initialize shadow capabilities from the symbol table"
        happens when the machine attaches, since the shadow tables are
        per-process state the machine owns.)

        The new process's MSR image is prepared in a *staging* register
        file — creating a process must not disturb whatever is currently
        running on the core (its state is only saved at the next context
        switch).
        """
        staging = MsrFile()
        for registration in registrations_for(program):
            staging.register_function(registration)
        staging.set_max_alloc_bytes(
            max_alloc_bytes if max_alloc_bytes is not None
            else self.config.max_alloc_bytes)
        if variant is not Variant.INSECURE:
            staging.enable_protection()
        process = Process(
            pid=self._next_pid,
            program=program,
            msr_state=staging.save(),
            variant=variant,
        )
        self._next_pid += 1
        self.processes[process.pid] = process
        return process

    # -- scheduling ------------------------------------------------------------------

    def context_switch(self, pid: int) -> Process:
        """Restore ``pid``'s MSR state onto the core (save/restore demo)."""
        if self._running is not None:
            self.processes[self._running].msr_state = self.msr.save()
        process = self.processes[pid]
        self.msr.restore(process.msr_state)
        self._running = pid
        return process

    def attach_machine(self, process: Process,
                       static_analysis_objects=(), **machine_kwargs
                       ) -> Chex86Machine:
        """Build the core for ``process`` *from the MSR contents*.

        The machine's MCU interception set, heap-spray limit, and variant
        come from what the kernel programmed — nothing else.

        ``static_analysis_objects`` are extra ``(base, size)`` regions to
        protect beyond the symbol table — the paper notes the approach "is
        flexible enough to be configured with metadata derived from more
        sophisticated static analysis".  Each gets its own capability; a
        pointer to the region's base can then be tracked like any global.
        """
        self.context_switch(process.pid)
        variant = process.variant
        if not self.msr.protection_enabled:
            variant = Variant.INSECURE
        config = self.config.with_(
            max_alloc_bytes=self.msr.max_alloc_bytes)
        machine = Chex86Machine(process.program, variant=variant,
                                config=config, **machine_kwargs)
        # Re-point the MCU at the MSR-programmed registration set (the
        # decoded slots), making the OS interface authoritative.
        from ..core.mcu import MicrocodeCustomizationUnit

        machine.mcu = MicrocodeCustomizationUnit(
            self.msr.registered_functions(), machine.traits,
            machine.mcu.critical_ranges)
        machine.captable.max_alloc_bytes = self.msr.max_alloc_bytes
        if machine.traits.intercepts_heap:
            for index, (base, size) in enumerate(static_analysis_objects):
                pid = machine.captable.register_global(base, size)
                machine._global_pids[f"static_analysis_{index}"] = pid
        return machine
