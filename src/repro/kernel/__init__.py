"""OS-side substrate: MSR interface and process loader (Section IV-C)."""

from .loader import Process, ProcessLoader
from .msr import (
    MAX_REGISTRATIONS,
    MSR_CHEX86_CTL,
    MSR_CHEX86_FN_BASE,
    MSR_CHEX86_FN_COUNT,
    MSR_CHEX86_MAX_ALLOC,
    MsrError,
    MsrFile,
    MsrSnapshot,
)

__all__ = [
    "MAX_REGISTRATIONS",
    "MSR_CHEX86_CTL",
    "MSR_CHEX86_FN_BASE",
    "MSR_CHEX86_FN_COUNT",
    "MSR_CHEX86_MAX_ALLOC",
    "MsrError",
    "MsrFile",
    "MsrSnapshot",
    "Process",
    "ProcessLoader",
]
