"""Model-specific registers: the OS-to-CHEx86 configuration interface.

Section IV-C, *Initial Configuration*: "the OS kernel or other trusted
entities may configure a set of model-specific registers (MSRs) to register
the instruction address of the entry and exit points of key heap management
functions ... along with their respective signatures (recorded as a vector
of architectural register names)."  The same interface carries the
maximum-allocatable-size limit the heap-spray check enforces and the
global protection-enable bit.  "These MSRs are saved and restored upon a
context switch", and there is "a model-specific limit on the number of
entry/exit points that can be registered per process."

This module models that register file: numbered MSRs with ``wrmsr`` /
``rdmsr`` access, an encoding for registered heap functions, and
save/restore snapshots for context switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..heap.library import HeapFnKind, RegisteredFunction
from ..isa.registers import Reg

#: Model-specific limit on registered entry/exit points per process.
MAX_REGISTRATIONS = 8

# ---------------------------------------------------------------------------
# MSR numbering (a vendor-defined range, CHEX86_* in this model).
# ---------------------------------------------------------------------------

#: Global enable: bit 0 = capability protection on.
MSR_CHEX86_CTL = 0xC000_0100
#: Maximum allocatable block size (the capGen.Begin heap-spray limit).
MSR_CHEX86_MAX_ALLOC = 0xC000_0101
#: Number of valid function-registration slots.
MSR_CHEX86_FN_COUNT = 0xC000_0102
#: Registration slots: each slot is a pair of MSRs
#: (entry/exit addresses packed, signature descriptor).
MSR_CHEX86_FN_BASE = 0xC000_0110

_KIND_CODES = {HeapFnKind.ALLOC: 1, HeapFnKind.FREE: 2, HeapFnKind.REALLOC: 3}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class MsrError(Exception):
    """Privileged-register access the model rejects."""


def _encode_signature(registration: RegisteredFunction) -> int:
    """Pack kind + size-register vector + pointer register into 64 bits.

    Layout: [kind:4][n_size_regs:4][size_reg0:8][size_reg1:8][ptr_reg:8]
    (register fields hold ``reg + 1`` so 0 means "none").
    """
    value = _KIND_CODES[registration.kind]
    value |= len(registration.size_regs) << 4
    for i, reg in enumerate(registration.size_regs[:2]):
        value |= (int(reg) + 1) << (8 + 8 * i)
    if registration.ptr_reg is not None:
        value |= (int(registration.ptr_reg) + 1) << 24
    return value


def _decode_signature(name: str, entry: int, exit_: int,
                      value: int) -> RegisteredFunction:
    kind = _CODE_KINDS[value & 0xF]
    n_size = (value >> 4) & 0xF
    size_regs: List[Reg] = []
    for i in range(n_size):
        raw = (value >> (8 + 8 * i)) & 0xFF
        size_regs.append(Reg(raw - 1))
    ptr_raw = (value >> 24) & 0xFF
    ptr_reg = Reg(ptr_raw - 1) if ptr_raw else None
    return RegisteredFunction(name=name, kind=kind, entry=entry, exit=exit_,
                              size_regs=tuple(size_regs), ptr_reg=ptr_reg)


@dataclass
class MsrSnapshot:
    """Per-process MSR state, saved/restored at context switches."""

    values: Dict[int, int]
    names: Dict[int, str]


class MsrFile:
    """The CHEx86 model-specific register file of one core."""

    def __init__(self) -> None:
        self._values: Dict[int, int] = {
            MSR_CHEX86_CTL: 0,
            MSR_CHEX86_MAX_ALLOC: 1 << 30,
            MSR_CHEX86_FN_COUNT: 0,
        }
        # Function names ride alongside (debug metadata, not architectural).
        self._names: Dict[int, str] = {}

    # -- raw privileged access --------------------------------------------------

    def wrmsr(self, number: int, value: int) -> None:
        """Privileged write (the kernel's ``wrmsr`` instruction)."""
        if not self._known(number):
            raise MsrError(f"write to unimplemented MSR {number:#x}")
        self._values[number] = value & ((1 << 64) - 1)

    def rdmsr(self, number: int) -> int:
        if not self._known(number):
            raise MsrError(f"read of unimplemented MSR {number:#x}")
        return self._values.get(number, 0)

    def _known(self, number: int) -> bool:
        if number in (MSR_CHEX86_CTL, MSR_CHEX86_MAX_ALLOC,
                      MSR_CHEX86_FN_COUNT):
            return True
        offset = number - MSR_CHEX86_FN_BASE
        return 0 <= offset < MAX_REGISTRATIONS * 3

    # -- typed helpers the loader uses ---------------------------------------------

    @property
    def protection_enabled(self) -> bool:
        return bool(self.rdmsr(MSR_CHEX86_CTL) & 1)

    def enable_protection(self) -> None:
        self.wrmsr(MSR_CHEX86_CTL, self.rdmsr(MSR_CHEX86_CTL) | 1)

    @property
    def max_alloc_bytes(self) -> int:
        return self.rdmsr(MSR_CHEX86_MAX_ALLOC)

    def set_max_alloc_bytes(self, limit: int) -> None:
        self.wrmsr(MSR_CHEX86_MAX_ALLOC, limit)

    def register_function(self, registration: RegisteredFunction) -> int:
        """Program one entry/exit registration slot; returns the slot index.

        Raises :class:`MsrError` past the model-specific limit.
        """
        slot = self.rdmsr(MSR_CHEX86_FN_COUNT)
        if slot >= MAX_REGISTRATIONS:
            raise MsrError(
                f"model-specific registration limit ({MAX_REGISTRATIONS}) "
                f"exceeded")
        base = MSR_CHEX86_FN_BASE + slot * 3
        self.wrmsr(base, registration.entry)
        self.wrmsr(base + 1, registration.exit)
        self.wrmsr(base + 2, _encode_signature(registration))
        self._names[slot] = registration.name
        self.wrmsr(MSR_CHEX86_FN_COUNT, slot + 1)
        return slot

    def registered_functions(self) -> List[RegisteredFunction]:
        """Decode every programmed slot (what the MCU consumes)."""
        out: List[RegisteredFunction] = []
        for slot in range(self.rdmsr(MSR_CHEX86_FN_COUNT)):
            base = MSR_CHEX86_FN_BASE + slot * 3
            out.append(_decode_signature(
                self._names.get(slot, f"fn{slot}"),
                self.rdmsr(base), self.rdmsr(base + 1),
                self.rdmsr(base + 2)))
        return out

    # -- context switching ----------------------------------------------------------

    def save(self) -> MsrSnapshot:
        """Snapshot for a context switch (per-process MSR state)."""
        return MsrSnapshot(values=dict(self._values),
                           names=dict(self._names))

    def restore(self, snapshot: MsrSnapshot) -> None:
        self._values = dict(snapshot.values)
        self._names = dict(snapshot.names)

    def clear(self) -> None:
        """Reset to power-on state (a fresh process with no registrations)."""
        self.__init__()
