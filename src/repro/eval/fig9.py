"""Figure 9: memory storage overhead and memory bandwidth impact.

Top: resident memory (application + shadow structures) for the insecure
baseline, AddressSanitizer, and prediction-driven CHEx86 — the paper's
claim is that CHEx86 allocates no more shadow memory than ASan while
performing far better.
Bottom: DRAM bandwidth of the baseline vs CHEx86 — low shadow-cache miss
rates keep the difference small, with pointer-heavy outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.report import render_table
from ..core.alias import NODE_BYTES
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER
from .engine import CellSpec, EvalEngine

#: The three designs Figure 9 compares.
FIG9_DEFENSES = ("insecure", "asan", "ucode-prediction")


@dataclass
class Figure9Result:
    rss: Dict[str, Dict[str, int]]           # benchmark -> defense -> bytes
    bandwidth: Dict[str, Dict[str, float]]   # benchmark -> defense -> MB/s

    def rss_overhead(self, defense: str, benchmark: str) -> float:
        cells = self.rss[benchmark]
        if not cells["insecure"]:
            return 0.0
        return cells[defense] / cells["insecure"] - 1.0

    def chex86_no_worse_than_asan(self) -> bool:
        """The paper's storage claim, per benchmark.

        CHEx86's shadow structures scale with allocations and spilled
        references; ASan's shadow scales with every word touched.  At the
        small scale of these runs the alias table's fixed radix skeleton
        (a handful of 4 KB nodes) can exceed ASan's shadow on benchmarks
        that allocate almost nothing, so that constant is allowed for —
        asymptotically it vanishes.
        """
        skeleton_allowance = 6 * NODE_BYTES
        return all(
            cells["ucode-prediction"] <= cells["asan"] + skeleton_allowance
            for cells in self.rss.values()
        )

    def bandwidth_ratios(self) -> List[float]:
        return [
            cells["ucode-prediction"] / cells["insecure"]
            for cells in self.bandwidth.values() if cells["insecure"]
        ]

    def average_bandwidth_increase(self) -> float:
        ratios = self.bandwidth_ratios()
        return sum(ratios) / len(ratios) - 1.0 if ratios else 0.0

    def median_bandwidth_increase(self) -> float:
        """The paper's "no significant change" claim holds in the median;
        the increase is concentrated in pointer-intensive outliers."""
        ratios = sorted(self.bandwidth_ratios())
        if not ratios:
            return 0.0
        mid = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[mid] - 1.0
        return (ratios[mid - 1] + ratios[mid]) / 2 - 1.0

    def format_text(self) -> str:
        rss_rows = [
            [bench,
             f"{cells['insecure'] / 1024:.0f} KB",
             f"{cells['asan'] / 1024:.0f} KB",
             f"{cells['ucode-prediction'] / 1024:.0f} KB"]
            for bench, cells in self.rss.items()
        ]
        bw_rows = [
            [bench,
             f"{cells['insecure']:.1f}",
             f"{cells['ucode-prediction']:.1f}"]
            for bench, cells in self.bandwidth.items()
        ]
        return "\n\n".join([
            render_table(
                ["benchmark", "insecure", "asan", "chex86"], rss_rows,
                title="Figure 9 (top): memory storage (resident, incl. "
                      "shadow structures)"),
            render_table(
                ["benchmark", "insecure MB/s", "chex86 MB/s"], bw_rows,
                title="Figure 9 (bottom): memory bandwidth"),
            (f"CHEx86 shadow storage <= ASan on every benchmark: "
             f"{self.chex86_no_worse_than_asan()}; bandwidth increase "
             f"median {self.median_bandwidth_increase():+.1%}, average "
             f"{self.average_bandwidth_increase():+.1%} (outlier-dominated)"),
        ])


def cell_specs(scale: int = 1,
               benchmarks: Sequence[str] = BENCHMARK_ORDER,
               config: CoreConfig = DEFAULT_CONFIG,
               max_instructions: int = 2_000_000) -> List[CellSpec]:
    return [
        CellSpec(workload=name, defense=label, scale=scale,
                 max_instructions=max_instructions, config=config)
        for name in benchmarks
        for label in FIG9_DEFENSES
    ]


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 2_000_000,
        engine: Optional[EvalEngine] = None) -> Figure9Result:
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config,
                                        max_instructions),
                             artifact="fig9")
    rss: Dict[str, Dict[str, int]] = {}
    bandwidth: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        rss[name] = {}
        bandwidth[name] = {}
        for label in FIG9_DEFENSES:
            run_ = cells[CellSpec(workload=name, defense=label, scale=scale,
                                  max_instructions=max_instructions,
                                  config=config)]
            rss[name][label] = run_.total_rss_bytes
            bandwidth[name][label] = run_.bandwidth_mb_per_s
    return Figure9Result(rss=rss, bandwidth=bandwidth)
