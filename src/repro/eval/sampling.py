"""Checkpointed SimPoint sampling on top of the evaluation engine.

``profile → select → checkpoint → replay``: the paper's methodology
simulates representative regions (PinPlay + SimPoint) rather than whole
benchmarks.  This module closes our reproduction's gap between
``analysis/simpoint.py`` (which can *select* simulation points) and
``eval/engine.py`` (which can fan cells out across workers) using the
machine checkpoint/restore subsystem (``core/snapshot.py``):

1. **Profile** the workload once under the insecure variant, collecting
   per-interval basic-block vectors.  BBVs describe the macro-instruction
   stream, which the transparency oracle guarantees is identical across
   non-ASan defenses — one profile serves every defense column.
2. **Select** simulation points with k-means over the projected BBVs
   (``SimPointSelection``).
3. **Checkpoint**: run the cell's own variant once, snapshotting the
   machine at the start of each selected interval.
4. **Replay** each selected interval as an independent ``"interval"``
   engine cell.  The fan-out inherits everything the engine already
   provides: parallel workers, content-hash caching (keyed by snapshot
   digest, not path), journal entries, retry/timeout fault-tolerance.
5. **Estimate**: per-interval telemetry deltas are extrapolated to
   full-run totals through ``SimPointSelection.estimate`` (weighted by
   cluster population), ``merge=last`` gauges are taken from the
   highest replayed interval, and ratio metrics are recomputed over the
   estimated totals — the registry's snapshot/merge algebra end to end.

The estimated :class:`BenchmarkRun` is keyed under the *original*
benchmark spec in the engine's in-memory memo, so the figure/table
drivers slice sampled results exactly as they slice full runs.  Nothing
is written to the full-run disk cache: a later non-``--simpoint`` run
still computes (and caches) exact cells.

Cells that sampling cannot represent fall back to full simulation:
ASan cells (the sanitizer runtime installs custom host hooks, which the
snapshot subsystem refuses), multi-threaded workloads (single-core
snapshots only), pattern-profile cells, and runs too short to span two
intervals.  See ``docs/sampling.md`` for the accuracy caveats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.simpoint import SimPointSelection, select
from ..core.machine import Chex86Machine
from ..core.snapshot import save as save_snapshot
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..telemetry import spans
from ..telemetry.registry import METRICS_SCHEMA
from .common import BenchmarkRun, IntervalRun
from .engine import CellSpec, EvalEngine, _VARIANT_BY_LABEL

#: Default profiling/replay interval (instructions).  Small enough that
#: the default 2M-instruction cells span ~40 intervals, large enough
#: that warm-up bias at interval boundaries stays small.
DEFAULT_INTERVAL = 50_000

#: Default cap on simulation points (SimPoint's classic max_k).
DEFAULT_MAX_K = 8


@dataclass(frozen=True)
class SimPointPlan:
    """The sampling parameters one ``--simpoint`` invocation uses."""

    interval: int = DEFAULT_INTERVAL
    max_k: int = DEFAULT_MAX_K
    seed: int = 7

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.max_k <= 0:
            raise ValueError(f"max_k must be > 0, got {self.max_k}")


@dataclass
class _Profile:
    """One workload's profile, shared across its defense columns."""

    selection: SimPointSelection
    halted: bool            # the program finishes within the budget
    instructions: int       # exact full-run instruction count
    seconds: float          # wall-clock cost of the profiling run


@dataclass
class EstimateRecord:
    """Bookkeeping for one estimated cell (the accuracy report)."""

    workload: str
    defense: str
    scale: int
    points: int
    intervals: int
    interval_length: int
    coverage: float
    profile_seconds: float
    checkpoint_seconds: float
    estimated: Dict[str, float]
    full: Optional[Dict[str, float]] = None
    relative_error: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


class SamplingEngine:
    """An ``EvalEngine`` wrapper that estimates eligible benchmark cells
    from checkpointed SimPoint intervals instead of simulating them
    end to end.

    Drives the inner engine for everything else (pattern cells, ASan,
    multi-threaded workloads, too-short runs) and for the interval
    replay fan-out itself, so every engine feature — parallel workers,
    caching, journaling, retries — applies unchanged.  The public
    surface mirrors ``EvalEngine`` via delegation; drivers cannot tell
    the difference.
    """

    def __init__(self, engine: EvalEngine,
                 plan: SimPointPlan = SimPointPlan(),
                 echo: Optional[Callable[[str], None]] = None) -> None:
        self._engine = engine
        self.plan = plan
        self.echo = echo if echo is not None else engine.echo
        self._profiles: Dict[Tuple[str, int, int], Optional[_Profile]] = {}
        self.estimates: List[EstimateRecord] = []
        self._checkpoint_dir = Path(engine.cache_dir) / "checkpoints"

    def __getattr__(self, name: str):
        return getattr(self._engine, name)

    # -- the EvalEngine surface ----------------------------------------------

    def get(self, spec: CellSpec):
        return self.run_cells([spec])[spec]

    def run_cells(self, specs: Sequence[CellSpec],
                  artifact: str = "") -> Dict[CellSpec, object]:
        # The whole sampled batch — eligibility profiling, checkpoint
        # passes, inner replay fan-out — runs under the inner engine's
        # span tracer (a no-op context when tracing is off).
        with self._engine._tracing():
            return self._run_batch(specs, artifact)

    def _run_batch(self, specs: Sequence[CellSpec],
                   artifact: str) -> Dict[CellSpec, object]:
        unique: List[CellSpec] = []
        seen = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)
        sampled = [spec for spec in unique
                   if spec not in self._engine._memo
                   and self._eligible(spec)]
        passthrough = [spec for spec in unique if spec not in sampled]
        if passthrough:
            self._engine.run_cells(passthrough, artifact=artifact)
        for spec in sampled:
            with spans.maybe("simpoint.estimate", cell=spec.label):
                self._estimate_cell(spec, artifact)
        return {spec: self._engine._memo[spec] for spec in unique}

    def write_metrics(self, path, specs: Sequence[CellSpec],
                      artifact: str) -> None:
        """Delegate the sidecar, then drop the estimation-accuracy report
        (``simpoint_<artifact>.json``) next to it."""
        self._engine.write_metrics(path, specs, artifact)
        target = Path(path)
        report = target.with_name(f"simpoint_{artifact}.json")
        addressed = {(spec.workload, spec.defense, spec.scale)
                     for spec in specs}
        records = [record for record in self.estimates
                   if (record.workload, record.defense,
                       record.scale) in addressed]
        if records:
            self.write_estimate_report(report, artifact, records)

    def write_estimate_report(self, path, artifact: str,
                              records: Optional[List[EstimateRecord]] = None
                              ) -> None:
        """Write estimate-vs-full-run accuracy records as JSON."""
        import json

        records = self.estimates if records is None else records
        document = {
            "schema": METRICS_SCHEMA,
            "artifact": artifact,
            "plan": {"interval": self.plan.interval,
                     "max_k": self.plan.max_k, "seed": self.plan.seed},
            "cells": [record.to_dict() for record in records],
        }
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")

    # -- eligibility ----------------------------------------------------------

    def _eligible(self, spec: CellSpec) -> bool:
        """Can this cell be estimated from checkpointed intervals?"""
        if spec.kind != "benchmark":
            return False
        if spec.defense == "asan":
            return False  # custom host hooks: not snapshotable
        if spec.max_instructions < 2 * self.plan.interval:
            return False  # too short to sample
        profile = self._profile_for(spec)
        return profile is not None

    def _profile_for(self, spec: CellSpec) -> Optional[_Profile]:
        """Profile + select once per (workload, scale, budget); ``None``
        marks a workload sampling cannot handle (cached too)."""
        key = (spec.workload, spec.scale, spec.max_instructions)
        if key in self._profiles:
            return self._profiles[key]
        from ..workloads import build

        workload = build(spec.workload, spec.scale)
        profile: Optional[_Profile] = None
        if workload.threads == 1:
            started = time.perf_counter()
            with spans.maybe("simpoint.profile", workload=spec.workload,
                             budget=spec.max_instructions):
                program = assemble(workload.source, name=workload.name)
                machine = Chex86Machine(program, variant=Variant.INSECURE,
                                        halt_on_violation=False)
                machine.bbv_interval = self.plan.interval
                machine.run(max_instructions=spec.max_instructions)
                machine.flush_profiling_intervals()
                vectors = list(machine.bbv_vectors)
            seconds = time.perf_counter() - started
            if len(vectors) >= 2:
                selection = select(vectors, max_k=self.plan.max_k,
                                   interval_length=self.plan.interval,
                                   seed=self.plan.seed)
                profile = _Profile(selection=selection,
                                   halted=machine.halted,
                                   instructions=machine.instructions,
                                   seconds=seconds)
                self.echo(f"[simpoint] {spec.workload}: "
                          f"{selection.intervals} intervals -> "
                          f"{len(selection.points)} point(s), "
                          f"coverage {selection.coverage:.0%}")
        self._profiles[key] = profile
        return profile

    # -- the sampled path -----------------------------------------------------

    def _estimate_cell(self, spec: CellSpec, artifact: str) -> None:
        profile = self._profile_for(spec)
        selection = profile.selection
        checkpoint_started = time.perf_counter()
        with spans.maybe("simpoint.checkpoint", cell=spec.label,
                         points=len(selection.points)):
            interval_specs = self._checkpoint(spec, selection)
        checkpoint_seconds = time.perf_counter() - checkpoint_started
        replayed = self._engine.run_cells(interval_specs, artifact=artifact)
        intervals = {s.interval_index: replayed[s] for s in interval_specs}
        with spans.maybe("simpoint.extrapolate", cell=spec.label,
                         intervals=len(intervals)):
            run = self._combine(spec, profile, intervals)
        # Memo only: drivers re-keying by the original spec (and
        # cell_metrics/memoized) see the estimate, while the on-disk
        # full-run cache stays exact-only.
        self._engine._memo[spec] = run
        self._record_estimate(spec, profile, run, checkpoint_seconds)

    def _checkpoint(self, spec: CellSpec,
                    selection: SimPointSelection) -> List[CellSpec]:
        """Run the cell's own variant once, snapshotting at the start of
        each selected interval; returns the replay cell specs."""
        from ..workloads import build

        workload = build(spec.workload, spec.scale)
        program = assemble(workload.source, name=workload.name)
        variant = _VARIANT_BY_LABEL[spec.defense]
        machine = Chex86Machine(program, variant=variant, config=spec.config,
                                halt_on_violation=False)
        wanted = sorted(point.interval for point in selection.points)
        interval = selection.interval_length
        specs: List[CellSpec] = []
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        cursor = 0
        for index in wanted:
            # Advance to the start of interval ``index`` (a halted
            # machine stays put; its snapshot replays zero instructions,
            # matching the profiled tail).
            machine.run_quantum((index - cursor) * interval)
            cursor = index
            name = (f"{spec.workload}-{spec.defense}-{spec.scale}"
                    f"-{spec.cache_key()}-i{index}.ckpt").replace("/", "_")
            path = self._checkpoint_dir / name
            digest = save_snapshot(machine, path)
            specs.append(CellSpec(
                workload=spec.workload, defense=spec.defense,
                scale=spec.scale, max_instructions=spec.max_instructions,
                kind="interval", config=spec.config,
                interval_index=index, interval_length=interval,
                checkpoint=str(path), checkpoint_digest=digest))
        return specs

    def _combine(self, spec: CellSpec, profile: _Profile,
                 intervals: Dict[int, IntervalRun]) -> BenchmarkRun:
        """Extrapolate replayed interval deltas to a full-run estimate."""
        from ..workloads import build

        selection = profile.selection
        n = selection.intervals
        # Ratio definitions and merge=last names come from a probe
        # machine's registry — the metric tree is program-independent,
        # so this stays correct when new metrics are added.
        probe = Chex86Machine(assemble("main:\n    halt\n", name="probe"),
                              config=spec.config).telemetry
        last_names = probe._last_metrics()
        ratio_names = set(probe._ratios)

        summed_names = set()
        for run in intervals.values():
            summed_names.update(name for name in run.metrics_delta
                                if name not in last_names
                                and name not in ratio_names)
        metrics: Dict[str, float] = {}
        for name in summed_names:
            per_interval = [0.0] * n
            for index, run in intervals.items():
                per_interval[index] = run.metrics_delta.get(name, 0.0)
            metrics[name] = n * selection.estimate(per_interval)
        deepest = intervals[max(intervals)]
        for name in last_names:
            if name in deepest.final_metrics:
                metrics[name] = deepest.final_metrics[name]
        probe._apply_ratios(metrics)

        phase: Dict[str, int] = {}
        phase_names = set()
        for run in intervals.values():
            phase_names.update(run.phase_delta)
        for name in phase_names:
            per_interval = [0.0] * n
            for index, run in intervals.items():
                per_interval[index] = run.phase_delta.get(name, 0)
            phase[name] = int(round(n * selection.estimate(per_interval)))

        workload = build(spec.workload, spec.scale)

        def count(name: str) -> int:
            return int(round(metrics.get(name, 0.0)))

        return BenchmarkRun(
            benchmark=workload.name,
            suite=workload.suite,
            defense=spec.defense,
            threads=workload.threads,
            halted=profile.halted,
            flagged=any(run.flagged for run in intervals.values()),
            # The profiling run yields the instruction count exactly
            # (variant-transparent), so no estimation error there.
            instructions=profile.instructions,
            cycles=count("timing.cycles"),
            uops=count("machine.uops"),
            native_uops=count("machine.native_uops"),
            injected_uops=count("machine.mcu.injected_uops"),
            capcache_accesses=count("cache.cap.accesses"),
            capcache_misses=count("cache.cap.misses"),
            aliascache_accesses=count("cache.alias.accesses"),
            aliascache_misses=count("cache.alias.misses"),
            predictor_lookups=count("predictor.lookups"),
            predictor_mispredicts=count("predictor.mispredictions"),
            squash_cycles=count("timing.squash_cycles"),
            alias_squash_cycles=count("timing.alias_squash_cycles"),
            core_cycles_total=count("timing.cycles"),
            dram_bytes=count("timing.dram_bytes"),
            shadow_dram_bytes=count("timing.shadow_dram_bytes"),
            rss_bytes=deepest.rss_bytes,
            shadow_rss_bytes=deepest.shadow_rss_bytes,
            frequency_ghz=spec.config.frequency_ghz,
            phase_counters=phase,
            metrics=metrics,
        )

    def _record_estimate(self, spec: CellSpec, profile: _Profile,
                         run: BenchmarkRun,
                         checkpoint_seconds: float) -> None:
        """Log the estimate; compare to a cached full run when one
        exists (never computing one just for the comparison)."""
        selection = profile.selection
        headline = ("cycles", "uops", "injected_uops", "squash_cycles",
                    "dram_bytes")
        record = EstimateRecord(
            workload=spec.workload, defense=spec.defense, scale=spec.scale,
            points=len(selection.points), intervals=selection.intervals,
            interval_length=selection.interval_length,
            coverage=selection.coverage,
            profile_seconds=round(profile.seconds, 4),
            checkpoint_seconds=round(checkpoint_seconds, 4),
            estimated={name: getattr(run, name) for name in headline},
        )
        full = self._engine._cache_load(spec)
        if isinstance(full, BenchmarkRun):
            record.full = {name: getattr(full, name) for name in headline}
            record.relative_error = {
                name: (abs(record.estimated[name] - record.full[name])
                       / record.full[name]) if record.full[name] else 0.0
                for name in headline
            }
            worst = max(record.relative_error.values())
            self.echo(f"[simpoint] {spec.label}: worst headline error "
                      f"vs cached full run {worst:.1%}")
        self.estimates.append(record)
