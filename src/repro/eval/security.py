"""Security evaluation (paper Section VII-A).

Runs the three exploit suites — RIPE's 850 attack forms, the ASan test
analogue, and the 18 How2Heap scenarios — under prediction-driven CHEx86
and reports detection, the violation-kind histogram (the paper's
per-anchor-point counts), and, as a control, how many attacks actually
land on the insecure baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.report import render_table
from ..core.variants import Variant
from ..exploits import asan_suite, how2heap, ripe
from ..exploits.harness import SuiteResult, run_suite


@dataclass
class SecurityResult:
    chex86: Dict[str, SuiteResult]
    insecure: Dict[str, SuiteResult]

    def all_flagged(self) -> bool:
        """The headline: CHEx86 thwarts every exploit in every suite."""
        return all(result.detected == result.total
                   for result in self.chex86.values())

    def no_hijack_under_chex86(self) -> bool:
        return all(result.hijacked == 0 for result in self.chex86.values())

    def format_text(self) -> str:
        rows = []
        for suite, result in self.chex86.items():
            control = self.insecure[suite]
            rows.append([
                suite, result.total,
                f"{result.detected}/{result.total}",
                result.hijacked,
                control.hijacked,
            ])
        table = render_table(
            ["suite", "exploits", "detected (CHEx86)",
             "hijacks under CHEx86", "hijacks on insecure baseline"],
            rows, title="Security evaluation (Section VII-A)")
        kind_lines = []
        for suite, result in self.chex86.items():
            histogram = ", ".join(
                f"{kind.value}: {count}"
                for kind, count in sorted(result.kinds_histogram().items(),
                                          key=lambda kv: -kv[1])
            )
            kind_lines.append(f"  {suite}: {histogram}")
        return (f"{table}\n\nViolation kinds flagged:\n"
                + "\n".join(kind_lines))


def run(ripe_limit: Optional[int] = None,
        variant: Variant = Variant.UCODE_PREDICTION) -> SecurityResult:
    """Run all three suites.  ``ripe_limit`` subsamples RIPE (every k-th
    case) for quick runs; None runs all 850."""
    ripe_cases = ripe.generate_suite()
    if ripe_limit is not None and ripe_limit < len(ripe_cases):
        step = max(1, len(ripe_cases) // ripe_limit)
        ripe_cases = ripe_cases[::step][:ripe_limit]
    suites = {
        "RIPE": ripe_cases,
        "ASan suite": asan_suite.generate_suite(),
        "How2Heap": how2heap.generate_suite(),
    }
    chex86 = {
        name: run_suite(name, cases, variant)
        for name, cases in suites.items()
    }
    insecure = {
        name: run_suite(name, cases, "none")
        for name, cases in suites.items()
    }
    return SecurityResult(chex86=chex86, insecure=insecure)
