"""Figure 3: benchmark memory allocation behaviour.

For each benchmark: total allocations, maximum live allocations, and
allocations in use per execution interval — the three log-scale series
whose order-of-magnitude gaps motivate the 64-entry capability cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.allocprofile import AllocationProfile, profile_workload
from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER, build


@dataclass
class Figure3Result:
    profiles: List[AllocationProfile]

    def gaps_hold(self) -> bool:
        """The figure's claim: in-use << max-live <= total, overall."""
        totals = sum(p.total_allocations for p in self.profiles)
        lives = sum(p.max_live for p in self.profiles)
        in_use = sum(p.avg_in_use_per_interval for p in self.profiles)
        return totals >= lives and lives >= in_use

    def average_in_use(self) -> float:
        """The paper reports 7034 allocations in use per 100M-instruction
        interval on average; this is our scaled equivalent."""
        if not self.profiles:
            return 0.0
        return (sum(p.avg_in_use_per_interval for p in self.profiles)
                / len(self.profiles))

    def format_text(self) -> str:
        rows = [
            [p.benchmark, p.total_allocations, p.max_live,
             f"{p.avg_in_use_per_interval:.1f}"]
            for p in self.profiles
        ]
        table = render_table(
            ["benchmark", "total allocations", "max live",
             "in-use / interval"],
            rows, title="Figure 3: Benchmark memory allocation behaviour")
        return (f"{table}\n\nAverage allocations in use per interval: "
                f"{self.average_in_use():.1f} "
                f"(motivates the 64-entry capability cache)")


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 600_000) -> Figure3Result:
    profiles = [
        profile_workload(build(name, scale), config, max_instructions)
        for name in benchmarks
    ]
    return Figure3Result(profiles=profiles)
