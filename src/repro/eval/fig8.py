"""Figure 8: pointer-alias misprediction rate and squash time.

Top: misprediction rate of the pointer-alias detection unit at 1024 vs
2048 predictor entries (paper: ~11% average — 89% accuracy).
Bottom: percentage of time spent squashing instructions, insecure baseline
vs prediction-driven CHEx86 (paper: only a slight increase — the alias
misprediction squash penalty is negligible next to uop expansion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER
from .engine import CellSpec, EvalEngine

#: Predictor sizes swept in the top panel.
PREDICTOR_SIZES = (1024, 2048)


@dataclass
class Figure8Result:
    mispredict: Dict[str, Dict[int, float]]   # benchmark -> size -> rate
    squash_baseline: Dict[str, float]         # benchmark -> fraction
    squash_chex86: Dict[str, float]

    def average_accuracy(self, size: int) -> float:
        rates = [per_size[size] for per_size in self.mispredict.values()]
        if not rates:
            return 1.0
        return 1.0 - sum(rates) / len(rates)

    def average_squash_increase(self) -> float:
        """Mean absolute increase in squash fraction (CHEx86 - baseline)."""
        deltas = [
            self.squash_chex86[bench] - self.squash_baseline[bench]
            for bench in self.squash_baseline
        ]
        return sum(deltas) / len(deltas) if deltas else 0.0

    def format_text(self) -> str:
        top_rows = [
            [bench] + [f"{per_size[s]:.1%}" for s in PREDICTOR_SIZES]
            for bench, per_size in self.mispredict.items()
        ]
        bottom_rows = [
            [bench, f"{self.squash_baseline[bench]:.1%}",
             f"{self.squash_chex86[bench]:.1%}"]
            for bench in self.squash_baseline
        ]
        return "\n\n".join([
            render_table(
                ["benchmark"] + [f"{s} entry" for s in PREDICTOR_SIZES],
                top_rows,
                title="Figure 8 (top): pointer alias misprediction rate"),
            render_table(
                ["benchmark", "insecure baseline", "CHEx86 prediction"],
                bottom_rows,
                title="Figure 8 (bottom): time spent squashing"),
            (f"Average predictor accuracy @1024: "
             f"{self.average_accuracy(1024):.1%} (paper: ~89%); "
             f"average squash-time increase: "
             f"{self.average_squash_increase():+.2%} (paper: slight)"),
        ])


def cell_specs(scale: int = 1,
               benchmarks: Sequence[str] = BENCHMARK_ORDER,
               config: CoreConfig = DEFAULT_CONFIG,
               max_instructions: int = 2_000_000) -> List[CellSpec]:
    """Predictor-size sweep plus the default-config baseline/CHEx86
    pair (the pair dedupes against Figure 6's cells)."""
    specs: List[CellSpec] = []
    for name in benchmarks:
        for size in PREDICTOR_SIZES:
            specs.append(CellSpec(
                workload=name, defense="ucode-prediction", scale=scale,
                max_instructions=max_instructions,
                config=config.with_(predictor_entries=size)))
        specs.append(CellSpec(workload=name, defense="insecure", scale=scale,
                              max_instructions=max_instructions,
                              config=config))
        specs.append(CellSpec(workload=name, defense="ucode-prediction",
                              scale=scale,
                              max_instructions=max_instructions,
                              config=config))
    return specs


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 2_000_000,
        engine: Optional[EvalEngine] = None) -> Figure8Result:
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config,
                                        max_instructions),
                             artifact="fig8")
    mispredict: Dict[str, Dict[int, float]] = {}
    squash_baseline: Dict[str, float] = {}
    squash_chex86: Dict[str, float] = {}
    for name in benchmarks:
        mispredict[name] = {
            size: cells[CellSpec(
                workload=name, defense="ucode-prediction", scale=scale,
                max_instructions=max_instructions,
                config=config.with_(predictor_entries=size))
            ].predictor_misprediction_rate
            for size in PREDICTOR_SIZES
        }
        baseline = cells[CellSpec(workload=name, defense="insecure",
                                  scale=scale,
                                  max_instructions=max_instructions,
                                  config=config)]
        chex = cells[CellSpec(workload=name, defense="ucode-prediction",
                              scale=scale,
                              max_instructions=max_instructions,
                              config=config)]
        squash_baseline[name] = baseline.squash_fraction
        squash_chex86[name] = chex.squash_fraction
    return Figure8Result(mispredict=mispredict,
                         squash_baseline=squash_baseline,
                         squash_chex86=squash_chex86)
