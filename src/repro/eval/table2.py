"""Table II: temporal pointer access patterns.

Traces every pointer-reload PC across the benchmark suite, classifies its
PID sequence with the Table II taxonomy, and reports the per-benchmark
histogram.  Reproduces the paper's qualitative findings: patterns are
dominated by the predictable classes, sjeng/lbm are Constant-dominated,
and perlbench exhibits the most "Batch + Stride" sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.patterns import Pattern, PatternProfile, profile_patterns
from ..analysis.report import render_table
from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import SPEC_NAMES, build

#: Patterns the stride predictor captures well.
PREDICTABLE = {
    Pattern.CONSTANT, Pattern.STRIDE, Pattern.BATCH_STRIDE,
    Pattern.REPEAT_STRIDE, Pattern.RANDOM_STRIDE,
}


@dataclass
class Table2Result:
    profiles: Dict[str, PatternProfile]

    def histogram_rows(self) -> List[List]:
        patterns = list(Pattern)
        rows = []
        for bench, profile in self.profiles.items():
            rows.append([bench] + [profile.histogram.get(p, 0)
                                   for p in patterns])
        return rows

    def predictable_fraction(self) -> float:
        """Fraction of classified reload sites in predictable classes."""
        total = predictable = 0
        for profile in self.profiles.values():
            for pattern, count in profile.histogram.items():
                total += count
                if pattern in PREDICTABLE:
                    predictable += count
        return predictable / total if total else 1.0

    def benchmark_with_most(self, pattern: Pattern) -> str:
        best, best_count = "", -1
        for bench, profile in self.profiles.items():
            count = profile.histogram.get(pattern, 0)
            if count > best_count:
                best, best_count = bench, count
        return best

    def format_text(self) -> str:
        headers = ["benchmark"] + [p.value for p in Pattern]
        table = render_table(headers, self.histogram_rows(),
                             title="Table II: temporal pointer access "
                                   "patterns (reload sites per class)")
        return (f"{table}\n\nPredictable-pattern fraction: "
                f"{self.predictable_fraction():.1%}; most Batch+Stride "
                f"sites: {self.benchmark_with_most(Pattern.BATCH_STRIDE)} "
                f"(paper: perlbench)")


def run(scale: int = 1, benchmarks: Sequence[str] = SPEC_NAMES,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 600_000,
        min_events: int = 6) -> Table2Result:
    profiles: Dict[str, PatternProfile] = {}
    for name in benchmarks:
        workload = build(name, scale)
        machine = Chex86Machine(assemble(workload.source, name=name),
                                variant=Variant.UCODE_PREDICTION,
                                config=config, halt_on_violation=False)
        machine.trace_reloads = True
        machine.run(max_instructions=max_instructions)
        profiles[name] = profile_patterns(machine.reload_trace, min_events)
    return Table2Result(profiles=profiles)
