"""Table II: temporal pointer access patterns.

Traces every pointer-reload PC across the benchmark suite, classifies its
PID sequence with the Table II taxonomy, and reports the per-benchmark
histogram.  Reproduces the paper's qualitative findings: patterns are
dominated by the predictable classes, sjeng/lbm are Constant-dominated,
and perlbench exhibits the most "Batch + Stride" sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.patterns import Pattern, PatternProfile
from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import SPEC_NAMES
from .engine import CellSpec, EvalEngine

#: Patterns the stride predictor captures well.
PREDICTABLE = {
    Pattern.CONSTANT, Pattern.STRIDE, Pattern.BATCH_STRIDE,
    Pattern.REPEAT_STRIDE, Pattern.RANDOM_STRIDE,
}


@dataclass
class Table2Result:
    profiles: Dict[str, PatternProfile]

    def histogram_rows(self) -> List[List]:
        patterns = list(Pattern)
        rows = []
        for bench, profile in self.profiles.items():
            rows.append([bench] + [profile.histogram.get(p, 0)
                                   for p in patterns])
        return rows

    def predictable_fraction(self) -> float:
        """Fraction of classified reload sites in predictable classes."""
        total = predictable = 0
        for profile in self.profiles.values():
            for pattern, count in profile.histogram.items():
                total += count
                if pattern in PREDICTABLE:
                    predictable += count
        return predictable / total if total else 1.0

    def benchmark_with_most(self, pattern: Pattern) -> str:
        best, best_count = "", -1
        for bench, profile in self.profiles.items():
            count = profile.histogram.get(pattern, 0)
            if count > best_count:
                best, best_count = bench, count
        return best

    def format_text(self) -> str:
        headers = ["benchmark"] + [p.value for p in Pattern]
        table = render_table(headers, self.histogram_rows(),
                             title="Table II: temporal pointer access "
                                   "patterns (reload sites per class)")
        return (f"{table}\n\nPredictable-pattern fraction: "
                f"{self.predictable_fraction():.1%}; most Batch+Stride "
                f"sites: {self.benchmark_with_most(Pattern.BATCH_STRIDE)} "
                f"(paper: perlbench)")


def _spec(name: str, scale: int, config: CoreConfig,
          max_instructions: int, min_events: int) -> CellSpec:
    return CellSpec(workload=name, defense="ucode-prediction", scale=scale,
                    max_instructions=max_instructions, kind="patterns",
                    min_events=min_events, config=config)


def cell_specs(scale: int = 1, benchmarks: Sequence[str] = SPEC_NAMES,
               config: CoreConfig = DEFAULT_CONFIG,
               max_instructions: int = 600_000,
               min_events: int = 6) -> List[CellSpec]:
    return [_spec(name, scale, config, max_instructions, min_events)
            for name in benchmarks]


def run(scale: int = 1, benchmarks: Sequence[str] = SPEC_NAMES,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 600_000,
        min_events: int = 6,
        engine: Optional[EvalEngine] = None) -> Table2Result:
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config,
                                        max_instructions, min_events),
                             artifact="table2")
    profiles: Dict[str, PatternProfile] = {
        name: cells[_spec(name, scale, config, max_instructions, min_events)]
        for name in benchmarks
    }
    return Table2Result(profiles=profiles)
