"""Figure 6: performance and micro-op expansion across design points.

Top: execution time of the four CHEx86 variants and AddressSanitizer,
normalized to the insecure baseline (1.0 = no slowdown).
Bottom: dynamic micro-op expansion normalized to the baseline.

Headline claims this driver reproduces in shape:

* prediction-driven microcode beats always-on and binary translation;
* it trails hardware-only slightly overall but wins on the memory-bound
  pointer-heavy benchmarks (leela, mcf, xalancbmk);
* CHEx86 lands within ~10-20% of the insecure baseline while ASan costs
  integer factors (paper: 59% faster than ASan on SPEC, 2.2x on PARSEC);
* CHEx86's uop expansion is small (~10-30%) while ASan's exceeds 2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER
from .common import FIG6_LABELS, BenchmarkRun, defense_label
from .engine import CellSpec, EvalEngine


@dataclass
class Figure6Result:
    """All cells of Figure 6."""

    runs: Dict[str, Dict[str, BenchmarkRun]]  # benchmark -> defense -> run

    def normalized_performance(self) -> Dict[str, Dict[str, float]]:
        """Top panel rows: baseline_time / variant_time per benchmark."""
        out: Dict[str, Dict[str, float]] = {}
        for benchmark, cells in self.runs.items():
            baseline = cells["insecure"]
            out[benchmark] = {
                label: run.normalized_performance(baseline)
                for label, run in cells.items()
            }
        return out

    def uop_expansion(self) -> Dict[str, Dict[str, float]]:
        """Bottom panel rows: dynamic uops / baseline uops."""
        out: Dict[str, Dict[str, float]] = {}
        for benchmark, cells in self.runs.items():
            baseline = cells["insecure"]
            out[benchmark] = {
                label: run.uop_expansion_vs(baseline)
                for label, run in cells.items()
                if label != "insecure"
            }
        return out

    # -- suite aggregates (the paper's headline numbers) ---------------------

    def mean_slowdown(self, defense: str, suite: Optional[str] = None
                      ) -> float:
        """Geometric-mean slowdown (variant_time / baseline_time) - 1."""
        ratios = []
        for cells in self.runs.values():
            run = cells[defense]
            if suite is not None and run.suite != suite:
                continue
            ratios.append(run.cycles / cells["insecure"].cycles)
        if not ratios:
            return 0.0
        product = 1.0
        for ratio in ratios:
            product *= ratio
        return product ** (1.0 / len(ratios)) - 1.0

    def speedup_over_asan(self, suite: Optional[str] = None) -> float:
        """How much faster prediction-driven CHEx86 runs than ASan."""
        ratios = []
        for cells in self.runs.values():
            if suite is not None and cells["asan"].suite != suite:
                continue
            ratios.append(cells["asan"].cycles
                          / cells["ucode-prediction"].cycles)
        if not ratios:
            return 1.0
        product = 1.0
        for ratio in ratios:
            product *= ratio
        return product ** (1.0 / len(ratios))

    def format_text(self) -> str:
        perf = self.normalized_performance()
        labels = [label for label, _ in FIG6_LABELS]
        perf_rows = [
            [bench] + [f"{perf[bench][label]:.2f}" for label in labels]
            for bench in perf
        ]
        expansion = self.uop_expansion()
        exp_labels = [label for label, _ in FIG6_LABELS if label != "insecure"]
        exp_rows = [
            [bench] + [f"{expansion[bench][label]:.2f}"
                       for label in exp_labels]
            for bench in expansion
        ]
        summary = [
            f"CHEx86 (prediction) slowdown vs insecure: "
            f"SPEC {self.mean_slowdown('ucode-prediction', 'SPEC'):.1%}, "
            f"PARSEC {self.mean_slowdown('ucode-prediction', 'PARSEC'):.1%}",
            f"Speedup over ASan: "
            f"SPEC {self.speedup_over_asan('SPEC'):.2f}x, "
            f"PARSEC {self.speedup_over_asan('PARSEC'):.2f}x",
        ]
        return "\n\n".join([
            render_table(["benchmark"] + labels, perf_rows,
                         title="Figure 6 (top): normalized performance "
                               "(1.0 = insecure baseline)"),
            render_table(["benchmark"] + exp_labels, exp_rows,
                         title="Figure 6 (bottom): normalized uop expansion"),
            "\n".join(summary),
        ])


def cell_specs(scale: int = 1,
               benchmarks: Sequence[str] = BENCHMARK_ORDER,
               config: CoreConfig = DEFAULT_CONFIG,
               defenses=FIG6_LABELS,
               max_instructions: int = 2_000_000) -> List[CellSpec]:
    """Every cell the Figure 6 grid needs, in plot order.

    Cell specs carry the *canonical* defense label (``Variant.value`` or
    ``"asan"``); the figure's display labels (e.g. ``hw-only``) stay a
    presentation concern of :func:`run`.
    """
    return [
        CellSpec(workload=name, defense=defense_label(defense), scale=scale,
                 max_instructions=max_instructions, config=config)
        for name in benchmarks
        for _, defense in defenses
    ]


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        defenses=FIG6_LABELS,
        max_instructions: int = 2_000_000,
        engine: Optional[EvalEngine] = None) -> Figure6Result:
    """Execute the full Figure 6 grid (via a shared engine, if given)."""
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config, defenses,
                                        max_instructions),
                             artifact="fig6")
    runs: Dict[str, Dict[str, BenchmarkRun]] = {}
    for name in benchmarks:
        runs[name] = {
            label: cells[CellSpec(workload=name,
                                  defense=defense_label(defense),
                                  scale=scale,
                                  max_instructions=max_instructions,
                                  config=config)]
            for label, defense in defenses
        }
    return Figure6Result(runs=runs)
