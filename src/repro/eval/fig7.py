"""Figure 7: capability-cache and alias-cache miss rates.

Top: miss rate of the in-processor capability cache at 64 vs 128 entries
(the paper's 64-entry cache averages ~2.1%).
Bottom: miss rate of the 2-way alias cache (+32-entry victim cache) at
256 vs 512 entries (paper average 17.3%, dominated by outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER
from .engine import CellSpec, EvalEngine

#: Capability-cache sizes swept in the top panel.
CAPCACHE_SIZES = (64, 128)
#: Alias-cache sizes swept in the bottom panel.
ALIASCACHE_SIZES = (256, 512)


@dataclass
class Figure7Result:
    capcache: Dict[str, Dict[int, float]]    # benchmark -> size -> miss rate
    aliascache: Dict[str, Dict[int, float]]

    def average_capcache_miss(self, size: int) -> float:
        rates = [per_size[size] for per_size in self.capcache.values()]
        return sum(rates) / len(rates) if rates else 0.0

    def average_aliascache_miss(self, size: int) -> float:
        rates = [per_size[size] for per_size in self.aliascache.values()]
        return sum(rates) / len(rates) if rates else 0.0

    def bigger_is_never_worse(self) -> bool:
        """Sanity shape: growing either cache does not raise its miss rate
        (beyond numeric noise)."""
        for per_size in list(self.capcache.values()) \
                + list(self.aliascache.values()):
            sizes = sorted(per_size)
            for small, large in zip(sizes, sizes[1:]):
                if per_size[large] > per_size[small] + 0.02:
                    return False
        return True

    def format_text(self) -> str:
        cap_rows = [
            [bench] + [f"{per_size[s]:.1%}" for s in CAPCACHE_SIZES]
            for bench, per_size in self.capcache.items()
        ]
        alias_rows = [
            [bench] + [f"{per_size[s]:.1%}" for s in ALIASCACHE_SIZES]
            for bench, per_size in self.aliascache.items()
        ]
        return "\n\n".join([
            render_table(["benchmark"] + [f"{s} entry" for s in CAPCACHE_SIZES],
                         cap_rows,
                         title="Figure 7 (top): capability cache miss rate"),
            render_table(["benchmark"] + [f"{s} entry" for s in ALIASCACHE_SIZES],
                         alias_rows,
                         title="Figure 7 (bottom): alias cache miss rate"),
            (f"Average capability-cache miss rate @64: "
             f"{self.average_capcache_miss(64):.1%} (paper: 2.1%); "
             f"alias cache @256: {self.average_aliascache_miss(256):.1%} "
             f"(paper: 17.3%)"),
        ])


def _spec(name: str, scale: int, config: CoreConfig,
          max_instructions: int) -> CellSpec:
    return CellSpec(workload=name, defense="ucode-prediction", scale=scale,
                    max_instructions=max_instructions, config=config)


def cell_specs(scale: int = 1,
               benchmarks: Sequence[str] = BENCHMARK_ORDER,
               config: CoreConfig = DEFAULT_CONFIG,
               max_instructions: int = 2_000_000) -> List[CellSpec]:
    """Both sweeps; sizes equal to the default configuration dedupe to
    the same cells Figure 6 already needs."""
    specs: List[CellSpec] = []
    for name in benchmarks:
        for size in CAPCACHE_SIZES:
            specs.append(_spec(name, scale,
                               config.with_(capcache_entries=size),
                               max_instructions))
        for size in ALIASCACHE_SIZES:
            specs.append(_spec(name, scale,
                               config.with_(aliascache_entries=size),
                               max_instructions))
    return specs


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 2_000_000,
        engine: Optional[EvalEngine] = None) -> Figure7Result:
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config,
                                        max_instructions),
                             artifact="fig7")
    capcache: Dict[str, Dict[int, float]] = {}
    aliascache: Dict[str, Dict[int, float]] = {}
    for name in benchmarks:
        capcache[name] = {
            size: cells[_spec(name, scale,
                              config.with_(capcache_entries=size),
                              max_instructions)].capcache_miss_rate
            for size in CAPCACHE_SIZES
        }
        aliascache[name] = {
            size: cells[_spec(name, scale,
                              config.with_(aliascache_entries=size),
                              max_instructions)].aliascache_miss_rate
            for size in ALIASCACHE_SIZES
        }
    return Figure7Result(capcache=capcache, aliascache=aliascache)
