"""Figure 7: capability-cache and alias-cache miss rates.

Top: miss rate of the in-processor capability cache at 64 vs 128 entries
(the paper's 64-entry cache averages ~2.1%).
Bottom: miss rate of the 2-way alias cache (+32-entry victim cache) at
256 vs 512 entries (paper average 17.3%, dominated by outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.report import render_table
from ..core.variants import Variant
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import BENCHMARK_ORDER, build
from .common import run_benchmark

#: Capability-cache sizes swept in the top panel.
CAPCACHE_SIZES = (64, 128)
#: Alias-cache sizes swept in the bottom panel.
ALIASCACHE_SIZES = (256, 512)


@dataclass
class Figure7Result:
    capcache: Dict[str, Dict[int, float]]    # benchmark -> size -> miss rate
    aliascache: Dict[str, Dict[int, float]]

    def average_capcache_miss(self, size: int) -> float:
        rates = [per_size[size] for per_size in self.capcache.values()]
        return sum(rates) / len(rates) if rates else 0.0

    def average_aliascache_miss(self, size: int) -> float:
        rates = [per_size[size] for per_size in self.aliascache.values()]
        return sum(rates) / len(rates) if rates else 0.0

    def bigger_is_never_worse(self) -> bool:
        """Sanity shape: growing either cache does not raise its miss rate
        (beyond numeric noise)."""
        for per_size in list(self.capcache.values()) \
                + list(self.aliascache.values()):
            sizes = sorted(per_size)
            for small, large in zip(sizes, sizes[1:]):
                if per_size[large] > per_size[small] + 0.02:
                    return False
        return True

    def format_text(self) -> str:
        cap_rows = [
            [bench] + [f"{per_size[s]:.1%}" for s in CAPCACHE_SIZES]
            for bench, per_size in self.capcache.items()
        ]
        alias_rows = [
            [bench] + [f"{per_size[s]:.1%}" for s in ALIASCACHE_SIZES]
            for bench, per_size in self.aliascache.items()
        ]
        return "\n\n".join([
            render_table(["benchmark"] + [f"{s} entry" for s in CAPCACHE_SIZES],
                         cap_rows,
                         title="Figure 7 (top): capability cache miss rate"),
            render_table(["benchmark"] + [f"{s} entry" for s in ALIASCACHE_SIZES],
                         alias_rows,
                         title="Figure 7 (bottom): alias cache miss rate"),
            (f"Average capability-cache miss rate @64: "
             f"{self.average_capcache_miss(64):.1%} (paper: 2.1%); "
             f"alias cache @256: {self.average_aliascache_miss(256):.1%} "
             f"(paper: 17.3%)"),
        ])


def run(scale: int = 1,
        benchmarks: Sequence[str] = BENCHMARK_ORDER,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 2_000_000) -> Figure7Result:
    capcache: Dict[str, Dict[int, float]] = {}
    aliascache: Dict[str, Dict[int, float]] = {}
    for name in benchmarks:
        workload = build(name, scale)
        capcache[name] = {}
        for size in CAPCACHE_SIZES:
            run_ = run_benchmark(workload, Variant.UCODE_PREDICTION,
                                 config.with_(capcache_entries=size),
                                 max_instructions)
            capcache[name][size] = run_.capcache_miss_rate
        aliascache[name] = {}
        for size in ALIASCACHE_SIZES:
            run_ = run_benchmark(workload, Variant.UCODE_PREDICTION,
                                 config.with_(aliascache_entries=size),
                                 max_instructions)
            aliascache[name][size] = run_.aliascache_miss_rate
    return Figure7Result(capcache=capcache, aliascache=aliascache)
