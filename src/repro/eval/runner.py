"""One-shot reproduction runner: every artifact, saved to disk.

``python -m repro reproduce --out results/`` regenerates every table and
figure, writing for each a text rendering (``<name>.txt``) plus a combined
``summary.json`` of the headline metrics — the artifact bundle a paper
reproduction hands to reviewers.

All figure/table drivers that consume simulation cells share one
:class:`~repro.eval.engine.EvalEngine`: the full set of unique
(workload, defense, configuration) cells is enumerated up front,
simulated at most once across a process pool, and each artifact then
slices the shared records.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from . import fig1, fig3, fig6, fig7, fig8, fig9, security
from . import table1, table2, table3, table4
from .engine import (DEFAULT_CACHE_DIR, DEFAULT_MAX_RETRIES,
                     DEFAULT_RETRY_BACKOFF, CellSpec, EvalEngine)
from .faults import FaultPlan


@dataclass
class ArtifactRecord:
    name: str
    seconds: float
    headline: Dict[str, object]


def _artifacts(scale: int, ripe_limit: Optional[int], engine: EvalEngine
               ) -> List[Tuple[str, Callable]]:
    return [
        ("fig1", lambda: fig1.run()),
        ("table3", lambda: table3.run()),
        ("fig3", lambda: fig3.run(scale=scale)),
        ("table1", lambda: table1.run(scale=scale)),
        ("table2", lambda: table2.run(scale=scale, engine=engine)),
        ("fig6", lambda: fig6.run(scale=scale, engine=engine)),
        ("fig7", lambda: fig7.run(scale=scale, engine=engine)),
        ("fig8", lambda: fig8.run(scale=scale, engine=engine)),
        ("fig9", lambda: fig9.run(scale=scale, engine=engine)),
        ("table4", lambda: table4.run(scale=scale, engine=engine)),
        ("security", lambda: security.run(ripe_limit=ripe_limit)),
    ]


def shared_cell_specs(scale: int) -> List[CellSpec]:
    """Every cell the engine-backed artifacts will ask for, deduplicated
    by the engine itself (e.g. Figure 7's default-sized sweeps resolve
    to the very cells Figure 6 plots)."""
    return (
        table2.cell_specs(scale=scale)
        + fig6.cell_specs(scale=scale)
        + fig7.cell_specs(scale=scale)
        + fig8.cell_specs(scale=scale)
        + fig9.cell_specs(scale=scale)
        + table4.cell_specs(scale=scale)
    )


def _metric_cell_specs(scale: int) -> Dict[str, List[CellSpec]]:
    """The cells backing each engine-fed artifact, keyed by artifact
    name — the layout of the ``results/metrics/`` sidecar directory."""
    return {
        "table2": table2.cell_specs(scale=scale),
        "fig6": fig6.cell_specs(scale=scale),
        "fig7": fig7.cell_specs(scale=scale),
        "fig8": fig8.cell_specs(scale=scale),
        "fig9": fig9.cell_specs(scale=scale),
        "table4": table4.cell_specs(scale=scale),
    }


def _headline(name: str, result) -> Dict[str, object]:
    """Pull each artifact's headline numbers for summary.json."""
    if name == "fig1":
        return {"avg_memory_safety_pct":
                round(result.average_memory_safety, 1)}
    if name == "fig3":
        return {"avg_in_use_per_interval": round(result.average_in_use(), 1),
                "gaps_hold": result.gaps_hold()}
    if name == "fig6":
        return {
            "spec_slowdown_pct": round(
                100 * result.mean_slowdown("ucode-prediction", "SPEC"), 1),
            "parsec_slowdown_pct": round(
                100 * result.mean_slowdown("ucode-prediction", "PARSEC"), 1),
            "speedup_over_asan_spec": round(
                result.speedup_over_asan("SPEC"), 2),
            "speedup_over_asan_parsec": round(
                result.speedup_over_asan("PARSEC"), 2),
        }
    if name == "fig7":
        return {
            "capcache64_miss_pct": round(
                100 * result.average_capcache_miss(64), 2),
            "aliascache256_miss_pct": round(
                100 * result.average_aliascache_miss(256), 2),
        }
    if name == "fig8":
        return {
            "predictor_accuracy_pct": round(
                100 * result.average_accuracy(1024), 1),
            "squash_increase_pct": round(
                100 * result.average_squash_increase(), 2),
        }
    if name == "fig9":
        return {
            "chex86_storage_le_asan": result.chex86_no_worse_than_asan(),
            "median_bandwidth_increase_pct": round(
                100 * result.median_bandwidth_increase(), 1),
        }
    if name == "table1":
        return {"converged": result.converged,
                "rules_learned": result.rules_learned}
    if name == "table2":
        return {"predictable_fraction": round(
            result.predictable_fraction(), 3)}
    if name == "table4":
        return {"measured_avg_pct": round(result.measured_average_pct, 1),
                "measured_worst_pct": round(result.measured_worst_pct, 1)}
    if name == "security":
        return {
            suite: f"{r.detected}/{r.total}"
            for suite, r in result.chex86.items()
        } | {"all_flagged": result.all_flagged()}
    return {}


def reproduce(out_dir: str = "results", scale: int = 1,
              ripe_limit: Optional[int] = None,
              echo: Callable[[str], None] = print,
              jobs: Optional[int] = None,
              use_cache: bool = True,
              cache_dir: str = DEFAULT_CACHE_DIR,
              engine: Optional[EvalEngine] = None,
              profile: bool = False,
              cell_timeout: Optional[float] = None,
              max_retries: int = DEFAULT_MAX_RETRIES,
              retry_backoff: float = DEFAULT_RETRY_BACKOFF,
              resume: bool = False,
              fault_plan: Optional[FaultPlan] = None
              ) -> List[ArtifactRecord]:
    """Run everything; returns per-artifact records (also saved to disk).

    ``jobs``/``use_cache``/``cache_dir`` plus the fault-tolerance knobs
    (``cell_timeout``/``max_retries``/``retry_backoff``/``resume``/
    ``fault_plan``; see ``docs/robustness.md``) configure the shared
    evaluation engine (pass a pre-built ``engine`` to override it
    entirely).  ``profile`` additionally writes a cProfile dump
    (``profile.prof``) and a ``"profile"`` section in ``summary.json``
    with the aggregated per-phase counters of every simulated cell.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if engine is None:
        engine = EvalEngine(jobs=jobs, cache_dir=cache_dir,
                            use_cache=use_cache, echo=echo,
                            cell_timeout=cell_timeout,
                            max_retries=max_retries,
                            retry_backoff=retry_backoff,
                            resume=resume, fault_plan=fault_plan)
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    specs = shared_cell_specs(scale)
    unique = len(set(specs))
    echo(f"prewarming {unique} unique simulation cells "
         f"({len(specs)} requested) with {engine.jobs} worker(s)")
    engine.run_cells(specs, artifact="reproduce")
    records: List[ArtifactRecord] = []
    for name, runner in _artifacts(scale, ripe_limit, engine):
        started = time.time()
        result = runner()
        elapsed = time.time() - started
        text = result.format_text()
        (out / f"{name}.txt").write_text(text + "\n")
        record = ArtifactRecord(name=name, seconds=round(elapsed, 1),
                                headline=_headline(name, result))
        records.append(record)
        echo(f"[{elapsed:6.1f}s] {name}: {record.headline}")
    metrics_dir = out / "metrics"
    for name, specs in _metric_cell_specs(scale).items():
        engine.write_metrics(metrics_dir / f"{name}.json", specs, name)
    echo(f"wrote per-cell metrics sidecars to {metrics_dir}/")
    summary = {
        "scale": scale,
        "artifacts": {r.name: {"seconds": r.seconds, **r.headline}
                      for r in records},
        "engine": {
            "jobs": engine.jobs,
            "cells_simulated": engine.stats.computed,
            "cells_cached": engine.stats.cached,
            "wall_seconds": round(engine.stats.wall_seconds, 1),
            "simulated_instructions": engine.stats.simulated_instructions,
            "simulated_mips": round(engine.stats.simulated_mips, 4),
            "cells_retried": engine.stats.retried,
            "cells_crashed": engine.stats.crashed,
            "cells_timed_out": engine.stats.timed_out,
            "transient_errors": engine.stats.transient_errors,
            "cache_quarantined": engine.stats.quarantined,
            "journal_hits": engine.stats.journal_hits,
        },
    }
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(str(out / "profile.prof"))
        summary["profile"] = {
            "cprofile": "profile.prof",
            "phase_counters": aggregate_phase_counters(engine),
            "top_functions": _top_functions(profiler),
        }
        echo(f"profile: wrote {out / 'profile.prof'}")
    (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    echo(engine.stats.summary())
    echo(f"wrote {len(records)} artifacts + summary.json to {out}/")
    return records


def aggregate_phase_counters(engine: EvalEngine) -> Dict[str, int]:
    """Sum the per-phase counters over every benchmark cell the engine
    resolved (cached cells carry their counters in the record)."""
    totals: Dict[str, int] = {}
    for result in engine.memoized().values():
        counters = getattr(result, "phase_counters", None)
        if not counters:
            continue
        for counter, value in counters.items():
            totals[counter] = totals.get(counter, 0) + value
    return totals


def _top_functions(profiler, limit: int = 10) -> List[Dict[str, object]]:
    """The heaviest functions by cumulative time, JSON-shaped."""
    import pstats

    stats = pstats.Stats(profiler)
    entries = []
    for (filename, lineno, name), (_cc, ncalls, _tt, cumulative, _callers) \
            in stats.stats.items():
        entries.append({
            "function": f"{Path(filename).name}:{lineno}({name})",
            "calls": ncalls,
            "cumulative_seconds": round(cumulative, 3),
        })
    entries.sort(key=lambda e: e["cumulative_seconds"], reverse=True)
    return entries[:limit]
