"""Deterministic fault injection for the evaluation engine.

Large sweeps are only trustworthy if the failure paths — a worker that
crashes, a worker that hangs, a cache entry that rots on disk, a
transient exception — are themselves exercised in CI.  A
:class:`FaultPlan` describes exactly which cells fail, how, and how many
times, so a test (or an operator probing a deployment) can stage a
failure and assert the engine degrades the way ``docs/robustness.md``
promises.

Plans parse from a compact spec string (also read from the
``REPRO_FAULT_SPEC`` environment variable)::

    crash:lbm/insecure        # first attempt of that cell dies (SIGKILL-like)
    hang:mcf/*@2              # first two attempts of any mcf cell hang
    transient:*               # every cell's first attempt raises once
    corrupt-cache:lbm/*       # the stored cache entry is truncated on disk

Clauses are comma-separated; ``<kind>[:<target>][@<count>]`` where
``target`` is an ``fnmatch`` pattern over the cell label
(``workload/defense``, default ``*``) and ``count`` is how many matching
events fire the fault (default 1, so a retried cell succeeds).

All decisions are taken in the supervising parent process: the plan is
consulted once per dispatch (or cache store), which makes runs
deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Recognised fault kinds.  ``crash``/``hang``/``transient`` are injected
#: into the worker process for one attempt; ``corrupt-cache`` garbles the
#: just-written on-disk cache entry (exercising quarantine on read).
FAULT_KINDS = ("crash", "hang", "transient", "corrupt-cache")

#: Fault kinds injected into worker attempts (vs the cache layer).
WORKER_FAULTS = ("crash", "hang", "transient")

#: Environment variable the engine reads when no explicit plan is given.
ENV_FAULT_SPEC = "REPRO_FAULT_SPEC"


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan."""

    kind: str
    target: str = "*"
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def matches(self, label: str) -> bool:
        return fnmatchcase(label, self.target)


class FaultPlan:
    """An ordered set of :class:`FaultRule` with per-label firing state.

    ``worker_fault(label)`` / ``cache_fault(label)`` are each consulted
    exactly once per event (dispatch attempt / cache store); a rule fires
    for its first ``count`` matching events per label, then goes quiet —
    so a fault with the default count fails an attempt and lets the
    retry succeed.
    """

    def __init__(self, rules: Iterable[FaultRule]) -> None:
        self.rules: List[FaultRule] = list(rules)
        self._fired: Dict[Tuple[int, str], int] = {}

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``kind[:target][@count]`` clauses, comma-separated."""
        rules = []
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            count = 1
            if "@" in clause:
                clause, _, raw_count = clause.rpartition("@")
                try:
                    count = int(raw_count)
                except ValueError:
                    raise ValueError(
                        f"bad fault count {raw_count!r} in {spec!r}") from None
            kind, sep, target = clause.partition(":")
            rules.append(FaultRule(kind=kind.strip(),
                                   target=target.strip() if sep else "*",
                                   count=count))
        return cls(rules)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_SPEC``, or ``None`` if unset."""
        environ = os.environ if environ is None else environ
        spec = environ.get(ENV_FAULT_SPEC, "").strip()
        return cls.parse(spec) if spec else None

    def spec(self) -> str:
        """Round-trippable spec string (``parse(plan.spec())`` ≡ plan)."""
        return ",".join(
            f"{rule.kind}:{rule.target}"
            + (f"@{rule.count}" if rule.count != 1 else "")
            for rule in self.rules)

    # -- decisions -----------------------------------------------------------

    def worker_fault(self, label: str) -> Optional[str]:
        """Fault to inject into the next worker attempt for ``label``
        (``crash`` | ``hang`` | ``transient``), or ``None``."""
        return self._draw(label, WORKER_FAULTS)

    def cache_fault(self, label: str) -> bool:
        """Whether to corrupt the cache entry just stored for ``label``."""
        return self._draw(label, ("corrupt-cache",)) is not None

    def _draw(self, label: str, kinds: Sequence[str]) -> Optional[str]:
        for index, rule in enumerate(self.rules):
            if rule.kind not in kinds or not rule.matches(label):
                continue
            fired = self._fired.get((index, label), 0)
            if fired >= rule.count:
                continue
            self._fired[(index, label)] = fired + 1
            return rule.kind
        return None
