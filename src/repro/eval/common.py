"""Shared experiment machinery for the per-figure/table drivers.

:func:`run_benchmark` executes one (benchmark, defense) cell and collects
every metric any figure needs into a :class:`BenchmarkRun`; the figure
drivers then slice those records into the paper's rows and series.

Defenses: the five CHEx86 variants plus ``"asan"`` (the program is
instrumented and run against the ASan runtime on the insecure pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..pipeline.multicore import MulticoreMachine
from ..sanitizer import sanitize
from ..telemetry import provenance, spans
from ..workloads.base import Workload

Defense = Union[Variant, str]

#: Labels in the order Figure 6 plots its bars.
FIG6_LABELS = (
    ("insecure", Variant.INSECURE),
    ("hw-only", Variant.HW_ONLY),
    ("binary-translation", Variant.BINARY_TRANSLATION),
    ("ucode-always-on", Variant.UCODE_ALWAYS_ON),
    ("ucode-prediction", Variant.UCODE_PREDICTION),
    ("asan", "asan"),
)


def defense_label(defense: Defense) -> str:
    return defense.value if isinstance(defense, Variant) else str(defense)


@dataclass
class BenchmarkRun:
    """Every metric one (benchmark, defense) cell can be asked for."""

    benchmark: str
    suite: str
    defense: str
    threads: int
    halted: bool
    flagged: bool
    instructions: int
    cycles: int
    uops: int
    native_uops: int
    injected_uops: int
    capcache_accesses: int
    capcache_misses: int
    aliascache_accesses: int
    aliascache_misses: int
    predictor_lookups: int
    predictor_mispredicts: int
    squash_cycles: int
    alias_squash_cycles: int
    core_cycles_total: int
    dram_bytes: int
    shadow_dram_bytes: int
    rss_bytes: int
    shadow_rss_bytes: int
    frequency_ghz: float
    #: Flat per-phase cycle/uop counters summed over cores (the
    #: ``--profile`` surface; see ``Chex86Machine.phase_counters``).
    phase_counters: Dict[str, int] = field(default_factory=dict)
    #: Full telemetry-registry snapshot merged over cores (counters
    #: summed, system gauges kept once, ratio metrics recomputed) — the
    #: per-cell metrics sidecar the engine exports to
    #: ``results/metrics/<artifact>.json``.
    metrics: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics ----------------------------------------------------

    @property
    def capcache_miss_rate(self) -> float:
        if not self.capcache_accesses:
            return 0.0
        return self.capcache_misses / self.capcache_accesses

    @property
    def aliascache_miss_rate(self) -> float:
        if not self.aliascache_accesses:
            return 0.0
        return self.aliascache_misses / self.aliascache_accesses

    @property
    def predictor_misprediction_rate(self) -> float:
        if not self.predictor_lookups:
            return 0.0
        return self.predictor_mispredicts / self.predictor_lookups

    @property
    def squash_fraction(self) -> float:
        # Squash cycles are summed across cores, so normalize by the sum of
        # per-core cycles (equals ``cycles`` on a single core).
        if not self.core_cycles_total:
            return 0.0
        return self.squash_cycles / self.core_cycles_total

    @property
    def bandwidth_mb_per_s(self) -> float:
        if not self.cycles or not self.frequency_ghz:
            return 0.0
        seconds = self.cycles / (self.frequency_ghz * 1e9)
        return (self.dram_bytes + self.shadow_dram_bytes) / seconds / 1e6

    @property
    def total_rss_bytes(self) -> int:
        return self.rss_bytes + self.shadow_rss_bytes

    def normalized_performance(self, baseline: "BenchmarkRun") -> float:
        """Figure 6 top: runtime of baseline / runtime of this (<= 1.0
        means slowdown relative to the insecure baseline).

        A zero denominator (a run that never advanced) yields 0.0 — the
        repo-wide convention for undefined ratios.
        """
        return baseline.cycles / self.cycles if self.cycles else 0.0

    def uop_expansion_vs(self, baseline: "BenchmarkRun") -> float:
        """Figure 6 bottom: dynamic uops normalized to the baseline's
        (0.0 when the baseline executed no uops, per the repo-wide
        zero-denominator convention)."""
        return self.uops / baseline.uops if baseline.uops else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record: raw fields plus derived metrics."""
        from dataclasses import asdict

        record = asdict(self)
        record.update({
            "capcache_miss_rate": self.capcache_miss_rate,
            "aliascache_miss_rate": self.aliascache_miss_rate,
            "predictor_misprediction_rate": self.predictor_misprediction_rate,
            "squash_fraction": self.squash_fraction,
            "bandwidth_mb_per_s": self.bandwidth_mb_per_s,
            "total_rss_bytes": self.total_rss_bytes,
        })
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "BenchmarkRun":
        """Inverse of :meth:`to_dict` (derived metrics are recomputed,
        so ``from_dict(run.to_dict()) == run`` round-trips exactly)."""
        from dataclasses import fields

        names = {f.name for f in fields(cls)}
        missing = names - set(record)
        if missing:
            raise ValueError(
                f"BenchmarkRun record missing fields: {sorted(missing)}")
        return cls(**{k: v for k, v in record.items() if k in names})


@dataclass
class IntervalRun:
    """Replay of one checkpointed SimPoint interval (an engine cell).

    Carries the telemetry *delta* over the interval (counters
    differenced, ratios recomputed — the registry's delta algebra) plus
    the machine's final cumulative snapshot and memory footprint, which
    the sampling layer (``eval/sampling.py``) combines into an estimated
    :class:`BenchmarkRun` via ``SimPointSelection.estimate``.
    """

    workload: str
    defense: str
    interval_index: int
    instructions: int          # executed in this interval
    halted: bool               # the program finished inside the interval
    flagged: bool              # cumulative: any violation so far
    metrics_delta: Dict[str, float]
    final_metrics: Dict[str, float]
    phase_delta: Dict[str, int]
    rss_bytes: int             # footprint at interval end
    shadow_rss_bytes: int

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "IntervalRun":
        from dataclasses import fields

        names = {f.name for f in fields(cls)}
        missing = names - set(record)
        if missing:
            raise ValueError(
                f"IntervalRun record missing fields: {sorted(missing)}")
        return cls(**{k: v for k, v in record.items() if k in names})


def run_benchmark(workload: Workload, defense: Defense,
                  config: CoreConfig = DEFAULT_CONFIG,
                  max_instructions: int = 2_000_000) -> BenchmarkRun:
    """Execute one cell and collect its metrics."""
    if defense == "asan":
        return _run_asan(workload, config, max_instructions)
    assert isinstance(defense, Variant)
    if workload.threads > 1:
        runner = MulticoreMachine(workload, variant=defense, config=config,
                                  halt_on_violation=False)
        result = runner.run(max_instructions_per_core=max_instructions)
        return _collect(workload, defense_label(defense), runner.cores,
                        runner.system, result, config)
    program = assemble(workload.source, name=workload.name)
    machine = Chex86Machine(program, variant=defense, config=config,
                            halt_on_violation=False)
    # No-ops unless a traced / provenance-armed sweep is active.
    spans.attach_machine_tracer(
        machine, f"{workload.name}/{defense_label(defense)}")
    provenance.attach_machine_recorder(
        machine, f"{workload.name}/{defense_label(defense)}")
    result = machine.run(max_instructions=max_instructions)
    return _collect(workload, defense_label(defense), [machine],
                    machine.system, result, config)


def _run_asan(workload: Workload, config: CoreConfig,
              max_instructions: int) -> BenchmarkRun:
    from ..pipeline.system import System

    program = assemble(workload.source, name=workload.name)
    system = System(config)
    if workload.threads > 1:
        sanitized, runtime, _ = sanitize(program, system.allocator)
        runner = MulticoreMachine(workload, variant=Variant.INSECURE,
                                  config=config, halt_on_violation=False,
                                  host_hooks=runtime.host_hooks(),
                                  program=sanitized, system=system)
        result = runner.run(max_instructions_per_core=max_instructions)
        return _collect(workload, "asan", runner.cores, runner.system,
                        result, config)
    sanitized, runtime, _ = sanitize(program, system.allocator)
    machine = Chex86Machine(sanitized, variant=Variant.INSECURE,
                            config=config, system=system,
                            host_hooks=runtime.host_hooks(),
                            halt_on_violation=False)
    spans.attach_machine_tracer(machine, f"{workload.name}/asan")
    provenance.attach_machine_recorder(machine, f"{workload.name}/asan")
    result = machine.run(max_instructions=max_instructions)
    return _collect(workload, "asan", [machine], system, result, config)


def _collect(workload: Workload, label: str, cores: List[Chex86Machine],
             system, result, config: CoreConfig) -> BenchmarkRun:
    for core in cores:
        core.timing.finish()
    timing = [core.timing.stats for core in cores]
    phase: Dict[str, int] = {}
    for core in cores:
        for counter, value in core.phase_counters().items():
            phase[counter] = phase.get(counter, 0) + value
    # Merge the per-core registry snapshots under the first core's merge
    # spec (every core wires the same metric tree).
    metrics = cores[0].telemetry.merge(
        [core.telemetry.snapshot() for core in cores])
    return BenchmarkRun(
        benchmark=workload.name,
        suite=workload.suite,
        defense=label,
        threads=workload.threads,
        halted=result.halted,
        flagged=result.flagged,
        instructions=result.instructions,
        cycles=result.cycles,
        uops=result.uops,
        native_uops=result.native_uops,
        injected_uops=sum(c.mcu.stats.injected_uops for c in cores),
        capcache_accesses=sum(c.capcache.stats.accesses for c in cores),
        capcache_misses=sum(c.capcache.stats.misses for c in cores),
        aliascache_accesses=sum(c.alias_cache.stats.accesses for c in cores),
        aliascache_misses=sum(c.alias_cache.stats.misses for c in cores),
        predictor_lookups=sum(c.reload_predictor.stats.lookups
                              for c in cores),
        predictor_mispredicts=sum(c.reload_predictor.stats.mispredictions
                                  for c in cores),
        squash_cycles=sum(t.squash_cycles for t in timing),
        alias_squash_cycles=sum(t.alias_squash_cycles for t in timing),
        core_cycles_total=sum(t.cycles for t in timing),
        dram_bytes=sum(t.dram_bytes for t in timing),
        shadow_dram_bytes=sum(t.shadow_dram_bytes for t in timing),
        rss_bytes=system.memory.resident_bytes,
        shadow_rss_bytes=system.shadow_bytes,
        frequency_ghz=config.frequency_ghz,
        phase_counters=phase,
        metrics=metrics,
    )
