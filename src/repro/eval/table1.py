"""Table I: the pointer-tracking rule database.

Regenerates the table from the live :class:`RuleDatabase` and — more
importantly — re-runs the paper's *construction process*: starting from
the expert seed, profile workloads with the hardware checker co-processor
engaged and add rules until a profiling pass comes back clean
(Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import render_table
from ..core.checker import HardwareChecker, LearningStep, RuleAutoConstructor
from ..core.machine import Chex86Machine
from ..core.rules import RuleDatabase
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..workloads import build

#: Benchmarks used as the profiling corpus for auto-construction (the paper
#: profiles SPEC/PARSEC plus the exploit suites).
PROFILE_BENCHMARKS = ("perlbench", "mcf", "leela")


@dataclass
class Table1Result:
    database: RuleDatabase
    history: List[LearningStep]
    residual_mismatches: int
    validations: int = 0

    @property
    def converged(self) -> bool:
        """Clean up to coincidental collisions.

        An integer computation can coincidentally equal a tracked address;
        the checker dumps it, the expert dismisses it (no rule could
        legitimately cover it).  Convergence therefore tolerates a
        residual mismatch *rate* below 0.5%.
        """
        if not self.validations:
            return self.residual_mismatches == 0
        return self.residual_mismatches / self.validations < 0.005

    @property
    def rules_learned(self) -> List[str]:
        return [step.rule_added for step in self.history if step.rule_added]

    def format_text(self) -> str:
        rows = [
            [row["uop"], row["addr_mode"], row["propagation"],
             "learned" if row["learned"] else "seed", row["example"]]
            for row in self.database.to_rows()
        ]
        table = render_table(
            ["uop", "addr mode", "capability propagation", "origin",
             "code example"],
            rows, title="Table I: pointer tracking rule database")
        steps = "\n".join(
            f"  round {s.round}: {s.mismatches} mismatches"
            + (f" -> added rule '{s.rule_added}'" if s.rule_added
               else " (clean)")
            for s in self.history
        )
        return f"{table}\n\nAuto-construction history:\n{steps}"


def _profile(db: RuleDatabase, scale: int,
             max_instructions: int) -> HardwareChecker:
    """One offline profiling pass over the corpus with a fresh checker.

    The checker is per-machine; mismatches are merged across benchmarks so
    a single pass sees the whole corpus, like the paper's profiling step.
    """
    merged: HardwareChecker = None
    for name in PROFILE_BENCHMARKS:
        workload = build(name, scale)
        machine = Chex86Machine(assemble(workload.source, name=name),
                                variant=Variant.UCODE_PREDICTION, rules=db,
                                enable_checker=True, halt_on_violation=False)
        machine.run(max_instructions=max_instructions)
        if merged is None:
            merged = machine.checker
        else:
            merged.stats.validations += machine.checker.stats.validations
            merged.stats.confirmed += machine.checker.stats.confirmed
            merged.stats.mismatches += machine.checker.stats.mismatches
            merged.mismatches.extend(machine.checker.mismatches)
    return merged


def run(scale: int = 1, max_instructions: int = 200_000) -> Table1Result:
    constructor = RuleAutoConstructor(
        lambda db: _profile(db, scale, max_instructions))
    database, history = constructor.construct(RuleDatabase.seed())
    final = _profile(database, scale, max_instructions)
    return Table1Result(
        database=database,
        history=history,
        residual_mismatches=final.stats.mismatches,
        validations=final.stats.validations,
    )
