"""Table III: hardware configuration of the simulated system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG


@dataclass
class Table3Result:
    rows: Dict[str, str]

    def format_text(self) -> str:
        return render_table(
            ["parameter", "value"],
            [[k, v] for k, v in self.rows.items()],
            title="Table III: hardware configuration of the simulated "
                  "system (baseline processor)")


def run(config: CoreConfig = DEFAULT_CONFIG) -> Table3Result:
    return Table3Result(rows=config.table3_rows())
