"""Table IV: comparison with prior memory-safety techniques.

Static prior-work rows plus a CHEx86 row *measured on this reproduction*:
average and worst-case slowdown of the prediction-driven variant over the
synthetic SPEC suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.comparison import (
    TechniqueRow,
    full_table,
    measured_chex86_row,
    qualitative_claims,
)
from ..analysis.report import render_table
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import SPEC_NAMES
from .engine import CellSpec, EvalEngine


@dataclass
class Table4Result:
    rows: List[TechniqueRow]
    measured_average_pct: float
    measured_worst_pct: float

    def claims(self):
        return qualitative_claims()

    def format_text(self) -> str:
        table_rows = [
            [r.proposal, r.temporal_safety, r.spatial_safety, r.metadata,
             r.binary_compat, r.perf_average, r.perf_benchmark, r.hardware]
            for r in self.rows
        ]
        table = render_table(
            ["proposal", "temporal", "spatial", "metadata", "binary compat",
             "perf (avg)", "perf (worst)", "hardware modifications"],
            table_rows,
            title="Table IV: comparison with prior memory safety techniques")
        claims = "\n".join(f"  {name}: {'holds' if ok else 'VIOLATED'}"
                           for name, ok in self.claims().items())
        return f"{table}\n\nQualitative claims:\n{claims}"


def cell_specs(scale: int = 1, benchmarks: Sequence[str] = SPEC_NAMES,
               config: CoreConfig = DEFAULT_CONFIG,
               max_instructions: int = 2_000_000) -> List[CellSpec]:
    return [
        CellSpec(workload=name, defense=label, scale=scale,
                 max_instructions=max_instructions, config=config)
        for name in benchmarks
        for label in ("insecure", "ucode-prediction")
    ]


def run(scale: int = 1, benchmarks: Sequence[str] = SPEC_NAMES,
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 2_000_000,
        engine: Optional[EvalEngine] = None) -> Table4Result:
    engine = engine if engine is not None else EvalEngine.serial()
    cells = engine.run_cells(cell_specs(scale, benchmarks, config,
                                        max_instructions),
                             artifact="table4")
    slowdowns = []
    for name in benchmarks:
        baseline = cells[CellSpec(workload=name, defense="insecure",
                                  scale=scale,
                                  max_instructions=max_instructions,
                                  config=config)]
        chex = cells[CellSpec(workload=name, defense="ucode-prediction",
                              scale=scale,
                              max_instructions=max_instructions,
                              config=config)]
        slowdowns.append(chex.cycles / baseline.cycles - 1.0)
    average = 100 * sum(slowdowns) / len(slowdowns)
    worst = 100 * max(slowdowns)
    measured = measured_chex86_row(average, worst)
    return Table4Result(
        rows=full_table(measured),
        measured_average_pct=average,
        measured_worst_pct=worst,
    )
