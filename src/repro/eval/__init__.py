"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run(...)`` returning a result object with
``format_text()`` producing the paper-shaped rows/series:

========== =====================================================
``fig1``   CVE root causes by patch year
``fig3``   benchmark allocation behaviour
``fig6``   performance + uop expansion across design points
``fig7``   capability / alias cache miss rates
``fig8``   alias misprediction rate + squash time
``fig9``   memory storage overhead + bandwidth
``table1`` pointer-tracking rule database (+ auto-construction)
``table2`` temporal pointer access patterns
``table3`` simulated hardware configuration
``table4`` comparison with prior techniques (measured CHEx86 row)
``security`` RIPE / ASan-suite / How2Heap detection results
========== =====================================================
"""

from . import ablations, fig1, fig3, fig6, fig7, fig8, fig9, security, table1, table2, table3, table4
from .common import FIG6_LABELS, BenchmarkRun, defense_label, run_benchmark
from .engine import CellSpec, EvalEngine
from .runner import ArtifactRecord, reproduce

__all__ = [
    "BenchmarkRun",
    "CellSpec",
    "EvalEngine",
    "FIG6_LABELS",
    "ablations",
    "defense_label",
    "fig1",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "run_benchmark",
    "reproduce",
    "ArtifactRecord",
    "security",
    "table1",
    "table2",
    "table3",
    "table4",
]
