"""Live sweep status (``repro status``) from the journal + span spill.

The engine already leaves an append-only ``journal.jsonl`` under the
cell-cache directory (one flushed JSON line per event, crash-consistent)
and — on traced sweeps — a ``spans.jsonl`` spill next to it.  Neither
requires cooperation from the running sweep: this module *reads* them,
so ``repro status`` works against a live sweep from another terminal, a
killed sweep (what is left to ``--resume``?), or a finished one.

Event semantics (written by ``eval/engine.py``):

* ``batch``   — a driver handed the engine a batch: ``cells`` to
  resolve, ``jobs`` workers, ``artifact`` label;
* ``start``   — one attempt dispatched (``attempt``, worker ``pid``);
* ``done``    — cell complete (``source: "cached"`` for cache hits,
  else ``seconds``/``attempts`` from a real simulation);
* ``retry``   — an attempt failed and was re-queued;
* ``failed``  — retries exhausted;
* ``quarantine`` — a corrupt cache entry was moved aside.

A cell is *running* iff its latest ``start`` is not followed by a
``done``/``failed`` for the same key.  The ETA extrapolates the mean
wall-clock of the last few computed cells over the remaining count,
divided by the batch's worker count.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..telemetry.spans import SPILL_FILENAME
from .engine import SweepJournal

#: How many recent computed-cell durations the ETA averages over.
ETA_WINDOW = 10


@dataclass
class RunningCell:
    """One cell with a ``start`` and no terminal event yet."""

    label: str
    attempt: int
    pid: Optional[int]
    since: Optional[float]      # journal wall-clock of the start event

    def age_seconds(self, now: Optional[float] = None) -> Optional[float]:
        if self.since is None:
            return None
        return max(0.0, (time.time() if now is None else now) - self.since)


@dataclass
class SweepStatus:
    """Aggregated view of one sweep's journal (plus span spill)."""

    cache_dir: str
    artifacts: List[str] = field(default_factory=list)
    jobs: int = 1
    total: int = 0              # cells this sweep set out to resolve
    done: int = 0               # unique completed cells
    cached: int = 0             # of those, served from the cell cache
    failed: int = 0             # unique permanently-failed cells
    retries: int = 0
    quarantined: int = 0
    running: List[RunningCell] = field(default_factory=list)
    recent_seconds: List[float] = field(default_factory=list)
    last_event_ts: Optional[float] = None
    spilled_spans: int = 0

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done - self.failed)

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.done if self.done else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Remaining × mean recent cell wall-clock / workers, or
        ``None`` when nothing has been computed to extrapolate from."""
        if not self.remaining or not self.recent_seconds:
            return None
        mean = sum(self.recent_seconds) / len(self.recent_seconds)
        return self.remaining * mean / max(1, self.jobs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cache_dir": self.cache_dir,
            "artifacts": list(self.artifacts),
            "jobs": self.jobs,
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "remaining": self.remaining,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "running": [{"label": cell.label, "attempt": cell.attempt,
                         "pid": cell.pid,
                         "age_seconds": cell.age_seconds()}
                        for cell in self.running],
            "eta_seconds": self.eta_seconds(),
            "last_event_ts": self.last_event_ts,
            "spilled_spans": self.spilled_spans,
        }

    def format_text(self) -> str:
        lines = [f"sweep status ({self.cache_dir})"]
        if self.artifacts:
            lines.append(f"  artifacts:   {', '.join(self.artifacts)}")
        counts = (f"  cells:       {self.total} total, {self.done} done"
                  f" ({self.cached} cached), {len(self.running)} running,"
                  f" {self.failed} failed")
        lines.append(counts)
        lines.append(f"  degradation: {self.retries} retrie(s), "
                     f"{self.quarantined} quarantined cache entr(ies)")
        lines.append(f"  cache hits:  {self.cache_hit_rate:.0%} of "
                     f"completed cells")
        for cell in self.running:
            age = cell.age_seconds()
            age_text = "" if age is None else f", {_duration(age)} ago"
            lines.append(f"  running:     {cell.label} "
                         f"(attempt {cell.attempt}"
                         + (f", pid {cell.pid}" if cell.pid else "")
                         + f"{age_text})")
        eta = self.eta_seconds()
        if eta is not None:
            mean = sum(self.recent_seconds) / len(self.recent_seconds)
            lines.append(f"  eta:         ~{_duration(eta)} "
                         f"({self.remaining} cell(s) x {mean:.1f}s "
                         f"/ {self.jobs} job(s))")
        elif not self.remaining and self.total:
            lines.append("  eta:         complete")
        if self.spilled_spans:
            lines.append(f"  spans:       {self.spilled_spans} spilled "
                         f"record(s) in {SPILL_FILENAME}")
        return "\n".join(lines)


def _duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m {rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"


def read_status(cache_dir: Union[str, Path]) -> SweepStatus:
    """Parse the journal (and span spill) under ``cache_dir``.

    Tolerates everything an interrupted sweep can leave behind: a
    missing journal (empty status), a truncated trailing line (skipped,
    exactly like the engine's own reader), and pre-tracing journals
    whose records carry no ``ts``/``batch`` events.
    """
    directory = Path(cache_dir)
    status = SweepStatus(cache_dir=str(directory))
    journal_path = directory / SweepJournal.FILENAME
    try:
        text = journal_path.read_text()
    except OSError:
        text = ""

    done_keys: Dict[str, str] = {}      # key -> source ("cached"/"")
    failed_keys = set()
    starts: Dict[str, Dict[str, object]] = {}   # key -> latest start
    # Latest batch announcement per artifact: a resumed sweep re-announces
    # the same batch, so the newest declaration wins instead of summing.
    batch_by_artifact: Dict[str, int] = {}
    recent: List[float] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # truncated trailing line from an interrupt
        event = record.get("event")
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            status.last_event_ts = float(ts)
        key = record.get("key")
        if event == "batch":
            artifact = str(record.get("artifact", ""))
            batch_by_artifact[artifact] = int(record.get("cells", 0))
            status.jobs = int(record.get("jobs", status.jobs) or 1)
        elif event == "start" and key:
            starts[key] = record
        elif event == "done" and key:
            done_keys[key] = str(record.get("source", ""))
            starts.pop(key, None)
            failed_keys.discard(key)
            seconds = record.get("seconds")
            if isinstance(seconds, (int, float)):
                recent.append(float(seconds))
        elif event == "failed" and key:
            failed_keys.add(key)
            starts.pop(key, None)
        elif event == "retry":
            status.retries += 1
        elif event == "quarantine":
            status.quarantined += 1
        artifact = record.get("artifact")
        if artifact and artifact not in status.artifacts:
            status.artifacts.append(artifact)

    status.done = len(done_keys)
    status.cached = sum(1 for source in done_keys.values()
                        if source == "cached")
    status.failed = len(failed_keys)
    status.recent_seconds = recent[-ETA_WINDOW:]
    for key, record in starts.items():
        ts = record.get("ts")
        pid = record.get("pid")
        status.running.append(RunningCell(
            label=str(record.get("label", key)),
            attempt=int(record.get("attempt", 1)),
            pid=int(pid) if isinstance(pid, int) else None,
            since=float(ts) if isinstance(ts, (int, float)) else None))
    status.running.sort(key=lambda cell: cell.label)
    # Pre-tracing journals have no batch events; fall back to what the
    # journal actually witnessed so counts never go negative.
    status.total = max(sum(batch_by_artifact.values()),
                       status.done + status.failed + len(status.running))

    spill = directory / SPILL_FILENAME
    try:
        with spill.open() as handle:
            status.spilled_spans = sum(1 for line in handle if line.strip())
    except OSError:
        status.spilled_spans = 0
    return status
