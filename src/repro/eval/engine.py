"""Shared cell-oriented evaluation engine.

Every figure/table driver needs the same kind of raw material: the
metrics of one (workload, defense, scale) *cell*, simulated under one
:class:`~repro.pipeline.config.CoreConfig`.  Before this engine existed
each driver re-simulated its cells independently, so ``python -m repro
reproduce`` paid for the overlapping cells of Figures 6-9 and Tables
II/IV many times over.

The engine turns that inside out:

* :class:`CellSpec` names one cell (workload, defense label, scale,
  instruction budget, core configuration, and the cell *kind* —
  ``"benchmark"`` for a full :class:`~repro.eval.common.BenchmarkRun`,
  ``"patterns"`` for a Table II reload-pattern profile);
* :class:`EvalEngine` computes a batch of specs, deduplicated, fanned
  out across a ``ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``), memoized in-process for the engine's lifetime,
  and — unless caching is disabled — persisted as JSON under
  ``results/.cellcache/`` keyed by a content hash of the spec plus the
  package version, so warm re-runs are near-instant;
* the drivers slice the shared records into the paper's rows/series.

Cache entries are self-describing: schema number, package version, the
full spec payload, the encoded result, and timing.  Any mismatch (or a
corrupt file) is treated as a miss and recomputed — never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import __version__
from ..analysis.patterns import Pattern, PatternProfile, profile_patterns
from ..core.variants import Variant
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..telemetry.registry import METRICS_SCHEMA, MetricsRegistry
from .common import BenchmarkRun, run_benchmark

#: Bumped whenever the cache record layout (not the simulated behaviour)
#: changes; old records are silently recomputed.  3: BenchmarkRun grew
#: the ``metrics`` telemetry snapshot.
CACHE_SCHEMA = 3

#: Default location of the on-disk cell cache.
DEFAULT_CACHE_DIR = "results/.cellcache"

_VARIANT_BY_LABEL = {variant.value: variant for variant in Variant}


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class CellSpec:
    """One unit of simulation work, addressable and hashable.

    ``defense`` is a *label* (``Variant.value`` or ``"asan"``) so specs
    serialize naturally; ``config`` is the frozen ``CoreConfig``, which
    makes equal sweeps (e.g. Figure 7's 64-entry capability cache and
    Figure 6's default configuration) literally the same cell.
    """

    workload: str
    defense: str
    scale: int = 1
    max_instructions: int = 2_000_000
    kind: str = "benchmark"      # "benchmark" | "patterns"
    min_events: int = 0          # patterns cells: minimum reloads per PC
    config: CoreConfig = DEFAULT_CONFIG

    def __post_init__(self) -> None:
        if self.kind not in ("benchmark", "patterns"):
            raise ValueError(f"unknown cell kind {self.kind!r}")
        if self.kind == "benchmark" and self.defense not in _VARIANT_BY_LABEL \
                and self.defense != "asan":
            raise ValueError(f"unknown defense {self.defense!r}")

    # -- identity ------------------------------------------------------------

    @property
    def label(self) -> str:
        suffix = "" if self.kind == "benchmark" else f" [{self.kind}]"
        return f"{self.workload}/{self.defense}{suffix}"

    def payload(self) -> Dict[str, object]:
        """Plain-data form: hashed for the cache key and shipped to
        worker processes (picklable under any start method)."""
        return {
            "workload": self.workload,
            "defense": self.defense,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "kind": self.kind,
            "min_events": self.min_events,
            "config": asdict(self.config),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CellSpec":
        config_fields = {f.name for f in fields(CoreConfig)}
        config = CoreConfig(**{k: v for k, v in payload["config"].items()
                               if k in config_fields})
        return cls(workload=payload["workload"], defense=payload["defense"],
                   scale=payload["scale"],
                   max_instructions=payload["max_instructions"],
                   kind=payload.get("kind", "benchmark"),
                   min_events=payload.get("min_events", 0),
                   config=config)

    def cache_key(self) -> str:
        """Content hash over the spec and the package version, so any
        change to the simulated configuration invalidates the cell."""
        canonical = json.dumps(
            {"schema": CACHE_SCHEMA, "version": __version__,
             **self.payload()},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def cache_filename(self) -> str:
        safe = f"{self.workload}-{self.defense}-{self.kind}".replace("/", "_")
        return f"{safe}-{self.cache_key()}.json"


# -- cell computation (runs in worker processes) ------------------------------


def compute_cell(spec: CellSpec):
    """Simulate one cell from scratch; pure function of the spec."""
    from ..workloads import build

    workload = build(spec.workload, spec.scale)
    if spec.kind == "benchmark":
        defense = _VARIANT_BY_LABEL.get(spec.defense, spec.defense)
        return run_benchmark(workload, defense, spec.config,
                             spec.max_instructions)
    # "patterns": trace reload PIDs and classify them (Table II).
    from ..core.machine import Chex86Machine
    from ..isa.assembler import assemble

    machine = Chex86Machine(
        assemble(workload.source, name=spec.workload),
        variant=_VARIANT_BY_LABEL.get(spec.defense,
                                      Variant.UCODE_PREDICTION),
        config=spec.config, halt_on_violation=False)
    machine.trace_reloads = True
    machine.run(max_instructions=spec.max_instructions)
    return profile_patterns(machine.reload_trace, spec.min_events)


def encode_result(spec: CellSpec, result) -> Dict[str, object]:
    """JSON-serializable form of a cell result (by kind)."""
    if spec.kind == "benchmark":
        return {"benchmark_run": result.to_dict()}
    return {"pattern_profile": {str(pc): pattern.value
                                for pc, pattern in result.per_pc.items()}}


def decode_result(spec: CellSpec, encoded: Dict[str, object]):
    """Inverse of :func:`encode_result`; raises ``KeyError``/``ValueError``
    on malformed records (callers treat that as a cache miss)."""
    if spec.kind == "benchmark":
        return BenchmarkRun.from_dict(encoded["benchmark_run"])
    from collections import Counter

    per_pc = {int(pc): Pattern(value)
              for pc, value in encoded["pattern_profile"].items()}
    return PatternProfile(per_pc=per_pc,
                          histogram=Counter(per_pc.values()))


def _cell_worker(payload: Dict[str, object]) -> Tuple[Dict[str, object], int,
                                                      float]:
    """Top-level (picklable) pool entry point: compute one cell and
    return ``(encoded result, simulated instructions, seconds)``."""
    spec = CellSpec.from_payload(payload)
    started = time.perf_counter()
    result = compute_cell(spec)
    seconds = time.perf_counter() - started
    instructions = getattr(result, "instructions", 0)
    return encode_result(spec, result), instructions, seconds


# -- the engine ---------------------------------------------------------------


@dataclass
class EngineStats:
    """What one engine instance did, for the timing summary."""

    computed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    simulated_instructions: int = 0

    @property
    def instructions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_seconds

    @property
    def simulated_mips(self) -> float:
        """Simulated instructions per wall-clock second, in millions —
        the hot-loop throughput figure ``bench_hotloop.py`` tracks."""
        return self.instructions_per_second / 1e6

    def summary(self) -> str:
        rate = self.instructions_per_second
        return (f"engine: {self.computed} cell(s) simulated, "
                f"{self.cached} cached, {self.wall_seconds:.1f}s wall, "
                f"{rate / 1e3:.0f}k simulated instr/s")


class EvalEngine:
    """Computes cells at most once: in-memory memo, on-disk cache,
    process-pool fan-out for the misses.

    ``jobs=1`` computes inline (deterministic, no subprocess overhead);
    ``use_cache=False`` skips the on-disk layer but keeps the in-memory
    memo, so a batch still simulates each unique cell once.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: str = DEFAULT_CACHE_DIR,
                 use_cache: bool = True,
                 echo: Optional[Callable[[str], None]] = None) -> None:
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.cache_dir = Path(cache_dir)
        self.use_cache = use_cache
        self.echo = echo if echo is not None else (lambda message: None)
        self.stats = EngineStats()
        self._memo: Dict[CellSpec, object] = {}
        # Engine-side accounting uses push instruments (no stats object
        # drives these increments) plus a latency histogram per cell.
        self.telemetry = MetricsRegistry()
        self._computed_counter = self.telemetry.counter(
            "engine.cells_computed")
        self._cached_counter = self.telemetry.counter("engine.cells_cached")
        self._cell_seconds = self.telemetry.histogram(
            "engine.cell_seconds",
            (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0))
        self.telemetry.gauge("engine.simulated_instructions",
                             lambda stats=self.stats:
                             stats.simulated_instructions)

    @classmethod
    def serial(cls) -> "EvalEngine":
        """Inline, cache-less engine — the drivers' standalone default."""
        return cls(jobs=1, use_cache=False)

    # -- public API ----------------------------------------------------------

    def get(self, spec: CellSpec):
        return self.run_cells([spec])[spec]

    def memoized(self) -> Dict[CellSpec, object]:
        """Snapshot of every (spec, result) resolved so far — the
        ``--profile`` report aggregates phase counters from this."""
        return dict(self._memo)

    def cell_metrics(self, specs: Sequence[CellSpec]
                     ) -> List[Dict[str, object]]:
        """Per-cell metrics records for every resolved *benchmark* spec.

        Each record carries the cell address (workload, defense, scale,
        kind) plus the full merged telemetry snapshot the worker
        collected (``BenchmarkRun.metrics``).  Unresolved specs and
        pattern cells (which carry no registry) are skipped.
        """
        records: List[Dict[str, object]] = []
        seen = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            result = self._memo.get(spec)
            if not isinstance(result, BenchmarkRun):
                continue
            records.append({
                "workload": spec.workload,
                "defense": spec.defense,
                "scale": spec.scale,
                "kind": spec.kind,
                "metrics": {name: result.metrics[name]
                            for name in sorted(result.metrics)},
            })
        return records

    def write_metrics(self, path: Union[str, Path],
                      specs: Sequence[CellSpec], artifact: str) -> None:
        """Write the per-cell metrics sidecar for one figure/table.

        The document pairs every benchmark cell's merged registry
        snapshot with the engine's own accounting snapshot, so a single
        file answers both "what did the simulator count in this cell"
        and "what did it cost to produce".
        """
        document = {
            "schema": METRICS_SCHEMA,
            "artifact": artifact,
            "engine": self.telemetry.snapshot(),
            "cells": self.cell_metrics(specs),
        }
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")

    def run_cells(self, specs: Sequence[CellSpec]) -> Dict[CellSpec, object]:
        """Resolve every spec, computing each unique cell at most once.

        Returns a dict covering every requested spec (duplicates share
        one record).  Emits one progress line per resolved cell and a
        timing summary for the batch.
        """
        unique: List[CellSpec] = []
        seen = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)
        misses = [spec for spec in unique if spec not in self._memo]
        total = len(misses)
        started = time.perf_counter()
        done = 0

        still_missing: List[CellSpec] = []
        for spec in misses:
            cached = self._cache_load(spec)
            if cached is not None:
                self._memo[spec] = cached
                self.stats.cached += 1
                self._cached_counter.inc()
                done += 1
                self.echo(f"[cell {done}/{total}] {spec.label} cached")
            else:
                still_missing.append(spec)

        if still_missing:
            if self.jobs == 1 or len(still_missing) == 1:
                for spec in still_missing:
                    encoded, instructions, seconds = _cell_worker(
                        spec.payload())
                    done += 1
                    self._finish_cell(spec, encoded, instructions, seconds,
                                      done, total)
            else:
                self._run_pool(still_missing, done, total)

        if misses:
            self.stats.wall_seconds += time.perf_counter() - started
            self.echo(self.stats.summary())
        return {spec: self._memo[spec] for spec in unique}

    # -- internals -----------------------------------------------------------

    def _run_pool(self, specs: List[CellSpec], done: int, total: int) -> None:
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_cell_worker, spec.payload()): spec
                       for spec in specs}
            pending = set(futures)
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    encoded, instructions, seconds = future.result()
                    done += 1
                    self._finish_cell(spec, encoded, instructions, seconds,
                                      done, total)

    def _finish_cell(self, spec: CellSpec, encoded: Dict[str, object],
                     instructions: int, seconds: float,
                     done: int, total: int) -> None:
        result = decode_result(spec, encoded)
        self._memo[spec] = result
        self.stats.computed += 1
        self._computed_counter.inc()
        self._cell_seconds.observe(seconds)
        self.stats.simulated_instructions += instructions
        self.echo(f"[cell {done}/{total}] {spec.label} "
                  f"{seconds:.2f}s ({instructions:,} instr)")
        self._cache_store(spec, encoded, instructions, seconds)

    def _cache_path(self, spec: CellSpec) -> Path:
        return self.cache_dir / spec.cache_filename()

    def _cache_load(self, spec: CellSpec):
        if not self.use_cache:
            return None
        path = self._cache_path(spec)
        try:
            record = json.loads(path.read_text())
            if record.get("schema") != CACHE_SCHEMA \
                    or record.get("version") != __version__:
                return None
            return decode_result(spec, record["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _cache_store(self, spec: CellSpec, encoded: Dict[str, object],
                     instructions: int, seconds: float) -> None:
        if not self.use_cache:
            return
        record = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "spec": spec.payload(),
            "result": encoded,
            "instructions": instructions,
            "seconds": round(seconds, 4),
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_path(spec)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(path)
        except OSError:
            pass  # a read-only cache directory degrades to cache-less
