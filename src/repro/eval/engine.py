"""Shared cell-oriented evaluation engine.

Every figure/table driver needs the same kind of raw material: the
metrics of one (workload, defense, scale) *cell*, simulated under one
:class:`~repro.pipeline.config.CoreConfig`.  Before this engine existed
each driver re-simulated its cells independently, so ``python -m repro
reproduce`` paid for the overlapping cells of Figures 6-9 and Tables
II/IV many times over.

The engine turns that inside out:

* :class:`CellSpec` names one cell (workload, defense label, scale,
  instruction budget, core configuration, and the cell *kind* —
  ``"benchmark"`` for a full :class:`~repro.eval.common.BenchmarkRun`,
  ``"patterns"`` for a Table II reload-pattern profile);
* :class:`EvalEngine` computes a batch of specs, deduplicated, fanned
  out across supervised worker processes (``jobs`` workers, default
  ``os.cpu_count()``), memoized in-process for the engine's lifetime,
  and — unless caching is disabled — persisted as JSON under
  ``results/.cellcache/`` keyed by a content hash of the spec plus the
  package version, so warm re-runs are near-instant;
* the drivers slice the shared records into the paper's rows/series.

The engine is fault-tolerant end to end (``docs/robustness.md``):

* a worker that **crashes** or raises fails only its own cell; the cell
  is re-dispatched up to ``max_retries`` times with exponential backoff
  and a fresh worker process replaces the dead one;
* a worker that **hangs** past ``cell_timeout`` seconds is killed and
  its cell retried the same way;
* cache writes are **crash-safe** (write-to-temp + atomic rename) and
  **self-verifying** (a content hash over the encoded result is checked
  on read; corrupt entries are quarantined under
  ``<cache_dir>/quarantine/`` and recomputed, never a hard failure);
* sweeps are **resumable**: every cell outcome is appended to a
  ``journal.jsonl`` under the cache directory (one flushed JSON line per
  cell, so an interrupt leaves a consistent journal) and
  ``resume=True`` skips cells the journal marks complete;
* every degradation is counted (``engine.cells_retried``,
  ``engine.cells_timed_out``, ``engine.cells_crashed``,
  ``engine.cache_quarantined``, ``engine.journal_hits``, …) through the
  engine's :class:`~repro.telemetry.registry.MetricsRegistry`;
* the failure paths are testable: a :class:`~repro.eval.faults.FaultPlan`
  (or the ``REPRO_FAULT_SPEC`` environment variable) deterministically
  injects crash / hang / transient / corrupt-cache faults.

A fault-free run produces byte-identical artifacts to a faulted one:
faults only ever change *when* a cell is computed, never what it
contains.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import (Callable, Deque, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

from .. import __version__
from ..analysis.patterns import Pattern, PatternProfile, profile_patterns
from ..core.variants import Variant
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..telemetry import provenance as prov_mod
from ..telemetry import spans as spans_mod
from ..telemetry.registry import METRICS_SCHEMA, MetricsRegistry
from ..telemetry.spans import SPILL_FILENAME, SpanTracer, TraceOptions
from .common import BenchmarkRun, IntervalRun, run_benchmark
from .faults import FaultPlan

#: Bumped whenever the cache record layout (not the simulated behaviour)
#: changes; old records are silently recomputed.  3: BenchmarkRun grew
#: the ``metrics`` telemetry snapshot.  4: records carry a ``sha256``
#: content hash over the encoded result (verified on read).
CACHE_SCHEMA = 4

#: Default location of the on-disk cell cache.
DEFAULT_CACHE_DIR = "results/.cellcache"

#: Default retry budget for a crashed/hung/raising cell.
DEFAULT_MAX_RETRIES = 2

#: Default base delay (seconds) before re-dispatching a failed cell;
#: doubled on every further attempt of the same cell.
DEFAULT_RETRY_BACKOFF = 1.0

#: How long an injected ``hang`` fault sleeps; pair it with a
#: ``cell_timeout`` well below this or the sweep will genuinely wait.
HANG_SECONDS = 600.0

#: Exit status an injected ``crash`` fault dies with (visible in the
#: supervisor's diagnostic line).
CRASH_EXIT_STATUS = 23

_VARIANT_BY_LABEL = {variant.value: variant for variant in Variant}


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


class CellFailure(RuntimeError):
    """One or more cells exhausted their retry budget.

    Completed cells stay journaled and cached, so fixing the cause and
    re-running with ``resume=True`` recomputes only the failures.
    """

    def __init__(self, failures: Sequence[Tuple["CellSpec", str]]) -> None:
        self.failures = list(failures)
        detail = "; ".join(f"{spec.label}: {reason}"
                           for spec, reason in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed permanently ({detail})")


@dataclass(frozen=True)
class CellSpec:
    """One unit of simulation work, addressable and hashable.

    ``defense`` is a *label* (``Variant.value`` or ``"asan"``) so specs
    serialize naturally; ``config`` is the frozen ``CoreConfig``, which
    makes equal sweeps (e.g. Figure 7's 64-entry capability cache and
    Figure 6's default configuration) literally the same cell.
    """

    workload: str
    defense: str
    scale: int = 1
    max_instructions: int = 2_000_000
    kind: str = "benchmark"      # "benchmark" | "patterns" | "interval" | "fuzz"
    min_events: int = 0          # patterns cells: minimum reloads per PC
    config: CoreConfig = DEFAULT_CONFIG
    # Interval cells only (checkpointed SimPoint replay, docs/sampling.md):
    interval_index: int = -1     # which profiled interval this cell replays
    interval_length: int = 0     # instructions to execute from the snapshot
    checkpoint: str = ""         # snapshot file path (volatile, not hashed)
    checkpoint_digest: str = ""  # sha256 of the snapshot bytes (hashed)
    # Fuzz cells only (oracle sweeps, docs/fuzzing.md); ``defense`` holds
    # the generator profile, not a variant label:
    fuzz_seed: int = -1          # generator seed (the cell's identity)
    fuzz_profile: str = ""       # generator profile ("" = seed rotation)
    fuzz_bug: str = ""           # oracle-sensitivity bug injection spec

    def __post_init__(self) -> None:
        if self.kind not in ("benchmark", "patterns", "interval", "fuzz"):
            raise ValueError(f"unknown cell kind {self.kind!r}")
        if self.kind in ("benchmark", "interval") \
                and self.defense not in _VARIANT_BY_LABEL \
                and self.defense != "asan":
            raise ValueError(f"unknown defense {self.defense!r}")
        if self.kind == "fuzz" and self.fuzz_seed < 0:
            raise ValueError("fuzz cells need fuzz_seed >= 0")
        if self.kind == "interval":
            if self.interval_index < 0 or self.interval_length <= 0:
                raise ValueError(
                    "interval cells need interval_index >= 0 and "
                    "interval_length > 0")
            if not self.checkpoint or not self.checkpoint_digest:
                raise ValueError(
                    "interval cells need a checkpoint path and digest")

    # -- identity ------------------------------------------------------------

    @property
    def label(self) -> str:
        if self.kind == "benchmark":
            suffix = ""
        elif self.kind == "interval":
            suffix = f" [interval {self.interval_index}]"
        else:
            suffix = f" [{self.kind}]"
        return f"{self.workload}/{self.defense}{suffix}"

    def payload(self) -> Dict[str, object]:
        """Plain-data form: hashed for the cache key and shipped to
        worker processes (picklable under any start method).

        Interval-only keys are added only for interval cells, so the
        payload — and therefore the cache key — of every pre-existing
        benchmark/patterns cell is byte-identical to what it was before
        sampled simulation existed.
        """
        payload = {
            "workload": self.workload,
            "defense": self.defense,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "kind": self.kind,
            "min_events": self.min_events,
            "config": asdict(self.config),
        }
        if self.kind == "interval":
            payload["interval_index"] = self.interval_index
            payload["interval_length"] = self.interval_length
            payload["checkpoint"] = self.checkpoint
            payload["checkpoint_digest"] = self.checkpoint_digest
        if self.kind == "fuzz":
            payload["fuzz_seed"] = self.fuzz_seed
            payload["fuzz_profile"] = self.fuzz_profile
            payload["fuzz_bug"] = self.fuzz_bug
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CellSpec":
        config_fields = {f.name for f in fields(CoreConfig)}
        config = CoreConfig(**{k: v for k, v in payload["config"].items()
                               if k in config_fields})
        return cls(workload=payload["workload"], defense=payload["defense"],
                   scale=payload["scale"],
                   max_instructions=payload["max_instructions"],
                   kind=payload.get("kind", "benchmark"),
                   min_events=payload.get("min_events", 0),
                   config=config,
                   interval_index=payload.get("interval_index", -1),
                   interval_length=payload.get("interval_length", 0),
                   checkpoint=payload.get("checkpoint", ""),
                   checkpoint_digest=payload.get("checkpoint_digest", ""),
                   fuzz_seed=payload.get("fuzz_seed", -1),
                   fuzz_profile=payload.get("fuzz_profile", ""),
                   fuzz_bug=payload.get("fuzz_bug", ""))

    def cache_key(self) -> str:
        """Content hash over the spec and the package version, so any
        change to the simulated configuration invalidates the cell.

        The checkpoint *path* is excluded: it names a temp-dir location
        that varies run to run, while the content digest (which is
        hashed) pins what the replay actually executes.
        """
        canonical_payload = self.payload()
        canonical_payload.pop("checkpoint", None)
        canonical = json.dumps(
            {"schema": CACHE_SCHEMA, "version": __version__,
             **canonical_payload},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def cache_filename(self) -> str:
        safe = f"{self.workload}-{self.defense}-{self.kind}".replace("/", "_")
        return f"{safe}-{self.cache_key()}.json"


# -- cell computation (runs in worker processes) ------------------------------


def compute_cell(spec: CellSpec):
    """Simulate one cell from scratch; pure function of the spec."""
    from ..workloads import build

    if spec.kind == "interval":
        return _replay_interval(spec)
    if spec.kind == "fuzz":
        from ..fuzz.cell import compute_fuzz_cell

        return compute_fuzz_cell(spec)
    workload = build(spec.workload, spec.scale)
    if spec.kind == "benchmark":
        defense = _VARIANT_BY_LABEL.get(spec.defense, spec.defense)
        return run_benchmark(workload, defense, spec.config,
                             spec.max_instructions)
    # "patterns": trace reload PIDs and classify them (Table II).
    from ..core.machine import Chex86Machine
    from ..isa.assembler import assemble

    machine = Chex86Machine(
        assemble(workload.source, name=spec.workload),
        variant=_VARIANT_BY_LABEL.get(spec.defense,
                                      Variant.UCODE_PREDICTION),
        config=spec.config, halt_on_violation=False)
    spans_mod.attach_machine_tracer(
        machine, f"{spec.workload}/{spec.defense} patterns")
    prov_mod.attach_machine_recorder(
        machine, f"{spec.workload}/{spec.defense} patterns")
    machine.trace_reloads = True
    machine.run(max_instructions=spec.max_instructions)
    return profile_patterns(machine.reload_trace, spec.min_events)


def _replay_interval(spec: CellSpec):
    """Replay one checkpointed interval and measure its telemetry delta.

    The snapshot bytes are digest-verified before restore, so a stale or
    rewritten checkpoint file fails loudly instead of silently replaying
    the wrong state.
    """
    from ..core.snapshot import SnapshotError, snapshot_digest
    from ..core.machine import Chex86Machine

    data = Path(spec.checkpoint).read_bytes()
    if snapshot_digest(data) != spec.checkpoint_digest:
        raise SnapshotError(
            f"checkpoint {spec.checkpoint} content does not match the "
            f"cell's recorded digest; re-run the checkpoint pass")
    machine = Chex86Machine.restore(data)
    spans_mod.attach_machine_tracer(
        machine,
        f"{spec.workload}/{spec.defense} interval {spec.interval_index}")
    prov_mod.attach_machine_recorder(
        machine,
        f"{spec.workload}/{spec.defense} interval {spec.interval_index}")
    base_metrics = machine.metrics_snapshot()
    base_phase = machine.phase_counters()
    base_instructions = machine.instructions
    machine.run_quantum(spec.interval_length)
    final_metrics = machine.metrics_snapshot()
    phase = machine.phase_counters()
    return IntervalRun(
        workload=spec.workload,
        defense=spec.defense,
        interval_index=spec.interval_index,
        instructions=machine.instructions - base_instructions,
        halted=machine.halted,
        flagged=machine.violations.count() > 0,
        metrics_delta=machine.telemetry.delta(base_metrics, final_metrics),
        final_metrics=final_metrics,
        phase_delta={name: value - base_phase.get(name, 0)
                     for name, value in phase.items()},
        rss_bytes=machine.system.memory.resident_bytes,
        shadow_rss_bytes=machine.system.shadow_bytes,
    )


def encode_result(spec: CellSpec, result) -> Dict[str, object]:
    """JSON-serializable form of a cell result (by kind)."""
    if spec.kind == "benchmark":
        return {"benchmark_run": result.to_dict()}
    if spec.kind == "interval":
        return {"interval_run": result.to_dict()}
    if spec.kind == "fuzz":
        return {"fuzz_result": result.to_dict()}
    return {"pattern_profile": {str(pc): pattern.value
                                for pc, pattern in result.per_pc.items()}}


def decode_result(spec: CellSpec, encoded: Dict[str, object]):
    """Inverse of :func:`encode_result`; raises ``KeyError``/``ValueError``
    on malformed records (callers treat that as a cache miss)."""
    if spec.kind == "benchmark":
        return BenchmarkRun.from_dict(encoded["benchmark_run"])
    if spec.kind == "interval":
        return IntervalRun.from_dict(encoded["interval_run"])
    if spec.kind == "fuzz":
        from ..fuzz.cell import FuzzCellResult

        return FuzzCellResult.from_dict(encoded["fuzz_result"])
    from collections import Counter

    per_pc = {int(pc): Pattern(value)
              for pc, value in encoded["pattern_profile"].items()}
    return PatternProfile(per_pc=per_pc,
                          histogram=Counter(per_pc.values()))


def result_digest(encoded: Dict[str, object]) -> str:
    """Content hash of an encoded result — stored in every cache record
    and re-verified on read, so silent on-disk corruption is caught."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _cell_worker(payload: Dict[str, object]) -> Tuple[Dict[str, object], int,
                                                      float]:
    """Top-level (picklable) pool entry point: compute one cell and
    return ``(encoded result, simulated instructions, seconds)``."""
    spec = CellSpec.from_payload(payload)
    started = time.perf_counter()
    result = compute_cell(spec)
    seconds = time.perf_counter() - started
    instructions = getattr(result, "instructions", 0)
    return encode_result(spec, result), instructions, seconds


def _supervised_entry(payload: Dict[str, object], fault: Optional[str],
                      conn, trace: Optional[Dict[str, object]] = None,
                      provenance: bool = False) -> None:
    """Worker-process entry point under supervision.

    Sends ``("ok", outcome)`` or ``("error", message)`` back over the
    pipe; a crash (injected or real) sends nothing, which the supervisor
    detects as EOF on the connection.  When the sweep is traced,
    ``trace`` carries the buffer capacities and the ``ok`` message grows
    a third element: the worker's span :meth:`~repro.telemetry.spans.
    SpanTracer.shipment` (spans + machine event rings + clock anchor).
    When provenance is armed the message grows a fourth element — the
    worker's per-cell provenance sidecars (the third is None for an
    untraced sweep so positions stay stable).
    """
    tracer: Optional[SpanTracer] = None
    if trace:
        tracer = SpanTracer(
            capacity=int(trace.get("capacity", 65536)),
            process_label=f"worker:{trace.get('label', '?')}")
        spans_mod.install(tracer, int(trace.get("machine_capacity", 0)))
    if provenance:
        prov_mod.arm()
    try:
        if fault == "crash":
            os._exit(CRASH_EXIT_STATUS)
        if fault == "hang":
            time.sleep(HANG_SECONDS)
            raise RuntimeError("injected hang outlived the supervisor")
        if fault == "transient":
            raise RuntimeError("injected transient fault")
        if tracer is not None:
            with tracer.span("worker.cell", cell=str(trace.get("label", ""))):
                outcome = _cell_worker(payload)
            span_shipment = tracer.shipment()
        else:
            outcome = _cell_worker(payload)
            span_shipment = None
        if provenance:
            conn.send(("ok", outcome, span_shipment, prov_mod.shipment()))
        elif span_shipment is not None:
            conn.send(("ok", outcome, span_shipment))
        else:
            conn.send(("ok", outcome))
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# -- the sweep journal --------------------------------------------------------


class SweepJournal:
    """Append-only JSONL record of per-cell outcomes.

    One flushed line per event, so a sweep killed at any instant leaves
    at most one truncated trailing line — which the reader skips.  A
    fresh (non-resume) sweep truncates the journal; ``resume`` reads the
    completed keys first and appends.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.path = Path(directory) / self.FILENAME

    def done_keys(self) -> Set[str]:
        """Cache keys of every cell the journal marks complete."""
        keys: Set[str] = set()
        try:
            text = self.path.read_text()
        except OSError:
            return keys
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # partial trailing line from an interrupt
            if record.get("event") == "done" and record.get("key"):
                keys.add(record["key"])
        return keys

    def start(self, resume: bool) -> Set[str]:
        """Begin a sweep: truncate (fresh) or load completed keys."""
        if resume:
            return self.done_keys()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        except OSError:
            pass
        return set()

    def record(self, event: str, spec: CellSpec, **extra: object) -> None:
        entry: Dict[str, object] = {
            "event": event,
            "key": spec.cache_key(),
            "label": spec.label,
            "ts": round(time.time(), 3),
        }
        entry.update({k: v for k, v in extra.items() if v not in ("", None)})
        self._write(entry)

    def note(self, event: str, **extra: object) -> None:
        """Journal a sweep-level event that names no particular cell
        (e.g. ``batch``) — ``repro status`` reads these for totals."""
        entry: Dict[str, object] = {
            "event": event,
            "ts": round(time.time(), 3),
        }
        entry.update({k: v for k, v in extra.items() if v not in ("", None)})
        self._write(entry)

    def _write(self, entry: Dict[str, object]) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            pass  # a read-only cache directory degrades to journal-less


# -- the engine ---------------------------------------------------------------


@dataclass
class EngineStats:
    """What one engine instance did, for the timing summary."""

    computed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    simulated_instructions: int = 0
    retried: int = 0
    crashed: int = 0
    timed_out: int = 0
    transient_errors: int = 0
    quarantined: int = 0
    journal_hits: int = 0
    failed: int = 0

    @property
    def instructions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_seconds

    @property
    def simulated_mips(self) -> float:
        """Simulated instructions per wall-clock second, in millions —
        the hot-loop throughput figure ``bench_hotloop.py`` tracks."""
        return self.instructions_per_second / 1e6

    def summary(self) -> str:
        rate = self.instructions_per_second
        base = (f"engine: {self.computed} cell(s) simulated, "
                f"{self.cached} cached, {self.wall_seconds:.1f}s wall, "
                f"{rate / 1e3:.0f}k simulated instr/s")
        extras = []
        if self.retried:
            extras.append(f"{self.retried} retried")
        if self.crashed:
            extras.append(f"{self.crashed} crashed")
        if self.timed_out:
            extras.append(f"{self.timed_out} timed out")
        if self.transient_errors:
            extras.append(f"{self.transient_errors} transient error(s)")
        if self.quarantined:
            extras.append(f"{self.quarantined} cache entr(ies) quarantined")
        if self.journal_hits:
            extras.append(f"{self.journal_hits} journal hit(s)")
        if self.failed:
            extras.append(f"{self.failed} failed permanently")
        return base + (", " + ", ".join(extras) if extras else "")


@dataclass
class _Task:
    """One in-flight supervised worker."""

    spec: CellSpec
    attempt: int                      # 0-based
    process: multiprocessing.Process
    conn: object                      # parent end of the result pipe
    deadline: Optional[float]         # monotonic, None = no timeout
    lane: int = 0                     # trace swimlane (traced sweeps only)
    span: object = None               # open engine.cell span handle


class EvalEngine:
    """Computes cells at most once: in-memory memo, on-disk cache,
    supervised process fan-out for the misses.

    ``jobs=1`` computes inline (deterministic, no subprocess overhead)
    unless a ``cell_timeout`` or ``fault_plan`` demands supervision;
    ``use_cache=False`` skips the on-disk layer but keeps the in-memory
    memo, so a batch still simulates each unique cell once.

    Fault tolerance: ``cell_timeout`` kills and retries a hung worker;
    crashed or raising workers are retried up to ``max_retries`` times
    with exponential backoff starting at ``retry_backoff`` seconds; a
    cell that exhausts its budget raises :class:`CellFailure` *after*
    the rest of the batch has been given its chance (so a later
    ``resume=True`` run recomputes only the failures).
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: str = DEFAULT_CACHE_DIR,
                 use_cache: bool = True,
                 echo: Optional[Callable[[str], None]] = None,
                 cell_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 resume: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 trace: Optional[TraceOptions] = None,
                 provenance: bool = False) -> None:
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.cache_dir = Path(cache_dir)
        self.use_cache = use_cache
        self.echo = echo if echo is not None else (lambda message: None)
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be > 0, got {cell_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}")
        if resume and not use_cache:
            raise ValueError("resume requires the on-disk cell cache")
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.resume = resume
        self.fault_plan = fault_plan if fault_plan is not None \
            else FaultPlan.from_env()
        self.stats = EngineStats()
        self._memo: Dict[CellSpec, object] = {}
        # Sweep-scope tracing (docs/observability.md): a parent-side
        # span tracer plus the shipments workers send home.  ``None``
        # (the default) keeps every instrumentation site a single
        # module-global test — the hot paths are unchanged.
        self._trace = trace
        self.spans: Optional[SpanTracer] = None
        self._shipments: List[Dict[str, object]] = []
        # Provenance-armed sweeps: workers arm the module-global
        # recorder hook, ship per-cell sidecars home over the result
        # pipe, and write_provenance() merges them into per-workload
        # attribution reports.  Sidecars are NOT cached — cache hits
        # contribute no provenance (mirrors span tracing).
        self.provenance = bool(provenance)
        self._prov_cells: List[Dict[str, object]] = []
        self._lane_pool: List[int] = []
        self._next_lane = 1
        if trace is not None:
            spill = trace.spill_path
            if spill is None and use_cache:
                spill = str(self.cache_dir / SPILL_FILENAME)
            if spill is not None and not resume:
                try:  # a fresh traced sweep starts with a fresh spill
                    Path(spill).unlink()
                except OSError:
                    pass
            self.spans = SpanTracer(capacity=trace.capacity,
                                    spill_path=spill,
                                    process_label="engine")
        self.journal = SweepJournal(self.cache_dir) if use_cache else None
        self._journal_started = False
        self._journal_done: Set[str] = set()
        self._artifact = ""
        self._done = 0
        self._total = 0
        # Engine-side accounting uses push instruments (no stats object
        # drives these increments) plus a latency histogram per cell.
        self.telemetry = MetricsRegistry()
        self._computed_counter = self.telemetry.counter(
            "engine.cells_computed")
        self._cached_counter = self.telemetry.counter("engine.cells_cached")
        self._retried_counter = self.telemetry.counter("engine.cells_retried")
        self._crashed_counter = self.telemetry.counter("engine.cells_crashed")
        self._timeout_counter = self.telemetry.counter(
            "engine.cells_timed_out")
        self._transient_counter = self.telemetry.counter(
            "engine.transient_errors")
        self._quarantined_counter = self.telemetry.counter(
            "engine.cache_quarantined")
        self._journal_hits_counter = self.telemetry.counter(
            "engine.journal_hits")
        self._failed_counter = self.telemetry.counter("engine.cells_failed")
        self._cell_seconds = self.telemetry.histogram(
            "engine.cell_seconds",
            (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0))
        self.telemetry.gauge("engine.simulated_instructions",
                             lambda stats=self.stats:
                             stats.simulated_instructions)

    @classmethod
    def serial(cls) -> "EvalEngine":
        """Inline, cache-less engine — the drivers' standalone default."""
        return cls(jobs=1, use_cache=False)

    # -- public API ----------------------------------------------------------

    def get(self, spec: CellSpec):
        return self.run_cells([spec])[spec]

    def memoized(self) -> Dict[CellSpec, object]:
        """Snapshot of every (spec, result) resolved so far — the
        ``--profile`` report aggregates phase counters from this."""
        return dict(self._memo)

    def cell_metrics(self, specs: Sequence[CellSpec]
                     ) -> List[Dict[str, object]]:
        """Per-cell metrics records for every resolved *benchmark* spec.

        Each record carries the cell address (workload, defense, scale,
        kind) plus the full merged telemetry snapshot the worker
        collected (``BenchmarkRun.metrics``).  Unresolved specs and
        pattern cells (which carry no registry) are skipped.
        """
        records: List[Dict[str, object]] = []
        seen = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            result = self._memo.get(spec)
            if not isinstance(result, BenchmarkRun):
                continue
            records.append({
                "workload": spec.workload,
                "defense": spec.defense,
                "scale": spec.scale,
                "kind": spec.kind,
                "metrics": {name: result.metrics[name]
                            for name in sorted(result.metrics)},
            })
        return records

    def write_metrics(self, path: Union[str, Path],
                      specs: Sequence[CellSpec], artifact: str) -> None:
        """Write the per-cell metrics sidecar for one figure/table.

        The document pairs every benchmark cell's merged registry
        snapshot with the engine's own accounting snapshot, so a single
        file answers both "what did the simulator count in this cell"
        and "what did it cost to produce".
        """
        document = {
            "schema": METRICS_SCHEMA,
            "artifact": artifact,
            "engine": self.telemetry.snapshot(),
            "cells": self.cell_metrics(specs),
        }
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")

    def write_trace(self, path: Union[str, Path],
                    label: str = "sweep") -> Dict[str, object]:
        """Collate the sweep's spans — parent + every worker shipment +
        captured machine rings — into one Chrome ``trace_event`` file.

        Requires the engine to have been built with ``trace=``; call
        once after the drivers finish (draining is destructive).
        """
        if self.spans is None:
            raise ValueError(
                "tracing was not enabled on this engine (pass trace=)")
        from ..telemetry.collate import collate, write_chrome

        shipments = [self.spans.shipment()] + self._shipments
        self._shipments = []
        document = collate(shipments, sweep_label=label)
        write_chrome(path, document)
        return document

    def write_provenance(self, directory: Union[str, Path],
                         artifact: str) -> Dict[str, object]:
        """Merge the sweep's per-cell provenance sidecars into the
        per-workload attribution report ``<directory>/<artifact>.json``
        plus the flamegraph-ready ``<artifact>.collapsed`` (capability
        checks folded by context).

        Requires the engine to have been built with ``provenance=True``;
        call once after the drivers finish (draining is destructive).
        Cells served from the on-disk cache contribute no sidecars — run
        against a cold or separate cache for full coverage.
        """
        if not self.provenance:
            raise ValueError(
                "provenance was not enabled on this engine "
                "(pass provenance=True)")
        self._prov_cells.extend(prov_mod.collect_cell_exports())
        cells, self._prov_cells = self._prov_cells, []
        json_path, collapsed_path = prov_mod.write_report(
            directory, artifact, cells)
        self.echo(f"provenance: {len(cells)} cell sidecar(s) -> "
                  f"{json_path} + {collapsed_path}")
        return {"cells": len(cells), "json": str(json_path),
                "collapsed": str(collapsed_path)}

    def run_cells(self, specs: Sequence[CellSpec],
                  artifact: str = "") -> Dict[CellSpec, object]:
        """Resolve every spec, computing each unique cell at most once.

        Returns a dict covering every requested spec (duplicates share
        one record).  Emits one progress line per resolved cell and a
        timing summary for the batch.  ``artifact`` labels the journal
        entries with the figure/table that asked for the cells.

        Raises :class:`CellFailure` if any cell exhausts its retry
        budget — after every other cell in the batch has been resolved,
        so completed work survives in the cache and journal.
        """
        with self._tracing(), self._provenancing():
            with spans_mod.maybe("engine.batch",
                                 artifact=artifact or "(batch)",
                                 requested=len(specs)):
                return self._run_batch(specs, artifact)

    def _run_batch(self, specs: Sequence[CellSpec],
                   artifact: str) -> Dict[CellSpec, object]:
        if self.journal is not None and not self._journal_started:
            with spans_mod.maybe("engine.journal.replay",
                                 resume=self.resume):
                self._journal_done = self.journal.start(self.resume)
            self._journal_started = True
        self._artifact = artifact
        unique: List[CellSpec] = []
        seen = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)
        misses = [spec for spec in unique if spec not in self._memo]
        self._total = len(misses)
        started = time.perf_counter()
        self._done = 0
        if self.journal is not None and misses:
            self.journal.note("batch", artifact=artifact,
                              requested=len(unique), cells=len(misses),
                              jobs=self.jobs)

        still_missing: List[CellSpec] = []
        for spec in misses:
            with spans_mod.maybe("engine.cache.probe", cell=spec.label):
                cached = self._cache_load(spec)
            if cached is not None:
                spans_mod.instant("engine.cache.hit", cell=spec.label)
                self._memo[spec] = cached
                self.stats.cached += 1
                self._cached_counter.inc()
                if self.resume and spec.cache_key() in self._journal_done:
                    self.stats.journal_hits += 1
                    self._journal_hits_counter.inc()
                if self.journal is not None:
                    self.journal.record("done", spec, artifact=artifact,
                                        source="cached")
                self._done += 1
                self.echo(f"[cell {self._done}/{self._total}] "
                          f"{spec.label} cached")
            else:
                still_missing.append(spec)

        failures: List[Tuple[CellSpec, str]] = []
        if still_missing:
            supervised = self.jobs > 1 or self.cell_timeout is not None \
                or bool(self.fault_plan)
            if supervised:
                failures = self._run_supervised(still_missing)
            else:
                failures = self._run_inline(still_missing)

        if misses:
            self.stats.wall_seconds += time.perf_counter() - started
            self.echo(self.stats.summary())
        if failures:
            raise CellFailure(failures)
        return {spec: self._memo[spec] for spec in unique}

    # -- internals -----------------------------------------------------------

    @contextmanager
    def _tracing(self):
        """Install this engine's span tracer for the dynamic extent of a
        batch (reentrant: nested batches — e.g. the SimPoint wrapper's
        inner replay batch — reuse the already-installed tracer)."""
        if self.spans is None or spans_mod.current() is self.spans:
            yield
            return
        machine_capacity = self._trace.machine_capacity \
            if self._trace is not None else 0
        spans_mod.install(self.spans, machine_capacity)
        try:
            yield
        finally:
            spans_mod.uninstall()

    @contextmanager
    def _provenancing(self):
        """Arm module-level provenance recording for the dynamic extent
        of a batch, so the *inline* (jobs=1) path records exactly like a
        supervised worker; sidecars are drained into ``_prov_cells`` at
        batch exit.  Reentrant, and a no-op when provenance is off."""
        if not self.provenance or prov_mod.armed():
            yield
            return
        prov_mod.arm()
        try:
            yield
        finally:
            self._prov_cells.extend(prov_mod.collect_cell_exports())
            prov_mod.disarm()

    def _acquire_lane(self) -> int:
        """Smallest free trace swimlane (tid) for an in-flight cell, so
        concurrent cells render as parallel tracks in Perfetto."""
        if self._lane_pool:
            lane = min(self._lane_pool)
            self._lane_pool.remove(lane)
            return lane
        lane = self._next_lane
        self._next_lane += 1
        return lane

    def _close_task_span(self, task: _Task, status: str) -> None:
        if task.span is None or self.spans is None:
            return
        self.spans.end(task.span, status=status)
        self._lane_pool.append(task.lane)
        task.span = None

    def _run_inline(self, specs: List[CellSpec]
                    ) -> List[Tuple[CellSpec, str]]:
        """Serial, same-process path: no hang supervision (a timeout
        cannot interrupt inline work), but transient exceptions still
        get the retry/backoff treatment."""
        failures: List[Tuple[CellSpec, str]] = []
        for spec in specs:
            attempt = 0
            while True:
                if self.journal is not None:
                    self.journal.record("start", spec,
                                        artifact=self._artifact,
                                        attempt=attempt + 1,
                                        pid=os.getpid())
                try:
                    with spans_mod.maybe("worker.cell", cell=spec.label,
                                         attempt=attempt + 1):
                        encoded, instructions, seconds = _cell_worker(
                            spec.payload())
                except Exception as error:  # noqa: BLE001 — retried
                    reason = f"{type(error).__name__}: {error}"
                    self.stats.transient_errors += 1
                    self._transient_counter.inc()
                    if not self._schedule_retry(spec, attempt, reason):
                        failures.append((spec, reason))
                        break
                    time.sleep(self._backoff(attempt))
                    attempt += 1
                    continue
                self._finish_cell(spec, encoded, instructions, seconds,
                                  attempts=attempt + 1)
                break
        return failures

    def _run_supervised(self, specs: List[CellSpec]
                        ) -> List[Tuple[CellSpec, str]]:
        """Fan cells out across supervised worker processes.

        Each cell runs in its own process (so a crash or kill loses only
        that cell and the "pool" replenishes by construction); the
        supervisor multiplexes result pipes, enforces per-cell
        deadlines, and re-dispatches failures with backoff.
        """
        ctx = multiprocessing.get_context()
        workers = min(self.jobs, len(specs))
        # (spec, attempt, not_before): retries carry a monotonic time
        # before which they must not be re-dispatched (the backoff).
        queue: Deque[Tuple[CellSpec, int, float]] = deque(
            (spec, 0, 0.0) for spec in specs)
        running: Dict[object, _Task] = {}
        failures: List[Tuple[CellSpec, str]] = []
        try:
            while queue or running:
                now = time.monotonic()
                deferred: List[Tuple[CellSpec, int, float]] = []
                while queue and len(running) < workers:
                    spec, attempt, not_before = queue.popleft()
                    if not_before > now:
                        deferred.append((spec, attempt, not_before))
                        continue
                    task = self._dispatch(ctx, spec, attempt)
                    running[task.conn] = task
                queue.extend(deferred)
                if not running:
                    # Everything runnable is backing off; sleep until the
                    # earliest retry becomes due.
                    wake = min(item[2] for item in queue)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue
                timeout = self._next_wake(running, queue)
                ready = mp_connection.wait(list(running), timeout)
                for conn in ready:
                    task = running.pop(conn)
                    self._reap(task, queue, failures)
                now = time.monotonic()
                for conn, task in list(running.items()):
                    if task.deadline is not None and now >= task.deadline:
                        del running[conn]
                        self._kill(task)
                        self._close_task_span(task, "timeout")
                        reason = (f"timed out after "
                                  f"{self.cell_timeout:.1f}s")
                        self.stats.timed_out += 1
                        self._timeout_counter.inc()
                        self._retry_or_fail(task, reason, queue, failures)
        except BaseException:
            # Ctrl-C or an internal error: kill the workers; the journal
            # holds one complete line per finished cell, so a later
            # resume run picks up exactly where this one stopped.
            for task in running.values():
                self._kill(task)
            raise
        return failures

    def _dispatch(self, ctx, spec: CellSpec, attempt: int) -> _Task:
        fault = self.fault_plan.worker_fault(spec.label) \
            if self.fault_plan else None
        trace = None
        if self._trace is not None:
            trace = {"capacity": self._trace.capacity,
                     "machine_capacity": self._trace.machine_capacity,
                     "label": spec.label}
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_supervised_entry,
                              args=(spec.payload(), fault, child_conn,
                                    trace, self.provenance),
                              daemon=True)
        process.start()
        child_conn.close()
        deadline = None if self.cell_timeout is None \
            else time.monotonic() + self.cell_timeout
        if self.journal is not None:
            self.journal.record("start", spec, artifact=self._artifact,
                                attempt=attempt + 1, pid=process.pid)
        task = _Task(spec=spec, attempt=attempt, process=process,
                     conn=parent_conn, deadline=deadline)
        if self.spans is not None:
            task.lane = self._acquire_lane()
            task.span = self.spans.begin("engine.cell", tid=task.lane,
                                         cell=spec.label,
                                         attempt=attempt + 1,
                                         worker_pid=process.pid)
        return task

    def _next_wake(self, running: Dict[object, _Task],
                   queue: Deque[Tuple[CellSpec, int, float]]
                   ) -> Optional[float]:
        """Longest safe sleep: until the nearest deadline or pending
        retry, or indefinitely when neither exists."""
        now = time.monotonic()
        marks = [task.deadline for task in running.values()
                 if task.deadline is not None]
        marks.extend(item[2] for item in queue if item[2] > now)
        if not marks:
            return None
        return max(0.0, min(marks) - now)

    def _reap(self, task: _Task,
              queue: Deque[Tuple[CellSpec, int, float]],
              failures: List[Tuple[CellSpec, str]]) -> None:
        """A worker's pipe became readable: collect its result, or
        diagnose the crash if it died without reporting."""
        try:
            message = task.conn.recv()
            status, value = message[0], message[1]
            # Traced sweeps: the third element is the worker's span
            # shipment, collated into the merged trace at write time.
            if len(message) > 2 and message[2]:
                self._shipments.append(message[2])
            # Provenance-armed sweeps: the fourth element carries the
            # worker's per-cell provenance sidecars.
            if len(message) > 3 and message[3]:
                self._prov_cells.extend(message[3].get("cells", []))
        except (EOFError, OSError):
            status, value = "crashed", None
        finally:
            task.conn.close()
        task.process.join()
        self._close_task_span(task, status)
        if status == "ok":
            encoded, instructions, seconds = value
            self._finish_cell(task.spec, encoded, instructions, seconds,
                              attempts=task.attempt + 1)
            return
        if status == "crashed":
            reason = (f"worker crashed "
                      f"(exit status {task.process.exitcode})")
            self.stats.crashed += 1
            self._crashed_counter.inc()
        else:
            reason = f"worker error: {value}"
            self.stats.transient_errors += 1
            self._transient_counter.inc()
        self._retry_or_fail(task, reason, queue, failures)

    def _retry_or_fail(self, task: _Task, reason: str,
                       queue: Deque[Tuple[CellSpec, int, float]],
                       failures: List[Tuple[CellSpec, str]]) -> None:
        if self._schedule_retry(task.spec, task.attempt, reason):
            queue.append((task.spec, task.attempt + 1,
                          time.monotonic() + self._backoff(task.attempt)))
        else:
            failures.append((task.spec, reason))

    def _schedule_retry(self, spec: CellSpec, attempt: int,
                        reason: str) -> bool:
        """Account for a failed attempt; True if the cell may retry.

        (The supervised path queues the retry itself; the inline path
        just loops.)  On exhaustion the cell is journaled as failed.
        """
        if attempt < self.max_retries:
            self.stats.retried += 1
            self._retried_counter.inc()
            if self.journal is not None:
                self.journal.record("retry", spec, artifact=self._artifact,
                                    attempt=attempt + 1, error=reason)
            spans_mod.instant("engine.retry", cell=spec.label,
                              attempt=attempt + 1, reason=reason)
            self.echo(f"[cell] {spec.label} {reason}; "
                      f"retry {attempt + 1}/{self.max_retries} "
                      f"in {self._backoff(attempt):.1f}s")
            return True
        self.stats.failed += 1
        self._failed_counter.inc()
        if self.journal is not None:
            self.journal.record("failed", spec, artifact=self._artifact,
                                attempts=attempt + 1, error=reason)
        self.echo(f"[cell] {spec.label} {reason}; retries exhausted "
                  f"({self.max_retries})")
        return False

    def _backoff(self, attempt: int) -> float:
        """Exponential: ``retry_backoff * 2**attempt`` seconds."""
        return self.retry_backoff * (2 ** attempt)

    def _kill(self, task: _Task) -> None:
        try:
            task.conn.close()
        except OSError:
            pass
        task.process.terminate()
        task.process.join(timeout=5.0)
        if task.process.is_alive():
            task.process.kill()
            task.process.join()

    def _finish_cell(self, spec: CellSpec, encoded: Dict[str, object],
                     instructions: int, seconds: float,
                     attempts: int = 1) -> None:
        result = decode_result(spec, encoded)
        self._memo[spec] = result
        self.stats.computed += 1
        self._computed_counter.inc()
        self._cell_seconds.observe(seconds)
        self.stats.simulated_instructions += instructions
        self._done += 1
        self.echo(f"[cell {self._done}/{self._total}] {spec.label} "
                  f"{seconds:.2f}s ({instructions:,} instr)")
        with spans_mod.maybe("engine.cache.write", cell=spec.label):
            self._cache_store(spec, encoded, instructions, seconds)
        if self.journal is not None:
            self.journal.record("done", spec, artifact=self._artifact,
                                attempts=attempts,
                                seconds=round(seconds, 4))

    # -- the on-disk cache ----------------------------------------------------

    def _cache_path(self, spec: CellSpec) -> Path:
        return self.cache_dir / spec.cache_filename()

    def _cache_load(self, spec: CellSpec):
        if not self.use_cache:
            return None
        path = self._cache_path(spec)
        try:
            text = path.read_text()
        except OSError:
            return None  # no entry: a plain miss
        try:
            record = json.loads(text)
            if record.get("schema") != CACHE_SCHEMA \
                    or record.get("version") != __version__:
                return None  # stale but well-formed: silently recompute
            if record.get("sha256") != result_digest(record["result"]):
                raise ValueError("content hash mismatch")
            return decode_result(spec, record["result"])
        except (ValueError, KeyError, TypeError) as error:
            self._quarantine(spec, path, error)
            return None

    def _quarantine(self, spec: CellSpec, path: Path,
                    error: Exception) -> None:
        """Move a corrupt cache entry aside (never delete: the bytes may
        matter for diagnosing how they rotted) and count the event."""
        self.stats.quarantined += 1
        self._quarantined_counter.inc()
        reason = f"{type(error).__name__}: {error}" if str(error) \
            else type(error).__name__
        if self.journal is not None:
            self.journal.record("quarantine", spec, artifact=self._artifact,
                                error=reason)
        spans_mod.instant("engine.cache.quarantine", cell=spec.label,
                          reason=reason)
        try:
            quarantine_dir = self.cache_dir / "quarantine"
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            path.replace(quarantine_dir / path.name)
            self.echo(f"[cache] quarantined corrupt entry for "
                      f"{spec.label} ({reason})")
        except OSError:
            self.echo(f"[cache] corrupt entry for {spec.label} ({reason}); "
                      f"quarantine failed, treating as a miss")

    def _cache_store(self, spec: CellSpec, encoded: Dict[str, object],
                     instructions: int, seconds: float) -> None:
        if not self.use_cache:
            return
        record = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "spec": spec.payload(),
            "sha256": result_digest(encoded),
            "result": encoded,
            "instructions": instructions,
            "seconds": round(seconds, 4),
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_path(spec)
            # Unique temp name (pid-suffixed) + atomic rename: concurrent
            # engines never interleave writes, and a crash mid-write
            # leaves only a stray .tmp, never a half-written entry.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(path)
        except OSError:
            return  # a read-only cache directory degrades to cache-less
        if self.fault_plan is not None \
                and self.fault_plan.cache_fault(spec.label):
            # Injected corruption: truncate the entry mid-record so the
            # next read exercises the quarantine path.
            try:
                text = path.read_text()
                path.write_text(text[:max(1, len(text) // 2)])
            except OSError:
                pass
