"""Figure 1: root cause of CVEs by patch year (2006-2018)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.cve import (
    CATEGORIES,
    YearBreakdown,
    all_years,
    average_memory_safety_share,
)
from ..analysis.report import render_table


@dataclass
class Figure1Result:
    years: List[YearBreakdown]
    average_memory_safety: float

    def format_text(self) -> str:
        rows = []
        for year in self.years:
            rows.append([year.year]
                        + [f"{year.shares[c]:.0f}%" for c in CATEGORIES]
                        + [f"{year.memory_safety_share:.0f}%"])
        table = render_table(
            ["year"] + list(CATEGORIES) + ["memory safety"], rows,
            title="Figure 1: Root cause of CVEs by patch year")
        return (f"{table}\n\nAverage memory-safety share: "
                f"{self.average_memory_safety:.0f}% "
                f"(paper: ~70%)")


def run() -> Figure1Result:
    return Figure1Result(
        years=all_years(),
        average_memory_safety=average_memory_safety_share(),
    )
