"""Ablation studies for the design choices DESIGN.md §5 calls out.

Not paper figures — these isolate what each CHEx86 mechanism contributes,
by re-running benchmarks with one mechanism degraded or disabled:

* **context sensitivity** — surgical (critical-region-only) checks vs.
  whole-program checks: injected-uop savings with unchanged tracking;
* **capability-cache size sweep** — 8 → 256 entries (around Figure 7's
  64/128 points);
* **alias victim cache** — 32-entry victim vs. none;
* **predictor size sweep** — 64 → 2048 entries (around Figure 8's points);
* **TLB alias-hosting bit** — walks filtered for non-hosting pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.report import render_table
from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..workloads import build

CAPCACHE_SWEEP = (8, 16, 32, 64, 128, 256)
PREDICTOR_SWEEP = (64, 128, 256, 512, 1024, 2048)


def _run(name: str, scale: int, config: CoreConfig,
         max_instructions: int, **kwargs) -> Chex86Machine:
    workload = build(name, scale)
    machine = Chex86Machine(assemble(workload.source, name=name),
                            variant=Variant.UCODE_PREDICTION, config=config,
                            halt_on_violation=False, **kwargs)
    machine.run(max_instructions=max_instructions)
    return machine


@dataclass
class AblationResult:
    context: Dict[str, Dict[str, float]]
    capcache_sweep: Dict[str, Dict[int, float]]
    victim: Dict[str, Dict[str, float]]
    predictor_sweep: Dict[str, Dict[int, float]]
    tlb_filter: Dict[str, int]

    def format_text(self) -> str:
        context_rows = [
            [bench,
             f"{cells['full_checks']:,.0f}",
             f"{cells['surgical_checks']:,.0f}",
             f"{cells['uops_saved']:,.0f}",
             f"{cells['allocs_tracked_equal']:.0f}"]
            for bench, cells in self.context.items()
        ]
        cap_rows = [
            [bench] + [f"{per[s]:.1%}" for s in CAPCACHE_SWEEP]
            for bench, per in self.capcache_sweep.items()
        ]
        victim_rows = [
            [bench, f"{cells['with']:.1%}", f"{cells['without']:.1%}"]
            for bench, cells in self.victim.items()
        ]
        pred_rows = [
            [bench] + [f"{per[s]:.1%}" for s in PREDICTOR_SWEEP]
            for bench, per in self.predictor_sweep.items()
        ]
        tlb_rows = [[bench, f"{count:,}"]
                    for bench, count in self.tlb_filter.items()]
        return "\n\n".join([
            render_table(["benchmark", "capChecks (full)",
                          "capChecks (surgical)", "uops saved",
                          "tracking unchanged"],
                         context_rows,
                         title="Ablation: context-sensitive enforcement"),
            render_table(["benchmark"] + [str(s) for s in CAPCACHE_SWEEP],
                         cap_rows,
                         title="Ablation: capability-cache size "
                               "(miss rate)"),
            render_table(["benchmark", "with victim", "without"],
                         victim_rows,
                         title="Ablation: 32-entry alias victim cache "
                               "(alias miss rate)"),
            render_table(["benchmark"] + [str(s) for s in PREDICTOR_SWEEP],
                         pred_rows,
                         title="Ablation: predictor size "
                               "(misprediction rate)"),
            render_table(["benchmark", "alias walks filtered"],
                         tlb_rows,
                         title="Ablation: TLB alias-hosting bit"),
        ])


def run(scale: int = 1,
        benchmarks: Sequence[str] = ("perlbench", "mcf", "xalancbmk"),
        config: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = 800_000) -> AblationResult:
    context: Dict[str, Dict[str, float]] = {}
    capcache: Dict[str, Dict[int, float]] = {}
    victim: Dict[str, Dict[str, float]] = {}
    predictor: Dict[str, Dict[int, float]] = {}
    tlb: Dict[str, int] = {}

    for name in benchmarks:
        full = _run(name, scale, config, max_instructions)
        surgical = _run(name, scale, config, max_instructions,
                        critical_ranges=[(0, 1)])
        context[name] = {
            "full_checks": full.mcu.stats.capchecks,
            "surgical_checks": surgical.mcu.stats.capchecks,
            "uops_saved": full.total_uops - surgical.total_uops,
            "allocs_tracked_equal": float(
                full.captable.stats.generated
                == surgical.captable.stats.generated),
        }

        capcache[name] = {}
        for size in CAPCACHE_SWEEP:
            machine = _run(name, scale,
                           config.with_(capcache_entries=size),
                           max_instructions)
            capcache[name][size] = machine.capcache.stats.miss_rate

        with_victim = full.alias_cache.stats.miss_rate
        no_victim = _run(name, scale,
                         config.with_(alias_victim_entries=0),
                         max_instructions).alias_cache.stats.miss_rate
        victim[name] = {"with": with_victim, "without": no_victim}

        predictor[name] = {}
        for size in PREDICTOR_SWEEP:
            machine = _run(name, scale,
                           config.with_(predictor_entries=size),
                           max_instructions)
            stats = machine.reload_predictor.stats
            predictor[name][size] = stats.misprediction_rate

        tlb[name] = full.tlb.stats.alias_walks_filtered

    return AblationResult(context=context, capcache_sweep=capcache,
                          victim=victim, predictor_sweep=predictor,
                          tlb_filter=tlb)
