"""Program representation: text section, data section, and symbol table.

A :class:`Program` is what the CHEx86 machine loads and runs.  It mirrors
the pieces of an ELF binary that matter to the paper:

* a text section of macro instructions at fixed 4-byte slots,
* a global data section whose objects appear in the symbol table (the paper
  initializes shadow capabilities for each global data object found there),
* label addresses, including the entry/exit addresses of the registered heap
  management routines that the OS configures into MSRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .instructions import INSTR_SLOT, Instr, Op
from .operands import Imm, LabelRef, Mem

#: Default section layout of the simulated address space.
TEXT_BASE = 0x0040_0000
DATA_BASE = 0x0060_0000
HEAP_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_FF00_0000


@dataclass(frozen=True)
class GlobalObject:
    """A global data object as it would appear in the symbol table.

    CHEx86 generates one shadow capability per global object at program
    load (Section IV-C, *Initial Configuration*).
    """

    name: str
    address: int
    size: int
    #: Initial 64-bit words to place at ``address`` (zero-filled if short).
    init_words: Sequence[int] = ()
    #: Whether the object is listed in the symbol table.  The paper notes
    #: that objects absent from the symbol table are simply not tracked.
    in_symbol_table: bool = True
    #: When set, this object is a constant-pool slot holding the address of
    #: the named global.  Real x86 binaries reach globals through PC-relative
    #: loads from such pools; the loader seeds the shadow alias table so the
    #: pointer tracker picks up the global's PID on the load (Section VII-B,
    #: "intentional constant dereferencing", the benign case).
    pool_for: Optional[str] = None

    @property
    def end(self) -> int:
        return self.address + self.size


class Program:
    """An assembled program: instructions plus data plus symbols."""

    def __init__(
        self,
        instrs: Sequence[Instr],
        globals_: Sequence[GlobalObject] = (),
        text_base: int = TEXT_BASE,
        entry_label: str = "main",
        name: str = "program",
    ) -> None:
        self.name = name
        self.text_base = text_base
        self.instrs: List[Instr] = list(instrs)
        self.globals: List[GlobalObject] = list(globals_)
        self.labels: Dict[str, int] = {}
        for index, instr in enumerate(self.instrs):
            if instr.label is not None:
                if instr.label in self.labels:
                    raise ValueError(f"duplicate label {instr.label!r}")
                self.labels[instr.label] = text_base + index * INSTR_SLOT
        for obj in self.globals:
            if obj.name in self.labels:
                raise ValueError(f"symbol {obj.name!r} defined as both label and global")
            self.labels[obj.name] = obj.address
        if entry_label not in self.labels:
            raise ValueError(f"program has no entry label {entry_label!r}")
        self.entry = self.labels[entry_label]
        self._resolved = self._resolve()

    # -- address arithmetic -------------------------------------------------

    def address_of(self, index: int) -> int:
        """Instruction address of the macro instruction at ``index``."""
        return self.text_base + index * INSTR_SLOT

    def index_of(self, address: int) -> int:
        """Inverse of :meth:`address_of`; raises for out-of-text addresses."""
        offset = address - self.text_base
        index, rem = divmod(offset, INSTR_SLOT)
        if rem or not 0 <= index < len(self.instrs):
            raise ValueError(f"address {address:#x} is not an instruction slot")
        return index

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.instrs) * INSTR_SLOT

    def fetch(self, address: int) -> Instr:
        """Return the (label-resolved) instruction at ``address``."""
        return self._resolved[self.index_of(address)]

    # -- symbol resolution ---------------------------------------------------

    def _resolve(self) -> List[Instr]:
        """Replace symbolic operands (labels, symbolic displacements) with
        concrete addresses."""
        resolved: List[Instr] = []
        for instr in self.instrs:
            if instr.op is Op.HOSTOP:
                resolved.append(instr)  # host routine names are not addresses
                continue
            needs_fixup = any(
                isinstance(op, LabelRef)
                or (isinstance(op, Mem) and op.disp_symbol is not None)
                for op in instr.operands
            )
            if needs_fixup:
                new_ops = tuple(self._resolve_operand(op) for op in instr.operands)
                resolved.append(
                    Instr(instr.op, new_ops, label=instr.label, comment=instr.comment)
                )
            else:
                resolved.append(instr)
        return resolved

    def _resolve_operand(self, operand):
        if isinstance(operand, LabelRef):
            return Imm(self._lookup(operand.name))
        if isinstance(operand, Mem) and operand.disp_symbol is not None:
            return Mem(
                base=operand.base, index=operand.index, scale=operand.scale,
                disp=operand.disp + self._lookup(operand.disp_symbol),
            )
        return operand

    def _lookup(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise ValueError(f"undefined symbol {name!r}") from None

    def symbol_table(self) -> List[GlobalObject]:
        """Global objects visible to the loader (symbol-table entries only)."""
        return [g for g in self.globals if g.in_symbol_table]

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Program {self.name!r}: {len(self.instrs)} instrs, "
            f"{len(self.globals)} globals, entry={self.entry:#x}>"
        )


def find_mem_refs(program: Program) -> List[int]:
    """Indices of instructions that reference memory (for instrumentation)."""
    return [
        i for i, instr in enumerate(program.instrs)
        if instr.mem_operand is not None or instr.op in (Op.PUSH, Op.POP)
    ]
