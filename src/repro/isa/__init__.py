"""Mini-x86 ISA substrate: registers, instructions, programs, assembler."""

from .assembler import AssemblyError, assemble
from .instructions import (
    BINARY_ALU,
    COND_BRANCHES,
    CONTROL_FLOW,
    INSTR_SLOT,
    UNARY_ALU,
    Instr,
    Op,
)
from .operands import Imm, LabelRef, Mem, Operand
from .program import (
    DATA_BASE,
    HEAP_BASE,
    STACK_TOP,
    TEXT_BASE,
    GlobalObject,
    Program,
    find_mem_refs,
)
from .registers import (
    ARG_REGS,
    MASK64,
    NUM_REGS,
    RET_REG,
    Flag,
    Reg,
    compute_flags,
    parse_reg,
    to_s64,
    to_u64,
)

__all__ = [
    "ARG_REGS",
    "AssemblyError",
    "BINARY_ALU",
    "COND_BRANCHES",
    "CONTROL_FLOW",
    "DATA_BASE",
    "Flag",
    "GlobalObject",
    "HEAP_BASE",
    "INSTR_SLOT",
    "Imm",
    "Instr",
    "LabelRef",
    "MASK64",
    "Mem",
    "NUM_REGS",
    "Op",
    "Operand",
    "Program",
    "RET_REG",
    "Reg",
    "STACK_TOP",
    "TEXT_BASE",
    "UNARY_ALU",
    "assemble",
    "compute_flags",
    "find_mem_refs",
    "parse_reg",
    "to_s64",
    "to_u64",
]
