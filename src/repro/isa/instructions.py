"""Macro (CISC) instruction set of the mini-x86 machine.

This is the subset of x86-64 that the CHEx86 evaluation workloads and
exploit suites need: data movement, address generation, the ALU operations
appearing in the paper's Table I rule database, compares and conditional
branches, calls/returns, and stack pushes/pops.

Each macro instruction later expands into one or more RISC-style micro-ops
at the decoder (``repro.microop.decoder``); instructions with a memory
operand in a register-memory addressing mode expand into load/op/store
micro-op sequences exactly as the paper describes for the binary-translation
and microcode instrumentation points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .operands import Imm, LabelRef, Mem, Operand
from .registers import Reg


class Op(enum.Enum):
    """Macro instruction mnemonics."""

    MOV = "mov"
    MOVABS = "movabs"  # mov reg, imm64 (constant-address idiom, Table I MOVI)
    LEA = "lea"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMUL = "imul"
    SHL = "shl"
    SHR = "shr"
    INC = "inc"
    DEC = "dec"
    NEG = "neg"
    NOT = "not"
    CMP = "cmp"
    TEST = "test"
    JMP = "jmp"
    JE = "je"
    JNE = "jne"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    JB = "jb"
    JAE = "jae"
    CALL = "call"
    RET = "ret"
    PUSH = "push"
    POP = "pop"
    NOP = "nop"
    HALT = "halt"
    #: Host escape: runs a named host routine (used to implement the guts of
    #: the heap-management library routines on the simulated heap).
    HOSTOP = "hostop"
    #: Secure ISA extension: explicit capability check of a memory operand
    #: (the binary-translation variant's "special instruction", §IV-C).
    #: Optional second Imm operand: 1 = the guarded access is a write.
    CAPCHK = "capchk"


#: Conditional branch mnemonics and the flag predicates they test.
COND_BRANCHES = {
    Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB, Op.JAE,
}

#: Mnemonics that write the flags register.
FLAG_WRITERS = {
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR,
    Op.INC, Op.DEC, Op.NEG, Op.CMP, Op.TEST,
}

#: Two-operand ALU mnemonics (dst <- dst op src).
BINARY_ALU = {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR}

#: One-operand ALU mnemonics.
UNARY_ALU = {Op.INC, Op.DEC, Op.NEG, Op.NOT}

#: All control-transfer mnemonics.
CONTROL_FLOW = COND_BRANCHES | {Op.JMP, Op.CALL, Op.RET}

#: Instruction slot size in bytes: every macro instruction occupies a fixed
#: 4-byte slot so instruction addresses are dense and predictable.  (Real x86
#: is variable length; the fixed slot simplifies BTB/predictor indexing
#: without changing any of the behaviours under study.)
INSTR_SLOT = 4


@dataclass(frozen=True, slots=True)
class Instr:
    """A single macro instruction.

    ``operands`` follow Intel order: destination first.  ``label`` is the
    optional symbolic name attached to this instruction's address.
    """

    op: Op
    operands: Tuple[Operand, ...] = ()
    label: Optional[str] = None
    #: Free-form annotation (used by tests/workloads to mark intent).
    comment: str = ""

    def __post_init__(self) -> None:
        _validate(self)

    @property
    def mem_operand(self) -> Optional[Mem]:
        """The memory operand, if this instruction has one."""
        for operand in self.operands:
            if isinstance(operand, Mem):
                return operand
        return None

    @property
    def is_control_flow(self) -> bool:
        return self.op in CONTROL_FLOW

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCHES

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        text = self.op.value
        if self.operands:
            text += " " + ", ".join(str(o) for o in self.operands)
        if self.label:
            text = f"{self.label}: {text}"
        return text


def _validate(instr: Instr) -> None:
    """Reject operand shapes the machine does not implement."""
    op, operands = instr.op, instr.operands
    arity = len(operands)
    if op in (Op.NOP, Op.HALT, Op.RET):
        if arity != 0:
            raise ValueError(f"{op.value} takes no operands")
    elif op in (Op.JMP, Op.CALL) or op in COND_BRANCHES:
        if arity != 1 or not isinstance(operands[0], (LabelRef, Imm, Reg)):
            raise ValueError(f"{op.value} takes one label/imm/reg target")
    elif op in (Op.PUSH, Op.POP):
        if arity != 1 or not isinstance(operands[0], Reg):
            raise ValueError(f"{op.value} takes one register operand")
    elif op in UNARY_ALU:
        if arity != 1 or not isinstance(operands[0], (Reg, Mem)):
            raise ValueError(f"{op.value} takes one reg/mem operand")
    elif op is Op.LEA:
        if arity != 2 or not isinstance(operands[0], Reg) or not isinstance(operands[1], Mem):
            raise ValueError("lea takes reg, mem")
    elif op is Op.MOVABS:
        if arity != 2 or not isinstance(operands[0], Reg) or not isinstance(operands[1], (Imm, LabelRef)):
            raise ValueError("movabs takes reg, imm")
    elif op is Op.HOSTOP:
        if arity != 1 or not isinstance(operands[0], LabelRef):
            raise ValueError("hostop takes one symbolic host-routine name")
    elif op is Op.CAPCHK:
        if arity not in (1, 2) or not isinstance(operands[0], Mem):
            raise ValueError("capchk takes a memory operand [, write flag]")
        if arity == 2 and not isinstance(operands[1], Imm):
            raise ValueError("capchk write flag must be an immediate")
    elif op in BINARY_ALU or op in (Op.MOV, Op.CMP, Op.TEST):
        if arity != 2:
            raise ValueError(f"{op.value} takes two operands")
        dst, src = operands
        if isinstance(dst, Mem) and isinstance(src, Mem):
            raise ValueError(f"{op.value}: mem-to-mem form does not exist on x86")
        if isinstance(dst, (Imm, LabelRef)) and op is not Op.CMP and op is not Op.TEST:
            raise ValueError(f"{op.value}: destination cannot be an immediate")
    else:  # pragma: no cover - all mnemonics handled above
        raise ValueError(f"unhandled mnemonic {op}")


# ---------------------------------------------------------------------------
# Convenience constructors (keep workload/exploit builders readable).
# ---------------------------------------------------------------------------

def mov(dst: Operand, src: Operand, **kw) -> Instr:
    return Instr(Op.MOV, (dst, src), **kw)


def movabs(dst: Reg, value: int, **kw) -> Instr:
    return Instr(Op.MOVABS, (dst, Imm(value)), **kw)


def lea(dst: Reg, mem: Mem, **kw) -> Instr:
    return Instr(Op.LEA, (dst, mem), **kw)


def add(dst: Operand, src: Operand, **kw) -> Instr:
    return Instr(Op.ADD, (dst, src), **kw)


def sub(dst: Operand, src: Operand, **kw) -> Instr:
    return Instr(Op.SUB, (dst, src), **kw)


def and_(dst: Operand, src: Operand, **kw) -> Instr:
    return Instr(Op.AND, (dst, src), **kw)


def cmp(a: Operand, b: Operand, **kw) -> Instr:
    return Instr(Op.CMP, (a, b), **kw)


def jmp(target: str, **kw) -> Instr:
    return Instr(Op.JMP, (LabelRef(target),), **kw)


def call(target: str, **kw) -> Instr:
    return Instr(Op.CALL, (LabelRef(target),), **kw)


def ret(**kw) -> Instr:
    return Instr(Op.RET, (), **kw)


def push(reg: Reg, **kw) -> Instr:
    return Instr(Op.PUSH, (reg,), **kw)


def pop(reg: Reg, **kw) -> Instr:
    return Instr(Op.POP, (reg,), **kw)


def halt(**kw) -> Instr:
    return Instr(Op.HALT, (), **kw)


def nop(**kw) -> Instr:
    return Instr(Op.NOP, (), **kw)
