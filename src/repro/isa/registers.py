"""Architectural register file of the mini-x86 machine.

CHEx86 operates on x86-64 binaries; this module defines the subset of the
x86-64 architectural state the simulator models: the sixteen 64-bit general
purpose registers, the instruction pointer, and the condition flags that the
conditional-branch instructions consume.

The speculative pointer tracker (``repro.core.tracker``) tags each of these
architectural registers with a PID, so the register identity used here is
shared across the whole code base.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """The sixteen x86-64 general purpose registers.

    The integer values are stable indices into register files and PID tag
    arrays; do not reorder.
    """

    RAX = 0
    RBX = 1
    RCX = 2
    RDX = 3
    RSI = 4
    RDI = 5
    RBP = 6
    RSP = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%" + self.name.lower()


#: Number of general purpose registers (size of PID tag arrays and the like).
NUM_REGS = len(Reg)

#: x86-64 System V calling convention: integer argument registers in order.
ARG_REGS = (Reg.RDI, Reg.RSI, Reg.RDX, Reg.RCX, Reg.R8, Reg.R9)

#: x86-64 System V calling convention: return value register.
RET_REG = Reg.RAX

_BY_NAME = {r.name.lower(): r for r in Reg}


def parse_reg(name: str) -> Reg:
    """Parse a register name such as ``rax`` or ``%rax`` into a :class:`Reg`.

    Raises :class:`ValueError` for unknown names.
    """
    text = name.strip().lstrip("%").lower()
    try:
        return _BY_NAME[text]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


class Flag(enum.IntFlag):
    """Condition flags produced by arithmetic/compare instructions."""

    ZF = 1  # zero
    SF = 2  # sign
    CF = 4  # carry (unsigned below)
    OF = 8  # overflow


MASK64 = (1 << 64) - 1


def to_u64(value: int) -> int:
    """Truncate a Python integer to an unsigned 64-bit value."""
    return value & MASK64


def to_s64(value: int) -> int:
    """Interpret a 64-bit pattern as a signed integer."""
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


# All 16 flag combinations, precomputed: the enum |/& operators run
# through ``EnumMeta.__call__`` on every use, which is measurable when
# flags are derived once per ALU micro-op.
_FLAG_VALUES = tuple(Flag(bits) for bits in range(16))


def compute_flags(result: int, carry: bool = False, overflow: bool = False) -> Flag:
    """Derive the flag set for a 64-bit ``result`` of an ALU operation."""
    result &= MASK64
    bits = 0
    if result == 0:
        bits = 1  # Flag.ZF
    elif result >> 63:
        bits = 2  # Flag.SF
    if carry:
        bits |= 4  # Flag.CF
    if overflow:
        bits |= 8  # Flag.OF
    return _FLAG_VALUES[bits]
