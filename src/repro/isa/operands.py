"""Operand kinds for the mini-x86 macro instruction set.

x86 instructions address their operands in one of three ways relevant to
CHEx86: a register, an immediate, or a memory effective address of the form
``base + index*scale + disp``.  The decoder (``repro.microop.decoder``)
dispatches on these operand kinds to select the micro-op expansion, and the
pointer-tracking rule database (Table I of the paper) keys its rules on the
addressing mode implied by them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .registers import Reg


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"${self.value:#x}" if abs(self.value) > 9 else f"${self.value}"


@dataclass(frozen=True, slots=True)
class Mem:
    """A memory operand: effective address ``base + index*scale + disp``.

    ``base`` may be ``None`` for absolute addressing (``disp`` only), the
    form the paper calls *intentional constant dereferencing*.
    """

    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale: int = 1
    disp: int = 0
    #: Symbolic displacement (a label/global name), added to ``disp`` when
    #: the program is assembled — models RIP-relative data addressing.
    disp_symbol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}; must be 1/2/4/8")

    @property
    def is_absolute(self) -> bool:
        """True when the address is a bare constant (no base, no index)."""
        return self.base is None and self.index is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.base is not None:
            parts.append(str(self.base))
        if self.index is not None:
            parts.append(f"{self.index}*{self.scale}")
        inner = " + ".join(parts)
        if self.disp or not inner:
            sign = "+" if self.disp >= 0 else "-"
            inner = f"{inner} {sign} {abs(self.disp):#x}" if inner else f"{self.disp:#x}"
        return f"[{inner}]"


@dataclass(frozen=True)
class LabelRef:
    """A symbolic reference resolved to an address at assembly time."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Any operand a macro instruction can carry.
Operand = Union[Reg, Imm, Mem, LabelRef]
