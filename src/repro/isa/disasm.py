"""Disassembly and program listing utilities.

Round-trips programs back into the assembler's text dialect — useful for
inspecting generated workloads/exploits, debugging the instrumentation
passes, and producing annotated listings with per-instruction micro-op
expansions.
"""

from __future__ import annotations

from typing import List

from ..microop.decoder import Decoder
from .instructions import Instr
from .operands import Imm, LabelRef, Mem
from .program import Program
from .registers import Reg


def format_operand(operand, labels_by_address=None) -> str:
    """Render one operand in the assembler's input dialect."""
    if isinstance(operand, Reg):
        return operand.name.lower()
    if isinstance(operand, Imm):
        if labels_by_address and operand.value in labels_by_address:
            return labels_by_address[operand.value]
        if abs(operand.value) >= 4096:
            return hex(operand.value)
        return str(operand.value)
    if isinstance(operand, LabelRef):
        return operand.name
    if isinstance(operand, Mem):
        parts: List[str] = []
        if operand.base is not None:
            parts.append(operand.base.name.lower())
        if operand.index is not None:
            parts.append(f"{operand.index.name.lower()}*{operand.scale}")
        if operand.disp_symbol is not None:
            parts.append(operand.disp_symbol)
        inner = " + ".join(parts)
        if operand.disp or not inner:
            if inner:
                sign = "+" if operand.disp >= 0 else "-"
                inner = f"{inner} {sign} {abs(operand.disp)}"
            else:
                inner = hex(operand.disp)
        return f"[{inner}]"
    raise TypeError(f"cannot format operand {operand!r}")


def format_instr(instr: Instr, labels_by_address=None) -> str:
    """Render one instruction (without its label) in input dialect."""
    if not instr.operands:
        return instr.op.value
    rendered = ", ".join(format_operand(op, labels_by_address)
                         for op in instr.operands)
    return f"{instr.op.value} {rendered}"


def disassemble(program: Program, resolve_labels: bool = True,
                with_uops: bool = False) -> str:
    """A listing of ``program``: addresses, labels, instructions.

    ``resolve_labels`` renders jump/call targets symbolically again;
    ``with_uops`` appends each instruction's micro-op expansion as a
    comment (what the 1:1 / 1:4 / MSROM decoders would emit).
    """
    labels_by_address = {addr: name for name, addr in program.labels.items()}
    decoder = Decoder() if with_uops else None
    lines: List[str] = []
    for obj in program.globals:
        if obj.pool_for is not None:
            continue  # pool slots are loader-generated, not source
        directive = ".global" if obj.in_symbol_table else ".hidden"
        init = "".join(f", {v}" for v in obj.init_words)
        lines.append(f"{directive} {obj.name}, {obj.size}{init}")
    for index in range(len(program)):
        address = program.address_of(index)
        instr = program.fetch(address)
        label = labels_by_address.get(address)
        if label is not None and program.labels.get(label) == address \
                and program.instrs[index].label == label:
            lines.append(f"{label}:")
        text = format_instr(
            instr, labels_by_address if resolve_labels else None)
        line = f"    {address:#x}:  {text}"
        if decoder is not None:
            uops, path = decoder.decode(instr, address, index,
                                        id(program))
            expansion = " | ".join(str(u) for u in uops)
            line += f"    ; [{path.value}] {expansion}"
        lines.append(line)
    return "\n".join(lines)


def reassemblable_source(program: Program) -> str:
    """Source text that re-assembles to an equivalent program.

    Labels are re-derived from instruction metadata; resolved numeric
    targets are re-symbolized where a label exists at that address.
    """
    labels_by_address = {addr: name for name, addr in program.labels.items()}
    lines: List[str] = []
    for obj in program.globals:
        if obj.pool_for is not None:
            continue
        directive = ".global" if obj.in_symbol_table else ".hidden"
        init = "".join(f", {v}" for v in obj.init_words)
        lines.append(f"{directive} {obj.name}, {obj.size}{init}")
    for index, instr in enumerate(program.instrs):
        if instr.label is not None:
            lines.append(f"{instr.label}:")
        resolved = program.fetch(program.address_of(index))
        lines.append("    " + format_instr(resolved, labels_by_address))
    return "\n".join(lines) + "\n"
