"""Two-pass text assembler for the mini-x86 instruction set.

The assembler exists so that examples, exploit suites, and tests can express
programs in a familiar Intel-syntax dialect rather than building
:class:`~repro.isa.instructions.Instr` tuples by hand::

    main:
        mov rdi, 64
        call malloc
        mov rbx, rax
        mov [rbx + 8], 42
        halt

Directives:

``.global name, size [, word0, word1, ...]``
    Declares a global data object (symbol-table entry) of ``size`` bytes in
    the data section, optionally initialized with 64-bit words.

``.hidden name, size``
    Declares a global object *not* listed in the symbol table — the paper's
    untracked-global case.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instructions import Instr, Op
from .operands import Imm, LabelRef, Mem, Operand
from .program import DATA_BASE, GlobalObject, Program
from .registers import Reg, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(r"^\[(.*)\]$")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

_MNEMONICS = {op.value: op for op in Op}


class AssemblyError(ValueError):
    """Raised for malformed assembly text, with the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def assemble(
    text: str,
    name: str = "program",
    entry_label: str = "main",
    data_base: int = DATA_BASE,
) -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    instrs: List[Instr] = []
    globals_: List[GlobalObject] = []
    pending_label: Optional[str] = None
    data_cursor = data_base

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            if pending_label is not None:
                raise AssemblyError(lineno, "two consecutive labels; add a nop")
            pending_label = label_match.group(1)
            continue

        if line.startswith("."):
            data_cursor = _parse_directive(line, lineno, globals_, data_cursor)
            continue

        instr = _parse_instr(line, lineno, pending_label)
        pending_label = None
        instrs.append(instr)

    if pending_label is not None:
        raise AssemblyError(0, f"trailing label {pending_label!r} with no instruction")

    return Program(instrs, globals_, entry_label=entry_label, name=name)


def _parse_directive(
    line: str, lineno: int, globals_: List[GlobalObject], cursor: int
) -> int:
    """Parse a ``.global``/``.hidden`` directive; returns the new data cursor."""
    head, _, rest = line.partition(" ")
    fields = [f.strip() for f in rest.split(",") if f.strip()]
    if head not in (".global", ".hidden"):
        raise AssemblyError(lineno, f"unknown directive {head!r}")
    if len(fields) < 2:
        raise AssemblyError(lineno, f"{head} needs: name, size[, init words...]")
    obj_name = fields[0]
    if not _NAME_RE.match(obj_name):
        raise AssemblyError(lineno, f"bad symbol name {obj_name!r}")
    try:
        size = _parse_int(fields[1])
        init = tuple(_parse_int(f) for f in fields[2:])
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from None
    if size <= 0:
        raise AssemblyError(lineno, "global size must be positive")
    globals_.append(
        GlobalObject(
            name=obj_name,
            address=cursor,
            size=size,
            init_words=init,
            in_symbol_table=(head == ".global"),
        )
    )
    # Keep objects 16-byte aligned and non-adjacent enough to be distinct.
    cursor += ((size + 15) // 16) * 16
    if head == ".global":
        # Constant-pool slot holding the object's address: programs reach
        # the global with `mov reg, [name.addr]` (the PC-relative-load idiom
        # real compilers emit), which lets the pointer tracker pick up the
        # global's PID through the alias machinery instead of flagging a
        # wild constant dereference.
        globals_.append(
            GlobalObject(
                name=obj_name + ".addr",
                address=cursor,
                size=16,
                init_words=(globals_[-1].address,),
                in_symbol_table=False,
                pool_for=obj_name,
            )
        )
        cursor += 16
    return cursor


def _parse_instr(line: str, lineno: int, label: Optional[str]) -> Instr:
    mnemonic, _, rest = line.partition(" ")
    op = _MNEMONICS.get(mnemonic.lower())
    if op is None:
        raise AssemblyError(lineno, f"unknown mnemonic {mnemonic!r}")
    operands = tuple(
        _parse_operand(tok.strip(), lineno, op)
        for tok in _split_operands(rest)
    )
    try:
        return Instr(op, operands, label=label)
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from None


def _split_operands(rest: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets."""
    out: List[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            out.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        out.append(current)
    return [tok for tok in (t.strip() for t in out) if tok]


def _parse_operand(token: str, lineno: int, op: Op) -> Operand:
    mem_match = _MEM_RE.match(token)
    if mem_match:
        return _parse_mem(mem_match.group(1), lineno)
    try:
        return parse_reg(token)
    except ValueError:
        pass
    try:
        return Imm(_parse_int(token))
    except ValueError:
        pass
    if _NAME_RE.match(token):
        return LabelRef(token)
    raise AssemblyError(lineno, f"cannot parse operand {token!r}")


def _parse_mem(inner: str, lineno: int) -> Mem:
    """Parse the inside of ``[...]``: ``base + index*scale + disp`` pieces."""
    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale = 1
    disp = 0
    disp_symbol: Optional[str] = None
    for sign, term in _terms(inner):
        term = term.strip()
        if not term:
            raise AssemblyError(lineno, f"empty term in memory operand [{inner}]")
        if "*" in term:
            reg_part, _, scale_part = term.partition("*")
            try:
                idx_reg = parse_reg(reg_part)
                scale_val = _parse_int(scale_part)
            except ValueError as exc:
                raise AssemblyError(lineno, f"bad scaled-index term {term!r}: {exc}")
            if index is not None:
                raise AssemblyError(lineno, "two index terms in memory operand")
            if sign < 0:
                raise AssemblyError(lineno, "negative scaled index is not encodable")
            index, scale = idx_reg, scale_val
            continue
        try:
            reg = parse_reg(term)
        except ValueError:
            reg = None
        if reg is not None:
            if sign < 0:
                raise AssemblyError(lineno, "negative base register is not encodable")
            if base is None:
                base = reg
            elif index is None:
                index = reg
            else:
                raise AssemblyError(lineno, "too many registers in memory operand")
            continue
        try:
            disp += sign * _parse_int(term)
            continue
        except ValueError:
            pass
        if _NAME_RE.match(term) and sign > 0:
            if disp_symbol is not None:
                raise AssemblyError(lineno, "two symbols in one memory operand")
            disp_symbol = term
            continue
        raise AssemblyError(lineno, f"cannot parse memory term {term!r}")
    try:
        return Mem(base=base, index=index, scale=scale, disp=disp,
                   disp_symbol=disp_symbol)
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from None


def _terms(inner: str) -> List[Tuple[int, str]]:
    """Split ``a + b - c`` into signed terms."""
    out: List[Tuple[int, str]] = []
    sign = 1
    current = ""
    for char in inner:
        if char == "+":
            if current.strip():
                out.append((sign, current))
            sign, current = 1, ""
        elif char == "-":
            if current.strip():
                out.append((sign, current))
            sign, current = -1, ""
        else:
            current += char
    if current.strip():
        out.append((sign, current))
    return out


def _parse_int(token: str) -> int:
    token = token.strip()
    if token.startswith("$"):
        token = token[1:]
    return int(token, 0)
