"""Analysis: CVE dataset, pattern classifier, allocation profiler, tables."""

from .allocprofile import (
    PROFILE_INTERVAL,
    AllocationProfile,
    orders_of_magnitude_gaps,
    profile_workload,
)
from .comparison import (
    PAPER_CHEX86,
    PRIOR_WORK,
    TechniqueRow,
    full_table,
    measured_chex86_row,
    qualitative_claims,
)
from .cve import (
    CATEGORIES,
    CVE_ROOT_CAUSES,
    MEMORY_SAFETY_CATEGORIES,
    YearBreakdown,
    all_years,
    average_memory_safety_share,
    breakdown,
)
from .patterns import (
    TABLE2_EXAMPLES,
    Pattern,
    PatternProfile,
    classify,
    profile_patterns,
)
from .diagnostics import explain_violation
from .report import render_bars, render_grouped_bars, render_table
from .simpoint import (
    SimPointSelection,
    SimulationPoint,
    profile_bbvs,
    select,
    select_for,
)

__all__ = [
    "AllocationProfile",
    "CATEGORIES",
    "CVE_ROOT_CAUSES",
    "MEMORY_SAFETY_CATEGORIES",
    "PAPER_CHEX86",
    "PRIOR_WORK",
    "PROFILE_INTERVAL",
    "Pattern",
    "PatternProfile",
    "TABLE2_EXAMPLES",
    "TechniqueRow",
    "YearBreakdown",
    "all_years",
    "average_memory_safety_share",
    "breakdown",
    "classify",
    "explain_violation",
    "full_table",
    "measured_chex86_row",
    "orders_of_magnitude_gaps",
    "profile_patterns",
    "profile_workload",
    "qualitative_claims",
    "render_bars",
    "render_grouped_bars",
    "render_table",
    "SimPointSelection",
    "SimulationPoint",
    "profile_bbvs",
    "select",
    "select_for",
]
