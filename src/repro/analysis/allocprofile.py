"""Benchmark memory-allocation profiling (paper Figure 3).

Figure 3 profiles each benchmark on three log-scale metrics:

1. total allocations over the run,
2. maximum number of *live* allocations at any time,
3. average allocations actually *in use* in any given execution interval
   (100M dynamic instructions in the paper; scaled here with the
   simulator's interval length).

The paper's observation — each metric sits orders of magnitude below the
previous one — motivates the 64-entry capability cache.  The profiler
reproduces the same three metrics from a run of our simulator (the paper
used valgrind for this step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..pipeline.config import CoreConfig, DEFAULT_CONFIG
from ..pipeline.multicore import MulticoreMachine
from ..workloads.base import Workload

#: Profiling interval in dynamic instructions (the paper uses 100M on
#: full-length benchmarks; the synthetic workloads are ~10^4-10^5
#: instructions, so the interval scales down proportionally — it must stay
#: a small fraction of the run for the in-use metric to be meaningful).
PROFILE_INTERVAL = 400


@dataclass
class AllocationProfile:
    """One benchmark's Figure 3 row."""

    benchmark: str
    total_allocations: int
    max_live: int
    avg_in_use_per_interval: float
    intervals: int

    def as_row(self) -> Dict[str, float]:
        return {
            "benchmark": self.benchmark,
            "total": self.total_allocations,
            "max_live": self.max_live,
            "in_use": round(self.avg_in_use_per_interval, 1),
        }


def profile_workload(workload: Workload,
                     config: CoreConfig = DEFAULT_CONFIG,
                     max_instructions: int = 600_000,
                     interval: int = PROFILE_INTERVAL) -> AllocationProfile:
    """Run ``workload`` under the prediction variant and profile it."""
    if workload.threads > 1:
        runner = MulticoreMachine(workload, variant=Variant.UCODE_PREDICTION,
                                  config=config, halt_on_violation=False)
        for core in runner.cores:
            core.profile_interval = interval
        result = runner.run(max_instructions_per_core=max_instructions)
        allocator = runner.system.allocator
        counts: List[int] = []
        for core in runner.cores:
            core.flush_profiling_intervals()  # trailing partial interval
            counts.extend(core.interval_pid_counts)
    else:
        program = assemble(workload.source, name=workload.name)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                config=config, halt_on_violation=False,
                                profile_interval=interval)
        machine.run(max_instructions=max_instructions)
        machine.flush_profiling_intervals()  # trailing partial interval
        allocator = machine.allocator
        counts = list(machine.interval_pid_counts)
    avg_in_use = sum(counts) / len(counts) if counts else 0.0
    return AllocationProfile(
        benchmark=workload.name,
        total_allocations=allocator.stats.total_allocs,
        max_live=allocator.stats.max_live,
        avg_in_use_per_interval=avg_in_use,
        intervals=len(counts),
    )


def orders_of_magnitude_gaps(profile: AllocationProfile) -> Dict[str, float]:
    """The Figure 3 headline: total >> max-live >> in-use."""
    def ratio(a: float, b: float) -> float:
        return a / b if b else float("inf")

    return {
        "total_over_live": ratio(profile.total_allocations, profile.max_live),
        "live_over_in_use": ratio(profile.max_live,
                                  profile.avg_in_use_per_interval),
    }
