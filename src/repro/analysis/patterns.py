"""Temporal pointer access pattern classification (paper Table II).

Table II names eight temporal patterns in the sequence of PIDs a given
load instruction reloads:

=================  ======  ===========================
Pattern            Stride  Example PID sequence
=================  ======  ===========================
Constant           0       31 31 31 31 31 31 31
Stride             3       13 16 19 22 25 28 31
Batch + Stride     4       11 11 11 15 15 15 15
Batch + No Stride  n/a     22 22 22 13 99 99 99
Repeat + Stride    1       26 27 28 26 27 28 26
Repeat + No Stride n/a     26 57 5 26 57 5 26
Random + Stride    n/a     26 23 29 27 24 30 28
Random + No Stride n/a     26 23 29 31 29 34 40
=================  ======  ===========================

:func:`classify` reproduces that taxonomy for one PID sequence;
:func:`profile_patterns` classifies every reload PC of a traced run,
which is how the paper's observation ("perlbench exhibits the highest
number of Batch + Stride patterns") is regenerated.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Pattern(enum.Enum):
    CONSTANT = "Constant"
    STRIDE = "Stride"
    BATCH_STRIDE = "Batch + Stride"
    BATCH_NO_STRIDE = "Batch + No Stride"
    REPEAT_STRIDE = "Repeat + Stride"
    REPEAT_NO_STRIDE = "Repeat + No Stride"
    RANDOM_STRIDE = "Random + Stride"
    RANDOM_NO_STRIDE = "Random + No Stride"


#: Table II's own example sequences, used as classifier ground truth.
TABLE2_EXAMPLES: Dict[Pattern, Tuple[int, ...]] = {
    Pattern.CONSTANT: (31, 31, 31, 31, 31, 31, 31),
    Pattern.STRIDE: (13, 16, 19, 22, 25, 28, 31),
    Pattern.BATCH_STRIDE: (11, 11, 11, 15, 15, 15, 15),
    Pattern.BATCH_NO_STRIDE: (22, 22, 22, 13, 99, 99, 99),
    Pattern.REPEAT_STRIDE: (26, 27, 28, 26, 27, 28, 26),
    Pattern.REPEAT_NO_STRIDE: (26, 57, 5, 26, 57, 5, 26),
    Pattern.RANDOM_STRIDE: (26, 23, 29, 27, 24, 30, 28),
    Pattern.RANDOM_NO_STRIDE: (26, 23, 29, 31, 29, 34, 40),
}


def _dedupe_runs(seq: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Collapse consecutive repeats; returns (values, run lengths)."""
    values: List[int] = []
    runs: List[int] = []
    for pid in seq:
        if values and values[-1] == pid:
            runs[-1] += 1
        else:
            values.append(pid)
            runs.append(1)
    return values, runs


def _constant_stride(values: Sequence[int]) -> Optional[int]:
    """The common difference if ``values`` is an arithmetic sequence."""
    if len(values) < 2:
        return 0
    stride = values[1] - values[0]
    for a, b in zip(values, values[1:]):
        if b - a != stride:
            return None
    return stride


def _repeat_period(values: Sequence[int]) -> Optional[int]:
    """Smallest period p >= 2 such that values[i] == values[i % p]."""
    n = len(values)
    for period in range(2, n // 2 + 1):
        if len(set(values[:period])) < period:
            continue  # a period with duplicates is not a clean cycle
        if all(values[i] == values[i % period] for i in range(n)):
            return period
    return None


def _near_stride(values: Sequence[int]) -> bool:
    """Random + Stride: random order inside a *striding window* of PIDs.

    Table II's example (26 23 29 27 24 30 28) visits the consecutive PID
    window 23..30 in scrambled order — the window itself advances with the
    allocation stride.  The discriminator is density: the distinct values
    nearly fill their span.  The No-Stride example (26 23 29 31 29 34 40)
    scatters over a span far wider than its count.
    """
    if len(values) < 4:
        return False
    distinct = set(values)
    span = max(distinct) - min(distinct) + 1
    return len(distinct) / span >= 0.75


def classify(seq: Sequence[int]) -> Pattern:
    """Classify one PID reload sequence into a Table II pattern."""
    seq = list(seq)
    if len(set(seq)) <= 1:
        return Pattern.CONSTANT
    values, runs = _dedupe_runs(seq)
    batched = max(runs) > 1

    stride = _constant_stride(values)
    if stride is not None:
        if batched:
            return Pattern.BATCH_STRIDE
        return Pattern.STRIDE

    period = _repeat_period(values)
    if period is not None:
        cycle = values[:period]
        cycle_stride = _constant_stride(cycle)
        if cycle_stride is not None and cycle_stride != 0:
            # An arithmetic cycle visited in batches is the paper's
            # Listing-1 shape (chase buf11, buf15, buf19, repeat): each
            # batch dereferences one buffer several times while the window
            # strides — "Batch + Stride".  Without batching it is the
            # Listing-2 "Repeat + Stride" shape.
            return Pattern.BATCH_STRIDE if batched else Pattern.REPEAT_STRIDE
        return Pattern.REPEAT_NO_STRIDE

    if batched:
        return Pattern.BATCH_NO_STRIDE
    if _near_stride(values):
        return Pattern.RANDOM_STRIDE
    return Pattern.RANDOM_NO_STRIDE


@dataclass
class PatternProfile:
    """Per-PC pattern classification of a reload trace."""

    per_pc: Dict[int, Pattern]
    histogram: Counter

    @property
    def dominant(self) -> Optional[Pattern]:
        if not self.histogram:
            return None
        return self.histogram.most_common(1)[0][0]


def profile_patterns(trace: Iterable[Tuple[int, int]],
                     min_events: int = 6) -> PatternProfile:
    """Classify the PID sequence observed at each reload PC.

    ``trace`` is the machine's ``reload_trace``: (pc, pid) events in
    program order.  PCs with fewer than ``min_events`` reloads are skipped
    (too short to name a pattern).
    """
    by_pc: Dict[int, List[int]] = defaultdict(list)
    for pc, pid in trace:
        by_pc[pc].append(pid)
    per_pc = {
        pc: classify(pids)
        for pc, pids in by_pc.items()
        if len(pids) >= min_events
    }
    return PatternProfile(per_pc=per_pc, histogram=Counter(per_pc.values()))
