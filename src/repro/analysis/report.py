"""Plain-text table and bar-chart rendering for experiment reports.

Every ``repro.eval`` driver formats its results with these helpers so the
benchmark harness can print the same rows/series the paper's tables and
figures report, without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Mapping[str, float], width: int = 40,
                title: str = "", unit: str = "",
                max_value: Optional[float] = None) -> str:
    """Horizontal ASCII bar chart (one bar per key)."""
    if not values:
        return title
    peak = max_value if max_value is not None else max(values.values())
    peak = peak or 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        filled = int(round(width * min(value, peak) / peak))
        bar = "#" * filled
        lines.append(f"{key.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{_fmt(value)}{unit}")
    return "\n".join(lines)


def render_grouped_bars(groups: Mapping[str, Mapping[str, float]],
                        width: int = 30, title: str = "",
                        unit: str = "") -> str:
    """Grouped bars: one block per outer key, one bar per inner key."""
    lines = [title] if title else []
    peak = max((v for g in groups.values() for v in g.values()), default=1.0)
    peak = peak or 1.0
    for group, values in groups.items():
        lines.append(f"{group}:")
        label_width = max(len(k) for k in values) if values else 0
        for key, value in values.items():
            filled = int(round(width * min(value, peak) / peak))
            lines.append(f"  {key.ljust(label_width)} "
                         f"|{('#' * filled).ljust(width)}| "
                         f"{_fmt(value)}{unit}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
