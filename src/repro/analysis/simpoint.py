"""SimPoint-style representative-region selection (paper Methodology).

The paper simulates representative regions chosen with PinPlay + SimPoint
rather than whole benchmarks.  This module reproduces that workflow on our
substrate:

1. profile a run into per-interval **basic-block vectors** (instruction
   execution frequency per static instruction, the BBV of Sherwood et al.),
2. random-project the sparse vectors to a low dimension,
3. cluster with k-means (numpy),
4. pick, per cluster, the interval closest to the centroid as the
   *simulation point*, weighted by its cluster's population.

A weighted metric over the simulation points then estimates the full-run
metric — :func:`estimate` — which is exactly how SimPoint numbers are
consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.machine import Chex86Machine
from ..core.variants import Variant
from ..isa.assembler import assemble
from ..workloads.base import Workload

#: Dimensionality after random projection (SimPoint uses 15).
PROJECTED_DIMS = 15


@dataclass(frozen=True)
class SimulationPoint:
    """One representative interval and its weight."""

    interval: int   # index into the interval sequence
    weight: float   # fraction of intervals its cluster covers

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight {self.weight} outside (0, 1]")


@dataclass
class SimPointSelection:
    """The chosen simulation points for one profiled run."""

    points: List[SimulationPoint]
    intervals: int
    interval_length: int
    cluster_of: List[int]  # cluster id per interval

    @property
    def coverage(self) -> float:
        return sum(p.weight for p in self.points)

    def estimate(self, per_interval_metric: Sequence[float]) -> float:
        """Weighted estimate of a full-run metric from the points alone.

        ``per_interval_metric`` must cover the profiled run exactly — one
        entry per interval.  A shorter sequence would otherwise raise a
        bare ``IndexError`` (or worse, a longer one would silently weight
        the wrong intervals), so the length is validated up front.
        """
        if len(per_interval_metric) != self.intervals:
            raise ValueError(
                f"per-interval metric has {len(per_interval_metric)} "
                f"entries but the profile has {self.intervals} intervals")
        return sum(point.weight * per_interval_metric[point.interval]
                   for point in self.points)


def _to_matrix(vectors: Sequence[Dict[int, int]],
               seed: int = 7) -> np.ndarray:
    """Normalize sparse BBVs and random-project them to PROJECTED_DIMS."""
    dims = max((max(v) for v in vectors if v), default=0) + 1
    dense = np.zeros((len(vectors), dims))
    for row, vector in enumerate(vectors):
        for index, count in vector.items():
            dense[row, index] = count
    norms = dense.sum(axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    dense /= norms
    rng = np.random.default_rng(seed)
    projection = rng.uniform(-1.0, 1.0, size=(dims, PROJECTED_DIMS))
    return dense @ projection


def _kmeans_pp_init(matrix: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids distance-proportionally."""
    n = matrix.shape[0]
    centroids = [matrix[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            [np.sum((matrix - c) ** 2, axis=1) for c in centroids], axis=0)
        total = distances.sum()
        if total == 0:
            centroids.append(matrix[rng.integers(n)])
            continue
        centroids.append(matrix[rng.choice(n, p=distances / total)])
    return np.array(centroids)


def _kmeans(matrix: np.ndarray, k: int, seed: int = 7,
            iterations: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ init; returns (assignments, centroids).

    An emptied cluster is reseeded on the point farthest from its current
    centroid, so well-separated phases cannot collapse into one cluster.
    """
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    k = min(k, n)
    centroids = _kmeans_pp_init(matrix, k, rng)
    assignments = np.full(n, -1, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(
            matrix[:, None, :] - centroids[None, :, :], axis=2)
        new_assignments = distances.argmin(axis=1)
        if (new_assignments == assignments).all():
            break
        assignments = new_assignments
        for cluster in range(k):
            members = matrix[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                # Reseed on the point farthest from its *current* centroid.
                # ``distances`` above is stale here: earlier clusters in
                # this same sweep already moved their centroids, so the
                # pre-update matrix can nominate a point that is now well
                # covered.  Recompute, and break ties on the lowest index
                # so the reseed is deterministic.
                current = np.linalg.norm(
                    matrix[:, None, :] - centroids[None, :, :], axis=2)
                d = current.min(axis=1)
                farthest = int(np.flatnonzero(d == d.max())[0])
                centroids[cluster] = matrix[farthest]
    return assignments, centroids


def select(vectors: Sequence[Dict[int, int]], max_k: int = 8,
           interval_length: int = 0, seed: int = 7) -> SimPointSelection:
    """Choose simulation points from per-interval BBVs."""
    if not vectors:
        raise ValueError("no interval vectors to select from")
    matrix = _to_matrix(vectors, seed)
    assignments, centroids = _kmeans(matrix, max_k, seed)
    points: List[SimulationPoint] = []
    n = len(vectors)
    for cluster in sorted(set(assignments.tolist())):
        member_indices = np.flatnonzero(assignments == cluster)
        distances = np.linalg.norm(
            matrix[member_indices] - centroids[cluster], axis=1)
        representative = int(member_indices[distances.argmin()])
        points.append(SimulationPoint(
            interval=representative,
            weight=len(member_indices) / n,
        ))
    return SimPointSelection(
        points=sorted(points, key=lambda p: p.interval),
        intervals=n,
        interval_length=interval_length,
        cluster_of=assignments.tolist(),
    )


def profile_bbvs(workload: Workload, interval: int = 1_000,
                 variant: Variant = Variant.UCODE_PREDICTION,
                 max_instructions: int = 600_000
                 ) -> Tuple[List[Dict[int, int]], Chex86Machine]:
    """Run ``workload`` collecting per-interval BBVs (single-threaded)."""
    program = assemble(workload.source, name=workload.name)
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=False)
    machine.bbv_interval = interval
    machine.run(max_instructions=max_instructions)
    machine.flush_profiling_intervals()  # trailing partial interval
    return list(machine.bbv_vectors), machine


def select_for(workload: Workload, interval: int = 1_000, max_k: int = 8,
               max_instructions: int = 600_000) -> SimPointSelection:
    """Profile + select in one call (the PinPlay→SimPoint pipeline)."""
    vectors, _ = profile_bbvs(workload, interval,
                              max_instructions=max_instructions)
    return select(vectors, max_k=max_k, interval_length=interval)
