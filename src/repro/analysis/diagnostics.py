"""Violation diagnostics: human-readable reports for flagged violations.

Turns a :class:`~repro.core.violations.Violation` plus the machine that
raised it into the kind of report a deployed CHEx86 would hand an
operator: the faulting instruction with a disassembly window around it,
the capability involved (base/bounds/permission state and how far outside
the access fell), the allocation history of the address, and — for
temporal violations — where the block was freed.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.capability import WILD_PID
from ..core.machine import Chex86Machine
from ..core.violations import Violation, ViolationKind
from ..isa.disasm import format_instr
from ..isa.instructions import INSTR_SLOT
from ..telemetry.provenance import symbolize, violation_json

#: Instructions of context shown on each side of the faulting pc.
WINDOW = 3


def _disasm_window(machine: Chex86Machine, pc: int) -> List[str]:
    """Disassembly context around ``pc``.

    Forensic reports must render for *any* pc a violation can carry —
    the first or last instruction of the text segment, a wild pc far
    outside it, or a misaligned address mid-slot — so every failure
    mode degrades to an explanatory line instead of an exception.
    """
    program = machine.program
    pc_text = f"{pc:#x}" if isinstance(pc, int) else repr(pc)
    if len(program) == 0:
        return [f"  {pc_text}:  <empty text section>"]
    labels_by_address = {addr: name for name, addr in program.labels.items()}
    misaligned = False
    try:
        index = program.index_of(pc)
    except (TypeError, ValueError):
        index = None
    if index is None:
        text_base = getattr(program, "text_base", None)
        text_end = getattr(program, "text_end", None)
        if (isinstance(pc, int) and text_base is not None
                and text_end is not None and text_base <= pc < text_end):
            # Mid-slot pc (e.g. a wild dereference landing inside the
            # text segment): snap to the enclosing instruction slot.
            index = (pc - text_base) // INSTR_SLOT
            misaligned = True
        else:
            return [f"  {pc_text}:  <outside text section>"]
    index = max(0, min(index, len(program) - 1))
    lines = []
    if misaligned:
        lines.append(f"  {pc:#x}:  <misaligned pc; showing enclosing slot>")
    for i in range(max(0, index - WINDOW),
                   min(len(program), index + WINDOW + 1)):
        try:
            address = program.address_of(i)
            label = labels_by_address.get(address)
            if label is not None and program.instrs[i].label == label:
                lines.append(f"{label}:")
            marker = "=>" if i == index else "  "
            instr = program.fetch(address)
            lines.append(f"{marker} {address:#x}:  "
                         f"{format_instr(instr, labels_by_address)}")
        except Exception:  # never let forensics die on one bad slot
            lines.append(f"   <slot {i}: undecodable>")
    return lines


def _capability_report(machine: Chex86Machine,
                       violation: Violation) -> List[str]:
    if violation.pid == WILD_PID:
        return ["capability: PID(-1) — a constant integer address that "
                "never came from a registered allocation (MOVI rule)"]
    if violation.pid == 0:
        return ["capability: none — the pointer was never tracked"]
    capability = machine.captable.get(violation.pid)
    if capability is None:
        return [f"capability: PID {violation.pid} not present in the "
                f"shadow table"]
    lines = [
        f"capability: PID {capability.pid}, "
        f"[{capability.base:#x}, {capability.end:#x}) "
        f"({capability.bounds} bytes), "
        f"{'valid' if capability.valid else 'FREED/invalid'}"
        f"{', busy' if capability.busy else ''}",
    ]
    if violation.kind is ViolationKind.OUT_OF_BOUNDS and violation.address:
        if violation.address >= capability.end:
            distance = violation.address - capability.end
            lines.append(f"access: {violation.address:#x} — "
                         f"{distance + violation.size} byte(s) past the end")
        else:
            distance = capability.base - violation.address
            lines.append(f"access: {violation.address:#x} — "
                         f"{distance} byte(s) below the base")
    return lines


def _allocation_history(machine: Chex86Machine,
                        violation: Violation) -> List[str]:
    address = violation.address
    if not address:
        return []
    record = machine.allocator.record_for(address)
    if record is None and violation.pid > 0:
        # An out-of-bounds address is not inside any allocation; report
        # the allocation the violated capability governs instead.
        capability = machine.captable.get(violation.pid)
        if capability is not None and capability.base:
            record = machine.allocator.record_for(capability.base)
    if record is None:
        return [f"allocator: no allocation ever covered {address:#x}"]
    state = "freed" if record.freed else "live"
    return [
        f"allocator: allocation #{record.serial} "
        f"[{record.address:#x}, {record.address + record.size:#x}) "
        f"({record.size} bytes), currently {state}",
    ]


def _context_line(program, entry: dict) -> str:
    frames = entry.get("frames")
    if not frames:
        frames = [symbolize(program, pc) for pc in entry.get("context", [])]
    return " > ".join(frames) if frames else "<top level>"


def _provenance_chain(machine: Chex86Machine,
                      violation: Violation) -> List[str]:
    """Render the alloc → free → access provenance chain attached by an
    armed run (empty when the run was not recorded)."""
    chain = violation.provenance
    if not chain:
        return []
    program = machine.program
    lines = ["provenance:"]
    alloc = chain.get("alloc")
    if alloc is not None:
        lines.append(f"  allocated {alloc['size']} byte(s) at "
                     f"pc {alloc['pc']:#x} "
                     f"({symbolize(program, alloc['pc'])}), "
                     f"cycle {alloc['cycle']}")
        lines.append(f"    by: {_context_line(program, alloc)}")
    free = chain.get("free")
    if free is not None:
        lines.append(f"  freed at pc {free['pc']:#x} "
                     f"({symbolize(program, free['pc'])}), "
                     f"cycle {free['cycle']}")
        lines.append(f"    by: {_context_line(program, free)}")
    access = chain.get("access")
    if access is not None:
        lines.append(f"  faulting access at pc {access['pc']:#x} "
                     f"({symbolize(program, access['pc'])})")
        lines.append(f"    by: {_context_line(program, access)}")
    return lines


def _hint(violation: Violation) -> str:
    return {
        ViolationKind.OUT_OF_BOUNDS:
            "hint: check the loop bound / index computation feeding this "
            "dereference",
        ViolationKind.USE_AFTER_FREE:
            "hint: a stale copy of this pointer survived the free — the "
            "capability stays invalid forever, so any reuse distance is "
            "caught",
        ViolationKind.DOUBLE_FREE:
            "hint: this pointer's capability was already freed; look for "
            "two ownership paths releasing the same allocation",
        ViolationKind.INVALID_FREE:
            "hint: the freed pointer is not the base of any live "
            "allocation (interior pointer, stack/global address, or a "
            "forged chunk)",
        ViolationKind.WILD_DEREFERENCE:
            "hint: a constant integer address was dereferenced; if this "
            "is an intentional global access, reach it through a constant "
            "pool so the tracker can follow it",
        ViolationKind.HEAP_SPRAY:
            "hint: allocation request exceeds the configured maximum "
            "block size (heap-spray / resource-exhaustion guard)",
        ViolationKind.PERMISSION:
            "hint: the access needs a permission the capability does not "
            "grant",
    }.get(violation.kind, "")


def explain_violation(machine: Chex86Machine,
                      violation: Optional[Violation] = None) -> str:
    """Full diagnostic report for ``violation`` (default: the first one)."""
    if violation is None:
        if not machine.violations.violations:
            return "no violations recorded"
        violation = machine.violations.violations[0]
    sections: List[str] = [
        f"{'=' * 60}",
        f"CHEx86 {violation.kind.value.upper()} ({violation.kind.cwe}) "
        f"at pc {violation.instr_address:#x}",
        f"{'=' * 60}",
        violation.detail or "",
        "",
    ]
    sections.extend(_disasm_window(machine, violation.instr_address))
    sections.append("")
    sections.extend(_capability_report(machine, violation))
    sections.extend(_allocation_history(machine, violation))
    chain = _provenance_chain(machine, violation)
    if chain:
        sections.append("")
        sections.extend(chain)
    hint = _hint(violation)
    if hint:
        sections.append("")
        sections.append(hint)
    return "\n".join(line for line in sections if line is not None)


def violation_report_json(machine: Chex86Machine,
                          violation: Violation) -> dict:
    """Structured (JSON-safe) forensic report for one violation: the
    fields of the violation itself plus its provenance chain, the hint,
    and the disassembly window as rendered lines."""
    report = violation_json(violation)
    report["hint"] = _hint(violation)
    report["disassembly"] = _disasm_window(machine, violation.instr_address)
    return report


def explain_all_violations_json(machine: Chex86Machine) -> List[dict]:
    """Structured reports for every recorded violation, in flag order."""
    return [violation_report_json(machine, violation)
            for violation in machine.violations.violations]


def explain_all_violations(machine: Chex86Machine) -> str:
    """One report per recorded violation, in flag order.

    A run with ``halt_on_violation=False`` can accumulate many distinct
    violations; reporting only the first hides the rest of the story
    (e.g. an out-of-bounds write followed by the use-after-free it set
    up).  Each report is the full :func:`explain_violation` rendering.
    """
    violations = machine.violations.violations
    if not violations:
        return "no violations recorded"
    count = len(violations)
    sections = [f"{count} violation(s) recorded"]
    for index, violation in enumerate(violations, start=1):
        sections.append("")
        sections.append(f"--- violation {index} of {count} ---")
        sections.append(explain_violation(machine, violation))
    return "\n".join(sections)
