"""Comparison with prior memory-safety techniques (paper Table IV).

The static rows (prior work) are transcribed from the paper; the CHEx86
row can either use the paper's published numbers or be *measured live* on
this reproduction (``measured_chex86_row``), which is the honest way to
regenerate the table on a different substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TechniqueRow:
    """One row of Table IV."""

    proposal: str
    temporal_safety: bool
    spatial_safety: bool
    metadata: str                  # "Shadow" or "Inline"
    binary_compat: str             # "yes" / "partial" / "no"
    perf_average: str
    perf_benchmark: str
    storage_average: str
    storage_benchmark: str
    hardware: str


#: Prior-work rows, as published (Table IV).
PRIOR_WORK: List[TechniqueRow] = [
    TechniqueRow("Hardbound", False, True, "Shadow", "partial",
                 "5% (Olden)", "55% (Olden)", "-", "-",
                 "Tag metadata cache + TLB, uop injection logic"),
    TechniqueRow("Watchdog", True, True, "Shadow", "partial",
                 "24% (SPEC2000)", "56% (SPEC2000)", "-", "-",
                 "Renaming logic, uop injection logic, lock location cache"),
    TechniqueRow("Intel MPX", False, True, "Inline", "no",
                 "80% (SPEC2006)", "150% (SPEC2006)", "-", "-", "N/A"),
    TechniqueRow("BOGO", True, True, "Inline", "no",
                 "60% (SPEC2006)", "36% (SPEC2006)", "-", "-", "N/A"),
    TechniqueRow("CHERI", False, True, "Inline", "no",
                 "18% (Olden)", "90% (Olden)", "-", "-",
                 "Capability coprocessor, tag cache, capability unit"),
    TechniqueRow("CHERIvoke", True, False, "Inline", "no",
                 "4.7% (SPEC2006)", "12.5% (SPEC2006)", "-", "-",
                 "Capability co-processor, tag cache/controller, cap unit"),
    TechniqueRow("REST", True, True, "Shadow", "no",
                 "23% (SPEC2006)", "N/A", "-", "-",
                 "1-8b per L1D line, 1 comparator"),
    TechniqueRow("Califorms", True, True, "Shadow", "no",
                 "16% (SPEC2006)", "N/A", "-", "-",
                 "8b per L1D line, 1b per L2/L3 line"),
]

#: The paper's own CHEx86 row.
PAPER_CHEX86 = TechniqueRow(
    "CHEx86", True, True, "Shadow", "yes",
    "14% (SPEC2017)", "38% (SPEC2017)", "-", "-",
    "uop injection logic, capability$ + alias$, speculative pointer tracker")


def measured_chex86_row(average_slowdown_pct: float,
                        worst_slowdown_pct: float,
                        suite: str = "synthetic SPEC2017") -> TechniqueRow:
    """A CHEx86 row built from this reproduction's measured numbers."""
    return TechniqueRow(
        "CHEx86 (this repro)", True, True, "Shadow", "yes",
        f"{average_slowdown_pct:.0f}% ({suite})",
        f"{worst_slowdown_pct:.0f}% ({suite})",
        "-", "-",
        "uop injection logic, capability$ + alias$, "
        "speculative pointer tracker")


def full_table(measured: Optional[TechniqueRow] = None) -> List[TechniqueRow]:
    rows = list(PRIOR_WORK)
    rows.append(PAPER_CHEX86)
    if measured is not None:
        rows.append(measured)
    return rows


def qualitative_claims() -> Dict[str, bool]:
    """The comparisons the table is cited for, as checkable booleans."""
    both_safety = [r for r in PRIOR_WORK if r.temporal_safety
                   and r.spatial_safety]
    return {
        "only_full-safety_binary-compatible_row_is_chex86": all(
            r.binary_compat != "yes" for r in both_safety),
        "chex86_offers_temporal_and_spatial": (
            PAPER_CHEX86.temporal_safety and PAPER_CHEX86.spatial_safety),
        "chex86_uses_shadow_metadata": PAPER_CHEX86.metadata == "Shadow",
    }
