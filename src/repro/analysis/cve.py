"""CVE root-cause dataset (paper Figure 1).

Figure 1 re-creates the Microsoft/Google studies on the root causes of
CVEs patched per year since 2006, showing memory safety violations
consistently around 70% of the total.  The numbers below reproduce the
figure's stacked categories (percent of CVEs per patch year); they are a
digitization of the chart's shape, normalized to 100% per year.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Categories in the figure's legend, in stacking order.
CATEGORIES = (
    "Stack Corruption",
    "Heap Corruption",
    "Use After Free",
    "Heap OOB Read",
    "Uninitialized Use",
    "Type Confusion",
    "Other",
)

#: Memory-safety categories (the ~70% headline).
MEMORY_SAFETY_CATEGORIES = (
    "Stack Corruption",
    "Heap Corruption",
    "Use After Free",
    "Heap OOB Read",
    "Uninitialized Use",
)

#: Percent of CVEs per patch year, per category (rows sum to 100).
CVE_ROOT_CAUSES: Dict[int, Tuple[float, ...]] = {
    2006: (28.0, 26.0, 5.0, 6.0, 3.0, 2.0, 30.0),
    2007: (26.0, 28.0, 7.0, 6.0, 3.0, 2.0, 28.0),
    2008: (23.0, 29.0, 9.0, 7.0, 3.0, 2.0, 27.0),
    2009: (20.0, 30.0, 12.0, 7.0, 4.0, 3.0, 24.0),
    2010: (17.0, 30.0, 16.0, 8.0, 4.0, 3.0, 22.0),
    2011: (14.0, 29.0, 20.0, 8.0, 5.0, 3.0, 21.0),
    2012: (12.0, 28.0, 24.0, 9.0, 5.0, 4.0, 18.0),
    2013: (10.0, 27.0, 26.0, 9.0, 5.0, 4.0, 19.0),
    2014: (9.0, 26.0, 26.0, 10.0, 6.0, 5.0, 18.0),
    2015: (8.0, 25.0, 25.0, 11.0, 7.0, 6.0, 18.0),
    2016: (7.0, 24.0, 24.0, 12.0, 8.0, 7.0, 18.0),
    2017: (6.0, 25.0, 22.0, 13.0, 9.0, 7.0, 18.0),
    2018: (5.0, 26.0, 20.0, 14.0, 9.0, 8.0, 18.0),
}


@dataclass(frozen=True)
class YearBreakdown:
    year: int
    shares: Dict[str, float]

    @property
    def memory_safety_share(self) -> float:
        return sum(self.shares[c] for c in MEMORY_SAFETY_CATEGORIES)


def breakdown(year: int) -> YearBreakdown:
    return YearBreakdown(year, dict(zip(CATEGORIES, CVE_ROOT_CAUSES[year])))


def all_years() -> List[YearBreakdown]:
    return [breakdown(year) for year in sorted(CVE_ROOT_CAUSES)]


def average_memory_safety_share() -> float:
    """The headline statistic: ~70% of CVEs are memory safety issues."""
    years = all_years()
    return sum(y.memory_safety_share for y in years) / len(years)
