"""Perf-regression tracking over the committed benchmark records.

The repo commits its benchmark results — ``BENCH_hotloop.json`` (hot-loop
throughput + telemetry-overhead pass), ``BENCH_simpoint.json`` (sampled-
simulation accuracy/speedup), ``BENCH_hotloop_metrics.json`` — and keeps
a pinned baseline (``benchmarks/bench_hotloop_baseline.json``).  This
module turns those files into a single trend table with a per-row
verdict, so drift is visible *before* the CI perf-smoke gate trips:

* hot-loop rows compare current ``simulated_mips`` (aggregate and per
  workload) against the baseline under the same relative-regression
  threshold the CI gate uses (default 30%, higher-is-better);
* the telemetry-overhead and SimPoint-speedup rows are informational
  (no baseline contract);
* the SimPoint ``worst_error`` row is gated absolutely (default 10%,
  matching ``bench_simpoint.py --max-error``).

``repro bench history`` renders the table; ``repro bench history
--check`` exits non-zero on any ``regression`` verdict, which is what
the CI perf-smoke job wires in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Default relative simulated-MIPS regression tolerated before the
#: verdict flips (mirrors ``bench_hotloop.py --max-regression``).
DEFAULT_MAX_REGRESSION = 0.30

#: Default absolute SimPoint headline-error ceiling (mirrors
#: ``bench_simpoint.py --max-error``).
DEFAULT_MAX_ERROR = 0.10

#: Committed benchmark records the trend table knows how to read,
#: relative to the repo/record directory.
HOTLOOP_RECORD = "BENCH_hotloop.json"
SIMPOINT_RECORD = "BENCH_simpoint.json"
HOTLOOP_BASELINE = "benchmarks/bench_hotloop_baseline.json"


@dataclass
class BenchRow:
    """One tracked benchmark quantity with its verdict."""

    source: str                     # which BENCH file the value came from
    metric: str
    value: float
    baseline: Optional[float] = None
    delta: Optional[float] = None   # relative change vs baseline
    verdict: str = "info"           # ok | regression | improved | info
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


@dataclass
class BenchReport:
    """The full trend table plus the thresholds it was judged under."""

    rows: List[BenchRow] = field(default_factory=list)
    max_regression: float = DEFAULT_MAX_REGRESSION
    max_error: float = DEFAULT_MAX_ERROR
    missing: List[str] = field(default_factory=list)

    def regressions(self) -> List[BenchRow]:
        return [row for row in self.rows if row.verdict == "regression"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_regression": self.max_regression,
            "max_error": self.max_error,
            "missing": list(self.missing),
            "rows": [row.to_dict() for row in self.rows],
            "regressions": len(self.regressions()),
        }

    def format_text(self) -> str:
        lines = ["benchmark history "
                 f"(gates: -{self.max_regression:.0%} simulated MIPS, "
                 f"{self.max_error:.0%} simpoint error)"]
        header = (f"  {'source':<10} {'metric':<38} {'value':>12} "
                  f"{'baseline':>12} {'delta':>8}  verdict")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in self.rows:
            baseline = "-" if row.baseline is None else f"{row.baseline:g}"
            delta = "-" if row.delta is None else f"{row.delta:+.1%}"
            note = f"  ({row.note})" if row.note else ""
            lines.append(f"  {row.source:<10} {row.metric:<38} "
                         f"{row.value:>12g} {baseline:>12} {delta:>8}"
                         f"  {row.verdict}{note}")
        for name in self.missing:
            lines.append(f"  (no {name} record committed)")
        bad = self.regressions()
        lines.append(f"  verdict: "
                     + (f"{len(bad)} regression(s)" if bad else "ok"))
        return "\n".join(lines)


def _load(path: Path) -> Optional[Dict[str, object]]:
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _mips_row(source: str, metric: str, value: float,
              baseline: Optional[float], max_regression: float) -> BenchRow:
    """Higher-is-better row under the relative regression gate."""
    row = BenchRow(source=source, metric=metric, value=value,
                   baseline=baseline)
    if baseline is None or baseline <= 0:
        row.verdict = "info"
        return row
    row.delta = (value - baseline) / baseline
    if row.delta < -max_regression:
        row.verdict = "regression"
        row.note = f"below -{max_regression:.0%} gate"
    elif row.delta > max_regression:
        row.verdict = "improved"
        row.note = "consider re-baselining"
    else:
        row.verdict = "ok"
    return row


def collect(record_dir: Union[str, Path] = ".",
            baseline_path: Optional[Union[str, Path]] = None,
            max_regression: float = DEFAULT_MAX_REGRESSION,
            max_error: float = DEFAULT_MAX_ERROR) -> BenchReport:
    """Parse the committed ``BENCH_*.json`` records under ``record_dir``
    (plus the pinned hot-loop baseline) into a judged trend table."""
    record_dir = Path(record_dir)
    if baseline_path is None:
        baseline_path = record_dir / HOTLOOP_BASELINE
    report = BenchReport(max_regression=max_regression,
                         max_error=max_error)

    baseline = _load(Path(baseline_path)) or {}
    base_by_workload = {entry.get("workload"): entry
                        for entry in baseline.get("workloads", [])
                        if isinstance(entry, dict)}

    hotloop = _load(record_dir / HOTLOOP_RECORD)
    if hotloop is None:
        report.missing.append(HOTLOOP_RECORD)
    else:
        report.rows.append(_mips_row(
            "hotloop", "aggregate_simulated_mips",
            float(hotloop.get("aggregate_simulated_mips", 0.0)),
            baseline.get("aggregate_simulated_mips"), max_regression))
        for entry in hotloop.get("workloads", []):
            if not isinstance(entry, dict):
                continue
            name = entry.get("workload", "?")
            base = base_by_workload.get(name, {})
            report.rows.append(_mips_row(
                "hotloop", f"{name}.simulated_mips",
                float(entry.get("simulated_mips", 0.0)),
                base.get("simulated_mips"), max_regression))
        telemetry = hotloop.get("telemetry")
        if isinstance(telemetry, dict) \
                and "overhead_fraction" in telemetry:
            report.rows.append(BenchRow(
                source="hotloop", metric="telemetry.overhead_fraction",
                value=float(telemetry["overhead_fraction"]),
                verdict="info", note="enabled-path cost, not gated"))

    simpoint = _load(record_dir / SIMPOINT_RECORD)
    if simpoint is None:
        report.missing.append(SIMPOINT_RECORD)
    else:
        sampled = simpoint.get("simpoint", {})
        worst = float(sampled.get("worst_error", 0.0))
        row = BenchRow(source="simpoint", metric="worst_error", value=worst,
                       baseline=max_error)
        if worst > max_error:
            row.verdict = "regression"
            row.note = f"above {max_error:.0%} accuracy gate"
        else:
            row.verdict = "ok"
        report.rows.append(row)
        if "detailed_sim_speedup" in sampled:
            report.rows.append(BenchRow(
                source="simpoint", metric="detailed_sim_speedup",
                value=float(sampled["detailed_sim_speedup"]),
                verdict="info", note="replay vs full detailed sim"))
        if "coverage" in sampled:
            report.rows.append(BenchRow(
                source="simpoint", metric="coverage",
                value=float(sampled["coverage"]), verdict="info"))

    return report
