"""Branch prediction: an LTAGE-style predictor, BTB, and return address stack.

Table III specifies an LTAGE predictor with a 4096-entry BTB and a 64-entry
RAS.  The implementation here is a compact TAGE: a bimodal base table plus
tagged components with geometric history lengths and the standard
provider/alternate selection and allocation-on-mispredict policy — enough
fidelity that squash behaviour (Figure 8 bottom) tracks branch-pattern
difficulty the way a real front end's would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..memory.cache import SetAssocCache

#: Geometric history lengths of the tagged components.
_HISTORIES = (4, 8, 16, 32)
_TAG_BITS = 9
_TABLE_BITS = 10  # 1024 entries per tagged component
# Hoisted masks: ``_index_tag`` runs several times per resolved branch.
_HISTORY_MASKS = tuple((1 << h) - 1 for h in _HISTORIES)
_TABLE_MASK = (1 << _TABLE_BITS) - 1
_TAG_MASK = (1 << _TAG_BITS) - 1


@dataclass
class BranchStats:
    cond_predictions: int = 0
    cond_mispredictions: int = 0
    indirect_predictions: int = 0
    indirect_mispredictions: int = 0
    ras_overflows: int = 0

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_predictions:
            return 1.0
        return 1.0 - self.cond_mispredictions / self.cond_predictions


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = -1
        self.ctr = 0      # signed: >=0 taken
        self.useful = 0


class LTagePredictor:
    """TAGE-style conditional branch predictor."""

    def __init__(self) -> None:
        self._bimodal = [0] * 4096  # 2-bit signed counters, >=0 taken
        self._tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(1 << _TABLE_BITS)]
            for _ in _HISTORIES
        ]
        self._history = 0
        # Folded-history cache, one (index, tag) fold per component;
        # refreshed whenever ``_history`` changes.
        self._folded_idx = [0] * len(_HISTORIES)
        self._folded_tag = [0] * len(_HISTORIES)
        self.stats = BranchStats()

    def _refold(self) -> None:
        """Recompute the folded-history cache after ``_history`` changed."""
        history = self._history
        folded_idx = self._folded_idx
        folded_tag = self._folded_tag
        for level, mask in enumerate(_HISTORY_MASKS):
            masked = history & mask
            folded_idx[level] = _fold(masked, _TABLE_BITS)
            folded_tag[level] = _fold(masked, _TAG_BITS)

    # -- prediction -------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        provider, _ = self._find_provider(pc)
        if provider is not None:
            _, entry = provider
            return entry.ctr >= 0
        return self._bimodal[self._bimodal_index(pc)] >= 0

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the outcome; returns whether the prediction was correct."""
        # One provider search serves both the prediction and the training
        # (``predict`` is read-only, so searching twice is pure overhead).
        provider, provider_level = self._find_provider(pc)
        if provider is not None:
            prediction = provider[1].ctr >= 0
        else:
            prediction = self._bimodal[self._bimodal_index(pc)] >= 0
        correct = prediction == taken
        self.stats.cond_predictions += 1
        if not correct:
            self.stats.cond_mispredictions += 1
        if provider is not None:
            _, entry = provider
            entry.ctr = _nudge(entry.ctr, taken, limit=3)
            if correct:
                entry.useful = min(entry.useful + 1, 3)
        else:
            index = self._bimodal_index(pc)
            self._bimodal[index] = _nudge(self._bimodal[index], taken, limit=1)
        if not correct:
            self._allocate(pc, taken, provider_level)
        self._history = ((self._history << 1) | int(taken)) & ((1 << 64) - 1)
        self._refold()
        return correct

    # -- internals -----------------------------------------------------------------

    def _find_provider(self, pc: int) -> Tuple[Optional[Tuple[int, _TaggedEntry]], int]:
        """Longest-history tagged component hitting on ``pc``.

        Uses the per-level folded-history cache (maintained by
        :meth:`update` when the history shifts) instead of re-folding the
        history for every level probed.
        """
        folded_idx = self._folded_idx
        folded_tag = self._folded_tag
        pc2 = pc >> 2
        tag_base = pc2 ^ (pc >> 12)
        tables = self._tables
        for level in range(len(_HISTORIES) - 1, -1, -1):
            index = (pc2 ^ folded_idx[level]) & _TABLE_MASK
            entry = tables[level][index]
            if entry.tag == (tag_base ^ folded_tag[level]) & _TAG_MASK:
                return (index, entry), level
        return None, -1

    def _allocate(self, pc: int, taken: bool, provider_level: int) -> None:
        """On mispredict, claim an entry in a longer-history component."""
        for level in range(provider_level + 1, len(_HISTORIES)):
            index, tag = self._index_tag(pc, level)
            entry = self._tables[level][index]
            if entry.useful == 0:
                entry.tag = tag
                entry.ctr = 0 if taken else -1
                entry.useful = 0
                return
            entry.useful -= 1

    def _index_tag(self, pc: int, level: int) -> Tuple[int, int]:
        history = self._history & _HISTORY_MASKS[level]
        folded = _fold(history, _TABLE_BITS)
        index = ((pc >> 2) ^ folded) & _TABLE_MASK
        tag = ((pc >> 2) ^ _fold(history, _TAG_BITS) ^ (pc >> 12)) & _TAG_MASK
        return index, tag

    @staticmethod
    def _bimodal_index(pc: int) -> int:
        return (pc >> 2) % 4096


def _fold(value: int, bits: int) -> int:
    folded = 0
    while value:
        folded ^= value & ((1 << bits) - 1)
        value >>= bits
    return folded


def _nudge(counter: int, taken: bool, limit: int) -> int:
    if taken:
        return min(counter + 1, limit)
    return max(counter - 1, -limit - 1)


class ReturnAddressStack:
    """The 64-entry RAS; overflow wraps (oldest entry lost)."""

    def __init__(self, entries: int = 64) -> None:
        self.entries = entries
        self._stack: List[int] = []
        self.overflows = 0

    def push(self, address: int) -> None:
        if len(self._stack) >= self.entries:
            del self._stack[0]
            self.overflows += 1
        self._stack.append(address)

    def pop(self) -> int:
        """Predicted return target; 0 when empty (forced mispredict)."""
        if not self._stack:
            return 0
        return self._stack.pop()


class FrontEndPredictors:
    """Bundle: conditional predictor + BTB + RAS, as the fetch stage sees it."""

    def __init__(self, btb_entries: int = 4096, ras_entries: int = 64) -> None:
        self.cond = LTagePredictor()
        self.btb = SetAssocCache(btb_entries, 4, line_shift=0, name="btb")
        self.ras = ReturnAddressStack(ras_entries)
        self.stats = self.cond.stats

    def predict_conditional(self, pc: int) -> bool:
        return self.cond.predict(pc)

    def resolve_conditional(self, pc: int, taken: bool) -> bool:
        """Returns correct?"""
        return self.cond.update(pc, taken)

    def on_call(self, return_address: int) -> None:
        self.ras.push(return_address)

    def resolve_indirect(self, pc: int, actual_target: int,
                         is_return: bool) -> bool:
        """Predict an indirect jump target; returns correct?"""
        self.stats.indirect_predictions += 1
        if is_return:
            predicted = self.ras.pop()
        else:
            cached = self.btb.lookup(pc)
            predicted = cached if cached is not None else 0
        self.btb.access(pc, actual_target)
        self.btb.update(pc, actual_target)
        if predicted != actual_target:
            self.stats.indirect_mispredictions += 1
            return False
        return True
