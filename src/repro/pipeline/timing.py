"""Out-of-order timing model (scoreboard style).

This is the substitute for the paper's gem5 Skylake model: a
dependency-driven scheduling model that charges every micro-op its fetch
group, decode depth, ROB occupancy, issue-width and functional-unit
contention, cache-hierarchy latency, and branch/alias misprediction
penalties.  It is not cycle-by-cycle RTL; it reproduces the *relative*
costs the paper's evaluation depends on — micro-op expansion, shadow-table
traffic, squash time — which is what Figures 6-9 compare.

The model is driven by the machine in program order; wrong-path work is
accounted as squash penalty cycles rather than simulated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..memory.cache import SetAssocCache
from ..microop.uops import NUM_UREGS
from .config import CoreConfig

#: Pseudo-register index used for the flags dependency.
_FLAGS = NUM_UREGS


class FuType:
    """Functional unit classes (Table III)."""

    ALU = "alu"
    MULT = "mult"
    LOAD = "load"
    STORE = "store"
    CMU = "cmu"  # capability management units (Figure 2)
    WALKER = "walker"  # alias-table hardware walker (Section V-C)


@dataclass
class TimingStats:
    """Cycle/traffic accounting for one core."""

    cycles: int = 0
    uops: int = 0
    macro_ops: int = 0
    squash_cycles: int = 0
    branch_squash_cycles: int = 0
    alias_squash_cycles: int = 0
    hostop_cycles: int = 0
    fetch_groups: int = 0
    icache_misses: int = 0
    loads: int = 0
    stores: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    dram_bytes: int = 0
    shadow_dram_bytes: int = 0
    rob_stall_events: int = 0

    @property
    def total_dram_bytes(self) -> int:
        return self.dram_bytes + self.shadow_dram_bytes

    @property
    def squash_fraction(self) -> float:
        return self.squash_cycles / self.cycles if self.cycles else 0.0

    def ipc(self) -> float:
        return self.macro_ops / self.cycles if self.cycles else 0.0

    def bandwidth_mb_per_s(self, frequency_ghz: float) -> float:
        # Zero cycles *or* a zero clock yields 0.0 (the repo-wide
        # zero-denominator convention), never ZeroDivisionError.
        if not self.cycles or not frequency_ghz:
            return 0.0
        seconds = self.cycles / (frequency_ghz * 1e9)
        return self.total_dram_bytes / seconds / 1e6


class _FuPool:
    """A pool of (pipelined) functional units."""

    __slots__ = ("_free",)

    def __init__(self, units: int) -> None:
        self._free = [0] * units

    def reserve(self, ready: int, occupancy: int = 1) -> int:
        slot = min(range(len(self._free)), key=self._free.__getitem__)
        start = max(ready, self._free[slot])
        self._free[slot] = start + occupancy
        return start


class TimingModel:
    """Per-core scoreboard; shared L2 is passed in by the system."""

    def __init__(self, config: CoreConfig, l2: SetAssocCache,
                 name: str = "core0") -> None:
        self.config = config
        self.name = name
        line_shift = config.line_bytes.bit_length() - 1
        self.l1i = SetAssocCache(config.l1i_bytes // config.line_bytes,
                                 config.l1i_ways, line_shift, name=f"{name}.l1i")
        self.l1d = SetAssocCache(config.l1d_bytes // config.line_bytes,
                                 config.l1d_ways, line_shift, name=f"{name}.l1d")
        self.l2 = l2
        self.stats = TimingStats()
        self._pools = {
            FuType.ALU: _FuPool(config.int_alu_units),
            FuType.MULT: _FuPool(config.int_mult_units),
            FuType.LOAD: _FuPool(2),
            FuType.STORE: _FuPool(1),
            FuType.CMU: _FuPool(config.cmu_units),
            FuType.WALKER: _FuPool(config.alias_walkers),
        }
        self._reg_ready = [0] * (NUM_UREGS + 1)
        self._rob: Deque[int] = deque()
        self._lq: Deque[int] = deque()
        self._sq: Deque[int] = deque()
        self._issue_used: Dict[int, int] = {}
        self._commit_used: Dict[int, int] = {}
        self._fetch_cycle = 0
        self._group_used = config.fetch_width  # force a fresh group first
        self._last_iline = -1
        self._last_commit = 0
        self._prune_mark = 0

    # -- front end --------------------------------------------------------------

    def begin_macro(self, pc: int, fetch_slots: int = 1,
                    msrom: bool = False) -> None:
        """Account the fetch/decode of one macro instruction.

        ``fetch_slots`` > 1 models binary-translation instrumentation that
        rides in the macro stream; an MSROM translation consumes the whole
        fetch group (the MSROM serializes legacy decoders).
        """
        self.stats.macro_ops += 1
        slots = self.config.fetch_width if msrom else fetch_slots
        if self._group_used + slots > self.config.fetch_width:
            self._fetch_cycle += 1
            self._group_used = 0
            self.stats.fetch_groups += 1
        self._group_used += slots
        line = pc >> (self.config.line_bytes.bit_length() - 1)
        if line != self._last_iline:
            self._last_iline = line
            if not self.l1i.access(line):
                self.stats.icache_misses += 1
                if self.l2.access(line):
                    self._fetch_cycle += self.config.l2_latency
                else:
                    self._fetch_cycle += self.config.mem_latency
                    self.stats.dram_bytes += self.config.line_bytes

    # -- memory hierarchy ----------------------------------------------------------

    def mem_access(self, address: int, is_store: bool) -> int:
        """Data-cache access; returns the load-to-use latency in cycles."""
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if self.l1d.access(address):
            return self.config.l1_latency
        self.stats.l1d_misses += 1
        if self.l2.access(address):
            return self.config.l1_latency + self.config.l2_latency
        self.stats.l2_misses += 1
        self.stats.dram_bytes += self.config.line_bytes
        if is_store:  # write-allocate: the line is fetched either way
            pass
        return (self.config.l1_latency + self.config.l2_latency
                + self.config.mem_latency)

    def shadow_access(self, latency_levels: int, bytes_moved: int) -> int:
        """A shadow-structure access (capability table / alias walk).

        Returns the added latency; traffic lands in the shadow byte meter.
        """
        self.stats.shadow_dram_bytes += bytes_moved
        return latency_levels

    # -- scheduling ---------------------------------------------------------------------

    def schedule(
        self,
        srcs: Tuple[int, ...],
        dst: Optional[int],
        latency: int,
        fu: str = FuType.ALU,
        reads_flags: bool = False,
        writes_flags: bool = False,
        occupancy: int = 1,
    ) -> int:
        """Schedule one micro-op; returns its completion cycle."""
        self.stats.uops += 1
        dispatch = self._fetch_cycle + self.config.decode_depth
        if len(self._rob) >= self.config.rob_entries:
            oldest = self._rob.popleft()
            if oldest > dispatch:
                dispatch = oldest
                self.stats.rob_stall_events += 1
                # Dispatch backpressure stalls fetch too: the front end can
                # only run one ROB's worth of work ahead of commit, which
                # bounds the wrong-path window a squash can waste.
                stalled_fetch = dispatch - self.config.decode_depth
                if stalled_fetch > self._fetch_cycle:
                    self._fetch_cycle = stalled_fetch
        queue = self._lq if fu == FuType.LOAD else (
            self._sq if fu == FuType.STORE else None)
        if queue is not None:
            limit = (self.config.lq_entries if fu == FuType.LOAD
                     else self.config.sq_entries)
            while queue and queue[0] <= dispatch:
                queue.popleft()
            if len(queue) >= limit:
                dispatch = max(dispatch, queue.popleft())
        ready = dispatch
        for src in srcs:
            if self._reg_ready[src] > ready:
                ready = self._reg_ready[src]
        if reads_flags and self._reg_ready[_FLAGS] > ready:
            ready = self._reg_ready[_FLAGS]
        issue = self._issue_slot(ready, fu, occupancy)
        done = issue + latency
        if dst is not None:
            self._reg_ready[dst] = done
        if writes_flags:
            self._reg_ready[_FLAGS] = done
        commit = self._commit_slot(done)
        self._rob.append(commit)
        if queue is not None:
            queue.append(commit)
        if commit > self._last_commit:
            self._last_commit = commit
        self._maybe_prune()
        return done

    def occupy(self, fu: str, ready: int, duration: int) -> int:
        """Reserve a functional unit without issuing a uop (hardware
        walkers, background engines).  Returns the start cycle."""
        return self._pools[fu].reserve(ready, duration)

    def routine_call(self, cost_uops: int, srcs: Tuple[int, ...],
                     dst: Optional[int]) -> int:
        """A host-implemented library routine (malloc/free internals).

        Modelled as a block of ``cost_uops`` instructions flowing through
        the pipeline normally: it occupies the front end for
        ``cost_uops / fetch_width`` cycles and produces its result
        ``cost_uops / 2`` cycles (routine IPC ~2) after its inputs are
        ready — but it does *not* drain the pipe; surrounding independent
        work overlaps, as it would around a real call.
        """
        self.stats.uops += 1
        entry_fetch = self._fetch_cycle
        self._fetch_cycle += max(1, cost_uops // self.config.fetch_width)
        self._group_used = self.config.fetch_width
        ready = entry_fetch + self.config.decode_depth
        for src in srcs:
            if self._reg_ready[src] > ready:
                ready = self._reg_ready[src]
        latency = max(1, cost_uops // 2)
        done = ready + latency
        self.stats.hostop_cycles += latency
        if dst is not None:
            self._reg_ready[dst] = done
        commit = self._commit_slot(done)
        self._rob.append(commit)
        if commit > self._last_commit:
            self._last_commit = commit
        return done

    # -- control flow / recovery ------------------------------------------------------------

    def redirect(self, resolve_cycle: int, penalty: int,
                 alias: bool = False) -> None:
        """Squash: restart fetch after ``resolve_cycle`` plus refill penalty."""
        new_fetch = resolve_cycle + penalty
        if new_fetch > self._fetch_cycle:
            # Squash time: wrong-path fetch ran from the current fetch point
            # until resolution, then the pipe refills for ``penalty`` cycles.
            wasted = new_fetch - self._fetch_cycle
            self.stats.squash_cycles += wasted
            if alias:
                self.stats.alias_squash_cycles += wasted
            else:
                self.stats.branch_squash_cycles += wasted
            self._fetch_cycle = new_fetch
        self._group_used = self.config.fetch_width

    def taken_branch(self) -> None:
        """A correctly predicted taken branch still ends the fetch group."""
        self._group_used = self.config.fetch_width

    # -- end of run ------------------------------------------------------------------------------

    def finish(self) -> TimingStats:
        self.stats.cycles = max(self._last_commit, self._fetch_cycle, 1)
        return self.stats

    @property
    def now(self) -> int:
        """Approximate current time (last commit)."""
        return self._last_commit

    # -- internals -------------------------------------------------------------------------------

    def _issue_slot(self, ready: int, fu: str, occupancy: int) -> int:
        width = self.config.issue_width
        cycle = self._pools[fu].reserve(ready, occupancy)
        while self._issue_used.get(cycle, 0) >= width:
            cycle += 1
        self._issue_used[cycle] = self._issue_used.get(cycle, 0) + 1
        return cycle

    def _commit_slot(self, done: int) -> int:
        cycle = max(done, self._last_commit)
        while self._commit_used.get(cycle, 0) >= self.config.commit_width:
            cycle += 1
        self._commit_used[cycle] = self._commit_used.get(cycle, 0) + 1
        return cycle

    def _maybe_prune(self) -> None:
        if len(self._issue_used) + len(self._commit_used) < 200_000:
            return
        horizon = self._last_commit - 1_000
        self._issue_used = {c: n for c, n in self._issue_used.items()
                            if c >= horizon}
        self._commit_used = {c: n for c, n in self._commit_used.items()
                             if c >= horizon}
