"""Out-of-order timing model (flat scoreboard style).

This is the substitute for the paper's gem5 Skylake model: a
dependency-driven scheduling model that charges every micro-op its fetch
group, decode depth, ROB occupancy, issue-width and functional-unit
contention, cache-hierarchy latency, and branch/alias misprediction
penalties.  It is not cycle-by-cycle RTL; it reproduces the *relative*
costs the paper's evaluation depends on — micro-op expansion, shadow-table
traffic, squash time — which is what Figures 6-9 compare.

The model is driven by the machine in program order; wrong-path work is
accounted as squash penalty cycles rather than simulated.

Because ``schedule()`` runs once per simulated micro-op it is the single
hottest function in the repository, and its data structures are flat:

* issue- and commit-width accounting uses fixed-size *ring buffers*
  indexed by ``cycle & mask`` with a cycle tag per slot (a stale tag reads
  as an empty slot), instead of an ever-growing dict that needed periodic
  200k-entry rebuilds;
* functional-unit pools keep their per-unit free times in a binary heap,
  so reserving the earliest-free unit is O(log units) instead of an
  O(units) min-scan (single-unit pools degenerate to one integer).

Both structures reproduce the dict/min-scan schedules cycle-for-cycle:
the ring is exact as long as no two in-flight cycles collide modulo the
ring size (the live scheduling window is bounded by the ROB depth times
the worst per-uop latency — a few tens of thousands of cycles — far
below the 2^16 ring), and a heap pop returns the same minimum free time
the scan found.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heapify, heapreplace
from typing import Deque, Dict, List, Optional, Tuple

from ..memory.cache import SetAssocCache
from ..microop.uops import NUM_UREGS
from .config import CoreConfig

#: Pseudo-register index used for the flags dependency.
_FLAGS = NUM_UREGS

#: Ring-buffer size for the per-cycle issue/commit slot counters.  Must be
#: a power of two and comfortably larger than the live scheduling window.
_RING_SIZE = 1 << 16
_RING_MASK = _RING_SIZE - 1

#: Module-level copies of the two FuType indices ``schedule`` compares
#: against per micro-op (a global load beats a class-attribute load).
_FU_LOAD = 2   # FuType.LOAD
_FU_STORE = 3  # FuType.STORE


class FuType:
    """Functional unit classes (Table III), as dense pool indices."""

    ALU = 0
    MULT = 1
    LOAD = 2
    STORE = 3
    CMU = 4  # capability management units (Figure 2)
    WALKER = 5  # alias-table hardware walker (Section V-C)

    NAMES = ("alu", "mult", "load", "store", "cmu", "walker")


@dataclass
class TimingStats:
    """Cycle/traffic accounting for one core."""

    cycles: int = 0
    uops: int = 0
    macro_ops: int = 0
    squash_cycles: int = 0
    branch_squash_cycles: int = 0
    alias_squash_cycles: int = 0
    hostop_cycles: int = 0
    fetch_groups: int = 0
    icache_misses: int = 0
    loads: int = 0
    stores: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    dram_bytes: int = 0
    shadow_dram_bytes: int = 0
    rob_stall_events: int = 0
    #: Issued uops per functional-unit class, indexed like ``FuType``.
    fu_uops: List[int] = field(default_factory=lambda: [0] * 6)

    @property
    def total_dram_bytes(self) -> int:
        return self.dram_bytes + self.shadow_dram_bytes

    @property
    def squash_fraction(self) -> float:
        return self.squash_cycles / self.cycles if self.cycles else 0.0

    def ipc(self) -> float:
        return self.macro_ops / self.cycles if self.cycles else 0.0

    def bandwidth_mb_per_s(self, frequency_ghz: float) -> float:
        # Zero cycles *or* a zero clock yields 0.0 (the repo-wide
        # zero-denominator convention), never ZeroDivisionError.
        if not self.cycles or not frequency_ghz:
            return 0.0
        seconds = self.cycles / (frequency_ghz * 1e9)
        return self.total_dram_bytes / seconds / 1e6

    def fu_uops_by_name(self) -> Dict[str, int]:
        """Per-functional-unit issue counts keyed by unit name."""
        return dict(zip(FuType.NAMES, self.fu_uops))

    def register_metrics(self, registry, prefix: str = "timing") -> None:
        """Expose the cycle/traffic counters as ``<prefix>.*`` gauges.

        ``cycles`` is only final after :meth:`TimingModel.finish`;
        snapshot takers call it first (it is idempotent).
        """
        registry.register_object(prefix, self, (
            "cycles", "uops", "macro_ops", "squash_cycles",
            "branch_squash_cycles", "alias_squash_cycles", "hostop_cycles",
            "fetch_groups", "icache_misses", "loads", "stores",
            "l1d_misses", "l2_misses", "dram_bytes", "shadow_dram_bytes",
            "rob_stall_events"))
        for index, name in enumerate(FuType.NAMES):
            registry.gauge(
                f"{prefix}.fu_{name}_uops",
                lambda stats=self, i=index: stats.fu_uops[i])
        registry.ratio(f"{prefix}.squash_fraction",
                       f"{prefix}.squash_cycles", f"{prefix}.cycles")


class _FuPool:
    """A pool of (pipelined) functional units.

    Free times live in a min-heap: ``reserve`` starts the request at the
    earliest-free unit, exactly like an argmin scan over the units, but in
    O(log n).  A one-unit pool is just a single integer.
    """

    __slots__ = ("_free", "_single")

    def __init__(self, units: int) -> None:
        self._single = units == 1
        if self._single:
            self._free = 0
        else:
            free = [0] * units
            heapify(free)
            self._free = free

    def reserve(self, ready: int, occupancy: int = 1) -> int:
        if self._single:
            start = ready if ready > self._free else self._free
            self._free = start + occupancy
            return start
        free = self._free
        earliest = free[0]
        start = ready if ready > earliest else earliest
        heapreplace(free, start + occupancy)
        return start


class TimingModel:
    """Per-core scoreboard; shared L2 is passed in by the system."""

    def __init__(self, config: CoreConfig, l2: SetAssocCache,
                 name: str = "core0") -> None:
        self.config = config
        self.name = name
        line_shift = config.line_bytes.bit_length() - 1
        #: Cache line shift, hoisted once — ``begin_macro``/``mem_access``
        #: run per macro-op/access and must not recompute it.
        self._line_shift = line_shift
        self.l1i = SetAssocCache(config.l1i_bytes // config.line_bytes,
                                 config.l1i_ways, line_shift, name=f"{name}.l1i")
        self.l1d = SetAssocCache(config.l1d_bytes // config.line_bytes,
                                 config.l1d_ways, line_shift, name=f"{name}.l1d")
        self.l2 = l2
        self.stats = TimingStats()
        self._pools = [
            _FuPool(config.int_alu_units),   # FuType.ALU
            _FuPool(config.int_mult_units),  # FuType.MULT
            _FuPool(2),                      # FuType.LOAD
            _FuPool(1),                      # FuType.STORE
            _FuPool(config.cmu_units),       # FuType.CMU
            _FuPool(config.alias_walkers),   # FuType.WALKER
        ]
        self._reg_ready = [0] * (NUM_UREGS + 1)
        self._rob: Deque[int] = deque()
        self._lq: Deque[int] = deque()
        self._sq: Deque[int] = deque()
        # Flat per-cycle slot scoreboard: counts[cycle & mask] is valid
        # only while tags[cycle & mask] == cycle; stale slots read as 0.
        self._issue_tags = [-1] * _RING_SIZE
        self._issue_counts = [0] * _RING_SIZE
        self._commit_tags = [-1] * _RING_SIZE
        self._commit_counts = [0] * _RING_SIZE
        self._fetch_cycle = 0
        self._group_used = config.fetch_width  # force a fresh group first
        self._last_iline = -1
        self._last_commit = 0
        # Hot-loop config hoists (attribute loads per scheduled uop add up).
        self._fetch_width = config.fetch_width
        self._issue_width = config.issue_width
        self._commit_width = config.commit_width
        self._decode_depth = config.decode_depth
        self._rob_entries = config.rob_entries
        self._lq_entries = config.lq_entries
        self._sq_entries = config.sq_entries
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        self._mem_latency = config.mem_latency
        self._line_bytes = config.line_bytes

    # -- front end --------------------------------------------------------------

    def begin_macro(self, pc: int, fetch_slots: int = 1,
                    msrom: bool = False) -> None:
        """Account the fetch/decode of one macro instruction.

        ``fetch_slots`` > 1 models binary-translation instrumentation that
        rides in the macro stream; an MSROM translation consumes the whole
        fetch group (the MSROM serializes legacy decoders).
        """
        stats = self.stats
        stats.macro_ops += 1
        slots = self._fetch_width if msrom else fetch_slots
        if self._group_used + slots > self._fetch_width:
            self._fetch_cycle += 1
            self._group_used = slots
            stats.fetch_groups += 1
        else:
            self._group_used += slots
        line = pc >> self._line_shift
        if line != self._last_iline:
            self._last_iline = line
            if not self.l1i.access(line):
                stats.icache_misses += 1
                if self.l2.access(line):
                    self._fetch_cycle += self._l2_latency
                else:
                    self._fetch_cycle += self._mem_latency
                    stats.dram_bytes += self._line_bytes

    def fetch_block(self, slots: int, line: int) -> None:
        """Per-member fetch accounting for superblock replay.

        The fetch-group and icache work of :meth:`begin_macro` with the
        slot count (MSROM widening applied) and icache line precomputed
        at superblock-compile time, and *without* the ``macro_ops`` bump
        — the executor charges that as one batched delta per replay via
        :meth:`commit_macros`.  Must stay interleaved per member: ROB
        backpressure in :meth:`schedule` moves ``_fetch_cycle`` between
        members, and icache refills share the L2 (and its LRU state)
        with data misses.
        """
        stats = self.stats
        if self._group_used + slots > self._fetch_width:
            self._fetch_cycle += 1
            self._group_used = slots
            stats.fetch_groups += 1
        else:
            self._group_used += slots
        if line != self._last_iline:
            self._last_iline = line
            if not self.l1i.access(line):
                stats.icache_misses += 1
                if self.l2.access(line):
                    self._fetch_cycle += self._l2_latency
                else:
                    self._fetch_cycle += self._mem_latency
                    stats.dram_bytes += self._line_bytes

    def fetch_line(self, line: int) -> None:
        """Icache half of :meth:`fetch_block` for a changed line.

        The superblock trace compiler inlines the fetch-group half (two
        compares on precomputed slot counts) and only calls out when the
        member starts a new icache line — the refill path, which shares
        the L2 (and its LRU state) with data misses and so must stay a
        real access in program order.
        """
        self._last_iline = line
        if not self.l1i.access(line):
            self.stats.icache_misses += 1
            if self.l2.access(line):
                self._fetch_cycle += self._l2_latency
            else:
                self._fetch_cycle += self._mem_latency
                self.stats.dram_bytes += self._line_bytes

    def commit_macros(self, count: int) -> None:
        """Batched ``macro_ops`` charge for ``count`` replayed members.

        Deferring the per-instruction counter to one add per superblock
        is exact because nothing reads ``macro_ops`` mid-run — it only
        feeds end-of-run summaries and metric snapshots, which are taken
        at quantum boundaries.
        """
        self.stats.macro_ops += count

    # -- memory hierarchy ----------------------------------------------------------

    def mem_access(self, address: int, is_store: bool) -> int:
        """Data-cache access; returns the load-to-use latency in cycles.

        Both stores and loads allocate the line on a miss (write-allocate),
        so the DRAM traffic accounting below is identical for either.
        """
        stats = self.stats
        if is_store:
            stats.stores += 1
        else:
            stats.loads += 1
        # L1d probe inlined (the L1d carries no victim array, so a set
        # miss is a genuine miss); the L2 and DRAM legs stay calls.
        l1 = self.l1d
        line = address >> l1.line_shift
        set_ = l1._sets[line % l1.num_sets]
        if line in set_:
            set_.move_to_end(line)
            l1.stats.hits += 1
            return self._l1_latency
        l1.stats.misses += 1
        l1._install(set_, line, True)
        stats.l1d_misses += 1
        if self.l2.access(address):
            return self._l1_latency + self._l2_latency
        stats.l2_misses += 1
        stats.dram_bytes += self._line_bytes
        return self._l1_latency + self._l2_latency + self._mem_latency

    def mem_access_miss(self, address: int) -> int:
        """L1d-miss leg of :meth:`mem_access` for an inlined hit probe.

        The superblock trace compiler inlines the L1d hit path (and the
        loads/stores counter) and calls this when the probe failed; the
        install, miss counters, and L2/DRAM legs are identical to
        :meth:`mem_access` on the same miss.
        """
        stats = self.stats
        l1 = self.l1d
        line = address >> l1.line_shift
        l1.stats.misses += 1
        l1._install(l1._sets[line % l1.num_sets], line, True)
        stats.l1d_misses += 1
        if self.l2.access(address):
            return self._l1_latency + self._l2_latency
        stats.l2_misses += 1
        stats.dram_bytes += self._line_bytes
        return self._l1_latency + self._l2_latency + self._mem_latency

    def shadow_access(self, latency_levels: int, bytes_moved: int) -> int:
        """A shadow-structure access (capability table / alias walk).

        Returns the added latency; traffic lands in the shadow byte meter.
        """
        self.stats.shadow_dram_bytes += bytes_moved
        return latency_levels

    # -- scheduling ---------------------------------------------------------------------

    def schedule(
        self,
        srcs: Tuple[int, ...],
        dst: Optional[int],
        latency: int,
        fu: int = FuType.ALU,
        reads_flags: bool = False,
        writes_flags: bool = False,
        occupancy: int = 1,
    ) -> int:
        """Schedule one micro-op; returns its completion cycle.

        This is the hottest function in the repository (once per
        simulated micro-op), so the pool-reserve and commit-slot helpers
        are inlined and every attribute that is read more than once is
        hoisted into a local.  The scheduling algorithm is identical to
        the helper-based form, cycle for cycle.
        """
        stats = self.stats
        stats.uops += 1
        stats.fu_uops[fu] += 1
        rob = self._rob
        fetch_cycle = self._fetch_cycle
        decode_depth = self._decode_depth
        dispatch = fetch_cycle + decode_depth
        if len(rob) >= self._rob_entries:
            oldest = rob.popleft()
            if oldest > dispatch:
                dispatch = oldest
                stats.rob_stall_events += 1
                # Dispatch backpressure stalls fetch too: the front end can
                # only run one ROB's worth of work ahead of commit, which
                # bounds the wrong-path window a squash can waste.
                stalled_fetch = dispatch - decode_depth
                if stalled_fetch > fetch_cycle:
                    self._fetch_cycle = stalled_fetch
        if fu == _FU_LOAD:
            queue, limit = self._lq, self._lq_entries
        elif fu == _FU_STORE:
            queue, limit = self._sq, self._sq_entries
        else:
            queue = None
        if queue is not None:
            while queue and queue[0] <= dispatch:
                queue.popleft()
            if len(queue) >= limit:
                head = queue.popleft()
                if head > dispatch:
                    dispatch = head
        ready = dispatch
        reg_ready = self._reg_ready
        for src in srcs:
            src_ready = reg_ready[src]
            if src_ready > ready:
                ready = src_ready
        if reads_flags and reg_ready[_FLAGS] > ready:
            ready = reg_ready[_FLAGS]
        # Issue: reserve a functional unit (inlined _FuPool.reserve), then
        # find a cycle with a free issue slot, walking the ring forward
        # from the unit's start cycle.
        pool = self._pools[fu]
        if pool._single:
            free = pool._free
            cycle = ready if ready > free else free
            pool._free = cycle + occupancy
        else:
            free = pool._free
            earliest = free[0]
            cycle = ready if ready > earliest else earliest
            heapreplace(free, cycle + occupancy)
        tags, counts = self._issue_tags, self._issue_counts
        width = self._issue_width
        while True:
            slot = cycle & _RING_MASK
            if tags[slot] != cycle:
                tags[slot] = cycle
                counts[slot] = 1
                break
            if counts[slot] < width:
                counts[slot] += 1
                break
            cycle += 1
        done = cycle + latency
        if dst is not None:
            reg_ready[dst] = done
        if writes_flags:
            reg_ready[_FLAGS] = done
        # Commit: find the in-order commit slot (inlined _commit_slot).
        commit = self._last_commit
        if done > commit:
            commit = done
        tags, counts = self._commit_tags, self._commit_counts
        width = self._commit_width
        while True:
            slot = commit & _RING_MASK
            if tags[slot] != commit:
                tags[slot] = commit
                counts[slot] = 1
                break
            if counts[slot] < width:
                counts[slot] += 1
                break
            commit += 1
        rob.append(commit)
        if queue is not None:
            queue.append(commit)
        if commit > self._last_commit:
            self._last_commit = commit
        return done

    def schedule_simple(
        self,
        srcs: Tuple[int, ...],
        dst: Optional[int],
        reads_flags: bool = False,
        writes_flags: bool = False,
    ) -> int:
        """:meth:`schedule` specialized for the single-cycle ALU shape.

        Behaviorally identical — cycle for cycle and counter for counter
        — to ``schedule(srcs, dst, 1, FuType.ALU, reads_flags,
        writes_flags)``; the load/store-queue interaction (never taken
        for the ALU class) and the latency/occupancy generality are
        compiled out.  The superblock trace compiler emits this for ALU,
        MOV, LIMM, LEA, NOP, and branch uops, which dominate the dynamic
        mix; any change to :meth:`schedule`'s algorithm must be mirrored
        here.
        """
        stats = self.stats
        stats.uops += 1
        stats.fu_uops[0] += 1
        rob = self._rob
        fetch_cycle = self._fetch_cycle
        decode_depth = self._decode_depth
        dispatch = fetch_cycle + decode_depth
        if len(rob) >= self._rob_entries:
            oldest = rob.popleft()
            if oldest > dispatch:
                dispatch = oldest
                stats.rob_stall_events += 1
                stalled_fetch = dispatch - decode_depth
                if stalled_fetch > fetch_cycle:
                    self._fetch_cycle = stalled_fetch
        ready = dispatch
        reg_ready = self._reg_ready
        for src in srcs:
            src_ready = reg_ready[src]
            if src_ready > ready:
                ready = src_ready
        if reads_flags and reg_ready[_FLAGS] > ready:
            ready = reg_ready[_FLAGS]
        pool = self._pools[0]
        if pool._single:
            free = pool._free
            cycle = ready if ready > free else free
            pool._free = cycle + 1
        else:
            free = pool._free
            earliest = free[0]
            cycle = ready if ready > earliest else earliest
            heapreplace(free, cycle + 1)
        tags, counts = self._issue_tags, self._issue_counts
        width = self._issue_width
        while True:
            slot = cycle & _RING_MASK
            if tags[slot] != cycle:
                tags[slot] = cycle
                counts[slot] = 1
                break
            if counts[slot] < width:
                counts[slot] += 1
                break
            cycle += 1
        done = cycle + 1
        if dst is not None:
            reg_ready[dst] = done
        if writes_flags:
            reg_ready[_FLAGS] = done
        commit = self._last_commit
        if done > commit:
            commit = done
        tags, counts = self._commit_tags, self._commit_counts
        width = self._commit_width
        while True:
            slot = commit & _RING_MASK
            if tags[slot] != commit:
                tags[slot] = commit
                counts[slot] = 1
                break
            if counts[slot] < width:
                counts[slot] += 1
                break
            commit += 1
        rob.append(commit)
        if commit > self._last_commit:
            self._last_commit = commit
        return done

    def register_metrics(self, registry, prefix: str = "timing") -> None:
        """Wire this core's timing stats and private caches into
        ``registry`` (``<prefix>.*``, ``cache.l1i.*``, ``cache.l1d.*``)."""
        self.stats.register_metrics(registry, prefix)
        self.l1i.stats.register_metrics(registry, "cache.l1i")
        self.l1d.stats.register_metrics(registry, "cache.l1d")

    def occupy(self, fu: int, ready: int, duration: int) -> int:
        """Reserve a functional unit without issuing a uop (hardware
        walkers, background engines).  Returns the start cycle."""
        return self._pools[fu].reserve(ready, duration)

    def routine_call(self, cost_uops: int, srcs: Tuple[int, ...],
                     dst: Optional[int]) -> int:
        """A host-implemented library routine (malloc/free internals).

        Modelled as a block of ``cost_uops`` instructions flowing through
        the pipeline normally: it occupies the front end for
        ``cost_uops / fetch_width`` cycles and produces its result
        ``cost_uops / 2`` cycles (routine IPC ~2) after its inputs are
        ready — but it does *not* drain the pipe; surrounding independent
        work overlaps, as it would around a real call.
        """
        self.stats.uops += 1
        entry_fetch = self._fetch_cycle
        self._fetch_cycle += max(1, cost_uops // self._fetch_width)
        self._group_used = self._fetch_width
        ready = entry_fetch + self._decode_depth
        for src in srcs:
            if self._reg_ready[src] > ready:
                ready = self._reg_ready[src]
        latency = max(1, cost_uops // 2)
        done = ready + latency
        self.stats.hostop_cycles += latency
        if dst is not None:
            self._reg_ready[dst] = done
        commit = self._commit_slot(done)
        self._rob.append(commit)
        if commit > self._last_commit:
            self._last_commit = commit
        return done

    # -- control flow / recovery ------------------------------------------------------------

    def redirect(self, resolve_cycle: int, penalty: int,
                 alias: bool = False) -> None:
        """Squash: restart fetch after ``resolve_cycle`` plus refill penalty."""
        new_fetch = resolve_cycle + penalty
        if new_fetch > self._fetch_cycle:
            # Squash time: wrong-path fetch ran from the current fetch point
            # until resolution, then the pipe refills for ``penalty`` cycles.
            wasted = new_fetch - self._fetch_cycle
            self.stats.squash_cycles += wasted
            if alias:
                self.stats.alias_squash_cycles += wasted
            else:
                self.stats.branch_squash_cycles += wasted
            self._fetch_cycle = new_fetch
        self._group_used = self._fetch_width

    def taken_branch(self) -> None:
        """A correctly predicted taken branch still ends the fetch group."""
        self._group_used = self._fetch_width

    # -- end of run ------------------------------------------------------------------------------

    def finish(self) -> TimingStats:
        self.stats.cycles = max(self._last_commit, self._fetch_cycle, 1)
        return self.stats

    @property
    def now(self) -> int:
        """Approximate current time (last commit)."""
        return self._last_commit

    # -- internals -------------------------------------------------------------------------------

    def _commit_slot(self, done: int) -> int:
        cycle = self._last_commit
        if done > cycle:
            cycle = done
        tags, counts = self._commit_tags, self._commit_counts
        width = self._commit_width
        while True:
            slot = cycle & _RING_MASK
            if tags[slot] != cycle:
                tags[slot] = cycle
                counts[slot] = 1
                return cycle
            if counts[slot] < width:
                counts[slot] += 1
                return cycle
            cycle += 1
