"""Shared system state for single- and multi-core simulations.

The PARSEC experiments run multithreaded: cores share the process address
space (memory, heap allocator, shadow capability table, shadow alias table,
L2), while each core keeps private L1s, a private capability cache, alias
cache, tracker, and predictors.  Frees and alias stores broadcast
invalidations to the other cores' in-processor caches (Sections IV-C and
V-C); the message counters here feed the multithreaded overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.alias import ShadowAliasTable
from ..core.capability import ShadowCapabilityTable
from ..heap.allocator import HeapAllocator
from ..memory.cache import SetAssocCache
from ..memory.memory import Memory
from .config import CoreConfig, DEFAULT_CONFIG


@dataclass
class CoherenceStats:
    """Invalidate-message traffic between cores."""

    cap_invalidate_messages: int = 0
    alias_invalidate_messages: int = 0
    cap_invalidate_hits: int = 0
    alias_invalidate_hits: int = 0


class System:
    """Process-wide shared state plus the core roster."""

    def __init__(self, config: CoreConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.memory = Memory()
        self.allocator = HeapAllocator(self.memory)
        self.captable = ShadowCapabilityTable(config.max_alloc_bytes)
        self.alias_table = ShadowAliasTable()
        line_shift = config.line_bytes.bit_length() - 1
        self.l2 = SetAssocCache(config.l2_bytes // config.line_bytes,
                                config.l2_ways, line_shift, name="l2")
        self.cores: List = []  # Machine instances register themselves
        self.coherence = CoherenceStats()
        # Program-load bookkeeping: a shared program's globals/capabilities
        # are initialized once per process, not once per core.
        self.loaded_programs: dict = {}
        # Shared page-table alias-hosting bits (see repro.memory.tlb).
        self.alias_hosting_pages: set = set()

    def register_core(self, core) -> int:
        self.cores.append(core)
        return len(self.cores) - 1

    # -- invalidation broadcast -----------------------------------------------

    def broadcast_cap_invalidate(self, pid: int, origin_core: int) -> None:
        """A capability was freed on ``origin_core``: invalidate everywhere.

        Thanks to unforgeability these are sent exactly once per free."""
        for core in self.cores:
            if core.core_id == origin_core:
                continue
            self.coherence.cap_invalidate_messages += 1
            if core.capcache.invalidate(pid):
                self.coherence.cap_invalidate_hits += 1

    def broadcast_alias_invalidate(self, address: int, origin_core: int) -> None:
        """A spilled alias was (re)written on ``origin_core``."""
        for core in self.cores:
            if core.core_id == origin_core:
                continue
            self.coherence.alias_invalidate_messages += 1
            if core.alias_cache.invalidate(address):
                self.coherence.alias_invalidate_hits += 1

    @property
    def shadow_bytes(self) -> int:
        """Total shadow storage: capability table + alias table (Figure 9)."""
        return self.captable.shadow_bytes + self.alias_table.shadow_bytes
