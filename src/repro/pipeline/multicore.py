"""Multicore execution of multithreaded (PARSEC-style) workloads.

Threads share the process: one :class:`~repro.pipeline.system.System`
(memory, heap, capability table, alias table, L2) with one
:class:`~repro.core.machine.Chex86Machine` per thread, each with private
L1s/TLB/capability-cache/alias-cache/tracker/predictors and its own stack.
Execution interleaves in round-robin quanta; capability frees and alias
stores broadcast invalidations to the other cores (Sections IV-C, V-C),
whose cost shows up as extra shadow-cache misses on the receiving cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.machine import Chex86Machine, RunResult
from ..core.rules import RuleDatabase
from ..core.variants import Variant
from ..core.violations import ViolationLog
from ..isa.assembler import assemble
from ..isa.program import STACK_TOP
from .config import CoreConfig, DEFAULT_CONFIG
from .system import System

#: Instructions per round-robin timeslice.
QUANTUM = 64

#: Virtual-address gap between per-thread stacks.
STACK_STRIDE = 1 << 24


@dataclass
class MulticoreResult:
    """Aggregate of a multithreaded run."""

    program: str
    variant: Variant
    per_core: List[RunResult]
    system: System

    @property
    def halted(self) -> bool:
        return all(result.halted for result in self.per_core)

    @property
    def instructions(self) -> int:
        return sum(result.instructions for result in self.per_core)

    @property
    def uops(self) -> int:
        return sum(result.uops for result in self.per_core)

    @property
    def native_uops(self) -> int:
        return sum(result.native_uops for result in self.per_core)

    @property
    def cycles(self) -> int:
        """Wall-clock of the parallel region: the slowest core."""
        if not self.per_core:
            return 0
        return max(result.cycles for result in self.per_core)

    @property
    def uop_expansion(self) -> float:
        """0.0 when no core decoded anything (repo-wide convention for
        ratios with a zero denominator)."""
        return self.uops / self.native_uops if self.native_uops else 0.0

    @property
    def violations(self) -> ViolationLog:
        merged = ViolationLog()
        for result in self.per_core:
            for violation in result.violations.violations:
                merged.record(violation)
        return merged

    @property
    def flagged(self) -> bool:
        return self.violations.flagged

    def normalized_performance(self, baseline_cycles: int) -> float:
        return baseline_cycles / self.cycles if self.cycles else 0.0


class MulticoreMachine:
    """Round-robin multicore runner over a shared :class:`System`."""

    def __init__(
        self,
        workload,
        variant: Variant = Variant.UCODE_PREDICTION,
        config: CoreConfig = DEFAULT_CONFIG,
        rules: Optional[RuleDatabase] = None,
        halt_on_violation: bool = True,
        host_hooks: Optional[Dict] = None,
        program=None,
        system: Optional[System] = None,
    ) -> None:
        """``workload`` is a :class:`~repro.workloads.base.Workload`;
        pass ``program`` to reuse an already-assembled (possibly
        instrumented) program, and ``system`` to share pre-built process
        state (the ASan runtime needs its allocator)."""
        self.workload = workload
        self.variant = variant
        self.system = system if system is not None else System(config)
        if program is None:
            program = assemble(workload.source, name=workload.name)
        self.program = program
        self.cores: List[Chex86Machine] = []
        for tid, entry in enumerate(workload.entry_labels):
            self.cores.append(Chex86Machine(
                program,
                variant=variant,
                config=config,
                system=self.system,
                rules=rules,
                halt_on_violation=halt_on_violation,
                host_hooks=host_hooks,
                entry_label=entry,
                stack_base=STACK_TOP - tid * STACK_STRIDE,
            ))

    def run(self, max_instructions_per_core: int = 2_000_000
            ) -> MulticoreResult:
        """Interleave cores in quanta until all halt or budgets expire."""
        budgets = [max_instructions_per_core] * len(self.cores)
        progressing = True
        while progressing:
            progressing = False
            for index, core in enumerate(self.cores):
                if core.halted or budgets[index] <= 0:
                    continue
                executed = core.run_quantum(min(QUANTUM, budgets[index]))
                budgets[index] -= executed
                if executed:
                    progressing = True
        per_core = []
        for core in self.cores:
            stats = core.timing.finish()
            per_core.append(RunResult(
                program=self.program.name,
                variant=self.variant,
                halted=core.halted,
                instructions=core.instructions,
                uops=core.total_uops,
                native_uops=core.native_uops,
                injected_uops=core.mcu.stats.injected_uops,
                cycles=stats.cycles,
                violations=core.violations,
                machine=core,
            ))
        return MulticoreResult(
            program=self.program.name,
            variant=self.variant,
            per_core=per_core,
            system=self.system,
        )
