"""Simulated hardware configuration (paper Table III plus CHEx86 knobs).

The baseline processor is modelled after Intel Skylake exactly as Table III
specifies; the CHEx86 structure sizes (capability cache, alias cache +
victim, predictor) use the defaults of Sections IV-B and V-C.  Everything is
a dataclass field so the Figure 7/8 sweeps are one-liner ``replace()`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class CoreConfig:
    """One core's microarchitectural parameters."""

    # ---- Table III: baseline processor --------------------------------------
    frequency_ghz: float = 3.4
    fetch_width: int = 4            # fused uops (macro-ops) per cycle
    issue_width: int = 6            # unfused uops per cycle
    commit_width: int = 6
    rob_entries: int = 224
    iq_entries: int = 64
    lq_entries: int = 72
    sq_entries: int = 56
    int_regs: int = 180
    fp_regs: int = 168
    ras_entries: int = 64
    btb_entries: int = 4096
    int_alu_units: int = 6
    int_mult_units: int = 1
    fp_alu_units: int = 3
    simd_units: int = 3
    l1i_bytes: int = 32 * 1024
    l1i_ways: int = 8
    l1d_bytes: int = 32 * 1024
    l1d_ways: int = 8

    # ---- beyond-Table-III memory system (Skylake-typical) --------------------
    l2_bytes: int = 1024 * 1024
    l2_ways: int = 16
    line_bytes: int = 64
    l1_latency: int = 4
    l2_latency: int = 14
    mem_latency: int = 120
    dtlb_entries: int = 64
    dtlb_ways: int = 4

    # ---- front end ------------------------------------------------------------
    decode_depth: int = 5           # fetch-to-dispatch stages
    branch_mispredict_penalty: int = 15

    # ---- CHEx86 structures (Sections IV-B, V-C) ---------------------------------
    capcache_entries: int = 64      # fully associative
    captable_latency: int = 30      # shadow capability table access (miss path)
    capcheck_latency: int = 3       # capCheck hit path / CMU occupancy
    cmu_units: int = 2              # capability management units (Figure 2)
    aliascache_entries: int = 256
    aliascache_ways: int = 2
    alias_victim_entries: int = 32
    alias_walk_level_latency: int = 6   # per level of the 5-level walker
    alias_walkers: int = 2              # concurrent hardware table walkers
    predictor_entries: int = 512
    alias_flush_penalty: int = 15   # P0AN pipeline flush + refill
    lsu_check_latency: int = 1      # hardware-only fused check (per access)
    max_alloc_bytes: int = 1 << 30  # capGen resource-exhaustion limit (1 GB)

    def with_(self, **kwargs) -> "CoreConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def table3_rows(self) -> Dict[str, str]:
        """The Table III content, regenerated from the live configuration."""
        return {
            "Frequency": f"{self.frequency_ghz} GHz",
            "Fetch width": f"{self.fetch_width} fused uops",
            "Issue width": f"{self.issue_width} unfused uops",
            "INT/FP Regfile": f"{self.int_regs}/{self.fp_regs} regs",
            "RAS size": f"{self.ras_entries} entries",
            "LQ/SQ size": f"{self.lq_entries}/{self.sq_entries} entries",
            "Branch Predictor": "LTAGE",
            "I cache": f"{self.l1i_bytes // 1024} KB, {self.l1i_ways} way",
            "D cache": f"{self.l1d_bytes // 1024} KB, {self.l1d_ways} way",
            "ROB size": f"{self.rob_entries} entries",
            "IQ": f"{self.iq_entries} entries",
            "BTB size": f"{self.btb_entries} entries",
            "Functional Units": (
                f"Int ALU ({self.int_alu_units}) / Mult ({self.int_mult_units}), "
                f"FPALU ({self.fp_alu_units}) / SIMD ({self.simd_units})"
            ),
        }


#: The default simulated system configuration.
DEFAULT_CONFIG = CoreConfig()
