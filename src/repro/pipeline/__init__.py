"""Out-of-order pipeline substrate: config, branch prediction, timing, system."""

from .branch import BranchStats, FrontEndPredictors, LTagePredictor, ReturnAddressStack
from .config import DEFAULT_CONFIG, CoreConfig
from .system import CoherenceStats, System
from .timing import FuType, TimingModel, TimingStats

__all__ = [
    "BranchStats",
    "CoherenceStats",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "FrontEndPredictors",
    "FuType",
    "LTagePredictor",
    "ReturnAddressStack",
    "System",
    "TimingModel",
    "TimingStats",
]
