"""Memory substrate: sparse memory, caches, and the TLB."""

from .cache import CacheStats, SetAssocCache
from .memory import PAGE_SHIFT, PAGE_SIZE, WORD, Memory, MemoryError_, MemoryStats
from .tlb import Tlb, TlbStats

__all__ = [
    "CacheStats",
    "Memory",
    "MemoryError_",
    "MemoryStats",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "SetAssocCache",
    "Tlb",
    "TlbStats",
    "WORD",
]
