"""TLB model extended with the CHEx86 *alias-hosting* bit.

Section V-C: "we extend the metadata bits in the TLB and the page tables to
include an alias-hosting bit that indicates if a page contains a spilled
pointer, to further minimize the number of lookups."  A load whose page has
the bit clear can skip the shadow alias table walk entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from .cache import SetAssocCache
from .memory import PAGE_SHIFT


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    alias_walks_filtered: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Data TLB with per-page alias-hosting bits.

    The page-table side of the alias-hosting bit is the ``_hosting`` set:
    conceptually part of the in-memory page tables, consulted on TLB refill.
    """

    def __init__(self, entries: int = 64, ways: int = 4,
                 hosting: Set[int] = None) -> None:
        self._cache = SetAssocCache(entries, ways, line_shift=0, name="dtlb")
        # The page-table side of the alias-hosting bit lives in the (shared)
        # process page tables; multicore systems pass one shared set so all
        # cores observe new alias-hosting pages.
        self._hosting: Set[int] = hosting if hosting is not None else set()
        self.stats = TlbStats()

    def access(self, address: int) -> bool:
        """Translate ``address``; returns TLB hit?

        The hit path is inlined against the backing cache (the dtlb is
        built with ``line_shift=0`` and no victim array, so the key *is*
        the line): one dict probe and an LRU touch, with the page-table
        ``_hosting`` probe deferred to the refill path that consumes it.
        """
        page = address >> PAGE_SHIFT
        cache = self._cache
        set_ = cache._sets[page % cache.num_sets]
        if page in set_:
            set_.move_to_end(page)
            cache.stats.hits += 1
            self.stats.hits += 1
            return True
        cache.stats.misses += 1
        # Refill picks up the current page-table alias-hosting bit.
        cache._install(set_, page, page in self._hosting)
        self.stats.misses += 1
        return False

    def refill(self, address: int) -> None:
        """Miss continuation for an externally inlined hit probe.

        The superblock trace compiler inlines the hit path of
        :meth:`access` (one dict probe + LRU touch) and calls this when
        the probe failed; counter for counter it completes exactly what
        :meth:`access` would have done on the same miss.
        """
        page = address >> PAGE_SHIFT
        cache = self._cache
        cache.stats.misses += 1
        cache._install(cache._sets[page % cache.num_sets], page,
                       page in self._hosting)
        self.stats.misses += 1

    def mark_alias_hosting(self, address: int) -> None:
        """A spilled pointer was stored into this page (set the bit)."""
        page = address >> PAGE_SHIFT
        self._hosting.add(page)
        self._cache.update(page, True)

    def page_hosts_aliases(self, address: int) -> bool:
        """Consult the alias-hosting bit for a load at ``address``.

        On a TLB hit this is free; a miss would have paid the page walk
        anyway.  Records a filtered walk when the bit is clear.
        """
        page = address >> PAGE_SHIFT
        cached = self._cache.lookup(page)
        hosts = (page in self._hosting) if cached is None else bool(cached)
        if not hosts:
            self.stats.alias_walks_filtered += 1
        return hosts

    @property
    def hosting_pages(self) -> int:
        return len(self._hosting)
