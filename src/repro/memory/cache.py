"""Generic set-associative cache with LRU replacement and victim-cache hook.

One model serves every cache-shaped structure in CHEx86:

* the L1 instruction and data caches (Table III),
* the 64-entry fully associative in-processor *capability cache*,
* the 256-entry 2-way *alias cache* augmented with a 32-entry fully
  associative *victim cache* (Section V-C),

because they all share the same behaviours under study: hit/miss rates,
LRU churn, and invalidation traffic in multicore runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    victim_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose these counters as ``<prefix>.*`` pull gauges.

        The counters stay plain ``int`` attributes the access path
        increments directly; ``accesses`` and ``miss_rate`` are derived
        at snapshot time (``miss_rate`` as a re-derivable ratio so
        multi-core merges recompute it over the summed counters).
        """
        registry.register_object(prefix, self, (
            "hits", "misses", "evictions", "invalidations", "victim_hits"))
        registry.gauge(f"{prefix}.accesses",
                       lambda stats=self: stats.hits + stats.misses)
        registry.ratio(f"{prefix}.miss_rate",
                       f"{prefix}.misses", f"{prefix}.accesses")


class SetAssocCache:
    """A set-associative tag cache with true-LRU replacement.

    ``entries`` is total capacity; ``ways`` the associativity (``ways ==
    entries`` gives a fully associative cache); ``line_shift`` how many low
    address bits fall inside a line (0 for PID-keyed structures like the
    capability cache, 6 for 64-byte memory lines).

    An optional fully associative ``victim`` cache catches conflict evictions;
    a victim hit refills the main cache (Section V-C's 32-entry victim cache
    behind the alias cache).
    """

    def __init__(
        self,
        entries: int,
        ways: int,
        line_shift: int = 0,
        victim_entries: int = 0,
        name: str = "cache",
    ) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError(f"{name}: entries={entries} not divisible by ways={ways}")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.line_shift = line_shift
        self.num_sets = entries // ways
        self.stats = CacheStats()
        # Each set: OrderedDict keyed by line tag; most-recently-used last.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self._victim: Optional[OrderedDict] = OrderedDict() if victim_entries else None
        self._victim_capacity = victim_entries

    # -- core operations ------------------------------------------------------

    def access(self, key: int, value=True) -> bool:
        """Look up ``key``; install it on a miss.  Returns hit?"""
        line = key >> self.line_shift
        set_ = self._sets[line % self.num_sets]
        if line in set_:
            set_.move_to_end(line)
            self.stats.hits += 1
            return True
        if self._victim is not None and line in self._victim:
            # Victim hit: swap back into the main array, count as a hit.
            value = self._victim.pop(line)
            self.stats.hits += 1
            self.stats.victim_hits += 1
            self._install(set_, line, value)
            return True
        self.stats.misses += 1
        self._install(set_, line, value)
        return False

    def probe(self, key: int) -> bool:
        """Non-allocating lookup, no stats (used by invalidation filters)."""
        line = key >> self.line_shift
        if line in self._sets[line % self.num_sets]:
            return True
        return self._victim is not None and line in self._victim

    def lookup(self, key: int):
        """Return the stored value on a (non-allocating) hit, else None."""
        line = key >> self.line_shift
        set_ = self._sets[line % self.num_sets]
        if line in set_:
            set_.move_to_end(line)
            return set_[line]
        if self._victim is not None and line in self._victim:
            return self._victim[line]
        return None

    def update(self, key: int, value) -> None:
        """Overwrite the value for ``key`` if present (no allocation)."""
        line = key >> self.line_shift
        set_ = self._sets[line % self.num_sets]
        if line in set_:
            set_[line] = value
        elif self._victim is not None and line in self._victim:
            self._victim[line] = value

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` (coherence invalidation).  Returns whether present."""
        line = key >> self.line_shift
        set_ = self._sets[line % self.num_sets]
        present = False
        if line in set_:
            del set_[line]
            present = True
        if self._victim is not None and line in self._victim:
            del self._victim[line]
            present = True
        if present:
            self.stats.invalidations += 1
        return present

    def flush(self) -> None:
        """Empty the cache (keeps statistics)."""
        for set_ in self._sets:
            set_.clear()
        if self._victim is not None:
            self._victim.clear()

    # -- introspection -----------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_keys(self) -> List[int]:
        keys = [line for set_ in self._sets for line in set_]
        if self._victim is not None:
            keys.extend(self._victim)
        return keys

    # -- internals -----------------------------------------------------------------

    def _install(self, set_: OrderedDict, line: int, value) -> None:
        if len(set_) >= self.ways:
            victim_line, victim_value = set_.popitem(last=False)
            self.stats.evictions += 1
            if self._victim is not None:
                self._victim[victim_line] = victim_value
                if len(self._victim) > self._victim_capacity:
                    self._victim.popitem(last=False)
        set_[line] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SetAssocCache {self.name}: {self.entries}x{self.ways}-way, "
            f"miss_rate={self.stats.miss_rate:.2%}>"
        )
