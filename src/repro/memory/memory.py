"""Sparse 64-bit little-endian simulated memory with usage meters.

Everything the simulated programs touch lives here: the text-adjacent data
section, the heap (including the allocator's own chunk metadata), and the
stack.  CHEx86's shadow structures (capability table, alias table) live in a
*separate* shadow address space (their storage is accounted separately — see
:class:`~repro.core.capability.ShadowCapabilityTable`), matching the paper's
requirement that shadow state is not user-addressable.

The meters feed Figure 9: resident set size (pages touched) and bytes moved
(bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
WORD = 8
MASK64 = (1 << 64) - 1


class MemoryError_(Exception):
    """Access to simulated memory that the machine cannot perform."""


@dataclass
class MemoryStats:
    """Traffic and footprint counters."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


class Memory:
    """Sparse page-granular memory of 64-bit words.

    Words are stored per-page in plain lists (index arithmetic on small
    ints), which profiles much faster than bytearray packing in CPython
    while keeping the footprint proportional to pages touched.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, List[int]] = {}
        self.stats = MemoryStats()

    # -- word access ---------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read the 64-bit word at ``address`` (must be 8-byte aligned)."""
        self._check_aligned(address)
        self.stats.reads += 1
        self.stats.bytes_read += WORD
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[(address & (PAGE_SIZE - 1)) >> 3]

    def write_word(self, address: int, value: int) -> None:
        """Write the 64-bit word at ``address`` (must be 8-byte aligned)."""
        self._check_aligned(address)
        self.stats.writes += 1
        self.stats.bytes_written += WORD
        page = self._page(address >> PAGE_SHIFT)
        page[(address & (PAGE_SIZE - 1)) >> 3] = value & MASK64

    def peek_word(self, address: int) -> int:
        """Read without touching the traffic meters (host/debug access)."""
        self._check_aligned(address)
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[(address & (PAGE_SIZE - 1)) >> 3]

    def poke_word(self, address: int, value: int) -> None:
        """Write without touching the traffic meters (loader/host access)."""
        self._check_aligned(address)
        page = self._page(address >> PAGE_SHIFT)
        page[(address & (PAGE_SIZE - 1)) >> 3] = value & MASK64

    # -- bulk helpers ----------------------------------------------------------

    def fill_words(self, address: int, values, metered: bool = False) -> None:
        """Write consecutive words starting at ``address``."""
        for offset, value in enumerate(values):
            if metered:
                self.write_word(address + offset * WORD, value)
            else:
                self.poke_word(address + offset * WORD, value)

    def read_words(self, address: int, count: int) -> List[int]:
        """Peek ``count`` consecutive words (unmetered)."""
        return [self.peek_word(address + i * WORD) for i in range(count)]

    # -- footprint -------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Pages materialized so far (resident set size, in pages)."""
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def pages(self) -> Iterator[int]:
        """Page numbers currently resident."""
        return iter(self._pages)

    # -- internals ---------------------------------------------------------------

    def _page(self, page_no: int) -> List[int]:
        page = self._pages.get(page_no)
        if page is None:
            page = [0] * (PAGE_SIZE >> 3)
            self._pages[page_no] = page
        return page

    @staticmethod
    def _check_aligned(address: int) -> None:
        if address & 7:
            raise MemoryError_(f"unaligned word access at {address:#x}")
        if not 0 <= address <= MASK64:
            raise MemoryError_(f"address {address:#x} outside 64-bit space")
