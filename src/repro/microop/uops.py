"""RISC-style micro-ops: the level at which CHEx86 tracks and instruments.

Modern x86 front-ends translate each macro instruction into one or more
micro-ops.  CHEx86 piggybacks on this translation: the speculative pointer
tracker applies its Table I rules to the micro-op stream, and the microcode
customization unit injects capability micro-ops (``capGen.Begin/End``,
``capCheck``, ``capFree.Begin/End``) into it.

Micro-op operands use an extended register space: the sixteen architectural
registers plus two microarchitectural temporaries (``T0``/``T1``) used by
load-op-store expansions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..isa.operands import Mem
from ..isa.registers import NUM_REGS, Reg

#: Microarchitectural temporary registers (not architecturally visible).
T0 = NUM_REGS
T1 = NUM_REGS + 1

#: Total register identifiers a micro-op may name (arch regs + temps).
NUM_UREGS = NUM_REGS + 2


def ureg_name(ureg: int) -> str:
    """Human-readable name for an extended register index."""
    if ureg < NUM_REGS:
        return "%" + Reg(ureg).name.lower()
    return f"%t{ureg - NUM_REGS}"


class UopKind(enum.Enum):
    """Micro-op opcodes."""

    LIMM = "limm"          # dst <- imm                      (Table I: MOVI)
    MOV = "mov"            # dst <- src                      (Table I: MOV)
    ALU = "alu"            # dst <- src0 op src1             (Table I: ADD/SUB/AND/...)
    LEA = "lea"            # dst <- effective address        (Table I: LEA)
    LD = "ld"              # dst <- Mem[EA]                  (Table I: LD)
    ST = "st"              # Mem[EA] <- src (or imm)         (Table I: ST)
    BR = "br"              # conditional branch
    JMP = "jmp"            # unconditional direct jump
    JMP_IND = "jmp_ind"    # indirect jump (ret target)
    HOSTOP = "hostop"      # host escape (heap library internals)
    NOP = "nop"
    HALT = "halt"
    # --- CHEx86 capability micro-ops (injected by the MCU) -----------------
    CAPGEN_BEGIN = "capgen.begin"
    CAPGEN_END = "capgen.end"
    CAPCHECK = "capcheck"
    CAPFREE_BEGIN = "capfree.begin"
    CAPFREE_END = "capfree.end"
    #: A capCheck demoted at the instruction queue after a PNA0 alias
    #: misprediction — evaluated like an x86 zero idiom (never dispatched).
    ZERO_IDIOM = "zero_idiom"


class AluOp(enum.Enum):
    """ALU sub-operations; the pointer-tracking rules key on these."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MUL = "mul"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"    # flags only
    TEST = "test"  # flags only
    NEG = "neg"
    NOT = "not"


class AddrMode(enum.Enum):
    """Addressing mode of the parent macro instruction (Table I key)."""

    REG_REG = "reg-reg"
    REG_IMM = "reg-imm"
    REG_MEM = "reg-mem"
    NONE = "none"


#: Micro-op kinds that access data memory.
MEMORY_KINDS = {UopKind.LD, UopKind.ST}

#: Capability micro-ops — only ever created by the microcode engine; user
#: code has no encoding for them (they live outside addressable memory).
CAPABILITY_KINDS = {
    UopKind.CAPGEN_BEGIN,
    UopKind.CAPGEN_END,
    UopKind.CAPCHECK,
    UopKind.CAPFREE_BEGIN,
    UopKind.CAPFREE_END,
}


@dataclass(slots=True)
class Uop:
    """One micro-op.

    Mutable on purpose: the pipeline annotates scheduling state, and the MCU
    demotes mispredicted ``capCheck`` uops to zero idioms in place.
    """

    kind: UopKind
    alu: Optional[AluOp] = None
    dst: Optional[int] = None               # extended register index
    srcs: Tuple[int, ...] = ()              # extended register indices
    imm: Optional[int] = None
    mem: Optional[Mem] = None               # for LD/ST/LEA address generation
    target: Optional[int] = None            # for JMP/BR: taken target address
    cond: Optional[str] = None              # for BR: predicate mnemonic
    host_name: Optional[str] = None         # for HOSTOP
    addr_mode: AddrMode = AddrMode.NONE
    writes_flags: bool = False
    reads_flags: bool = False
    #: True when the MCU injected this uop (not part of native translation).
    injected: bool = False
    #: PID the MCU attached (capability uops) — filled at injection time.
    pid: int = 0
    #: For CAPCHECK: whether the guarded access is a write.
    check_write: bool = False
    #: Index of the parent macro instruction in its program.
    macro_index: int = -1
    #: Memoized :meth:`reg_reads` result.  Operand fields are immutable
    #: once decoded (only ``kind``/``pid`` are rewritten in place), so the
    #: read set of a static uop never changes.
    _reads: Optional[Tuple[int, ...]] = field(
        default=None, repr=False, compare=False)
    #: Per-uop rule-lookup memo used by ``repro.core.rules``: a
    #: ``(database, version, rule)`` triple, invalidated when the database
    #: learns or drops a rule (or the uop meets a different database).
    _rule: Optional[Tuple[object, int, object]] = field(
        default=None, repr=False, compare=False)

    def reg_reads(self) -> Tuple[int, ...]:
        """All extended registers this uop reads (incl. address registers)."""
        reads = self._reads
        if reads is None:
            regs = list(self.srcs)
            mem = self.mem
            if mem is not None:
                if mem.base is not None:
                    regs.append(int(mem.base))
                if mem.index is not None:
                    regs.append(int(mem.index))
            reads = tuple(regs)
            self._reads = reads
        return reads

    @property
    def is_mem(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def is_capability(self) -> bool:
        return self.kind in CAPABILITY_KINDS

    @property
    def is_branch(self) -> bool:
        return self.kind in (UopKind.BR, UopKind.JMP, UopKind.JMP_IND)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.kind.value]
        if self.alu is not None:
            parts[0] = f"{self.kind.value}.{self.alu.value}"
        if self.dst is not None:
            parts.append(ureg_name(self.dst))
        parts.extend(ureg_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(f"${self.imm:#x}")
        if self.mem is not None:
            parts.append(str(self.mem))
        if self.pid:
            parts.append(f"pid={self.pid}")
        return " ".join(parts)
