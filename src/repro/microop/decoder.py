"""CISC-to-RISC translation: macro instructions into micro-op sequences.

Mirrors the x86 front-end structure the paper draws in Figure 2: simple
instructions go through 1:1 decoders, moderately complex ones (load-op,
load-op-store, push/pop, call/ret) through the 1:4 complex decoder, and
anything longer is served from the microcode ROM (MSROM).  The decoder
records which path produced each translation so the front-end throughput
model and the decode statistics match that structure.

The translations themselves are the standard textbook ones, e.g.::

    add  rax, [rbx+8]   ->  ld t0, [rbx+8] ; add rax, rax, t0
    add  [rbx+8], rax   ->  ld t0, [rbx+8] ; add t0, t0, rax ; st t0, [rbx+8]
    call f              ->  sub rsp, 8 ; st [rsp] <- retaddr ; jmp f
    ret                 ->  ld t0, [rsp] ; add rsp, 8 ; jmp_ind t0
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..isa.instructions import (
    BINARY_ALU,
    COND_BRANCHES,
    INSTR_SLOT,
    UNARY_ALU,
    Instr,
    Op,
)
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.registers import Reg
from .uops import AddrMode, AluOp, T0, Uop, UopKind


class DecodePath(enum.Enum):
    """Which decoder produced a translation (Figure 2 front-end)."""

    SIMPLE = "1:1"
    COMPLEX = "1:4"
    MSROM = "msrom"


_ALU_MAP = {
    Op.ADD: AluOp.ADD,
    Op.SUB: AluOp.SUB,
    Op.AND: AluOp.AND,
    Op.OR: AluOp.OR,
    Op.XOR: AluOp.XOR,
    Op.IMUL: AluOp.MUL,
    Op.SHL: AluOp.SHL,
    Op.SHR: AluOp.SHR,
}

_UNARY_MAP = {
    Op.INC: AluOp.ADD,
    Op.DEC: AluOp.SUB,
    Op.NEG: AluOp.NEG,
    Op.NOT: AluOp.NOT,
}

_RSP = int(Reg.RSP)


@dataclass
class DecodeStats:
    """Counts per decode path, for front-end throughput accounting."""

    simple: int = 0
    complex: int = 0
    msrom: int = 0
    macro_ops: int = 0
    native_uops: int = 0

    def record(self, path: DecodePath, n_uops: int) -> None:
        self.macro_ops += 1
        self.native_uops += n_uops
        if path is DecodePath.SIMPLE:
            self.simple += 1
        elif path is DecodePath.COMPLEX:
            self.complex += 1
        else:
            self.msrom += 1


class Decoder:
    """Translates macro instructions to micro-ops, with a translation cache.

    The cache is keyed by (program id, instruction index): decode of a given
    static instruction is deterministic, so hot loops pay decode once — this
    also keeps the Python simulator fast.
    """

    def __init__(self) -> None:
        self.stats = DecodeStats()
        self._cache: Dict[Tuple[int, int], Tuple[List[Uop], DecodePath]] = {}

    def decode(self, instr: Instr, address: int, macro_index: int,
               program_key: int = 0) -> Tuple[List[Uop], DecodePath]:
        """Decode one macro instruction.

        Returns the cached translation directly: native micro-ops are
        immutable once decoded (only MCU-*injected* micro-ops, which never
        come from here, carry per-instance state like PIDs or zero-idiom
        demotion).  Use :func:`copy_uops` when a caller needs to mutate.
        """
        template, path = self.translation(instr, address, macro_index,
                                          program_key)
        self.stats.record(path, len(template))
        return template, path

    def translation(self, instr: Instr, address: int, macro_index: int,
                    program_key: int = 0) -> Tuple[List[Uop], DecodePath]:
        """The cached translation for one site, without recording stats.

        The decoded-block fast path compiles plans through this entry point
        and charges :attr:`stats` itself, once per dynamic replay, so the
        decode counters still reflect dynamic front-end work.
        """
        key = (program_key, macro_index)
        cached = self._cache.get(key)
        if cached is None:
            uops = _translate(instr, address)
            for uop in uops:
                uop.macro_index = macro_index
            path = _path_for(len(uops))
            cached = (uops, path)
            self._cache[key] = cached
        return cached


def copy_uops(uops: List[Uop]) -> List[Uop]:
    """Deep-enough copies for callers that mutate micro-ops."""
    return [_copy_uop(u) for u in uops]


def _path_for(n_uops: int) -> DecodePath:
    if n_uops <= 1:
        return DecodePath.SIMPLE
    if n_uops <= 4:
        return DecodePath.COMPLEX
    return DecodePath.MSROM


def _copy_uop(uop: Uop) -> Uop:
    return Uop(
        kind=uop.kind, alu=uop.alu, dst=uop.dst, srcs=uop.srcs, imm=uop.imm,
        mem=uop.mem, target=uop.target, cond=uop.cond, host_name=uop.host_name,
        addr_mode=uop.addr_mode, writes_flags=uop.writes_flags,
        reads_flags=uop.reads_flags, injected=uop.injected, pid=uop.pid,
        check_write=uop.check_write, macro_index=uop.macro_index,
    )


def _translate(instr: Instr, address: int) -> List[Uop]:
    op = instr.op
    ops = instr.operands

    if op is Op.NOP:
        return [Uop(UopKind.NOP)]
    if op is Op.HALT:
        return [Uop(UopKind.HALT)]
    if op is Op.HOSTOP:
        assert isinstance(ops[0], LabelRef)
        return [Uop(UopKind.HOSTOP, host_name=ops[0].name)]
    if op is Op.CAPCHK:
        mem = ops[0]
        assert isinstance(mem, Mem)
        write = len(ops) > 1 and isinstance(ops[1], Imm) and bool(ops[1].value)
        # A native (non-injected) capability check: the machine resolves
        # its PID from the pointer tracker at execute.
        return [Uop(UopKind.CAPCHECK, mem=mem, check_write=write,
                    addr_mode=AddrMode.REG_MEM)]

    if op in (Op.MOV, Op.MOVABS):
        return _translate_mov(ops)
    if op is Op.LEA:
        dst, mem = ops
        assert isinstance(dst, Reg) and isinstance(mem, Mem)
        return [Uop(UopKind.LEA, dst=int(dst), mem=mem, addr_mode=AddrMode.REG_REG)]
    if op in BINARY_ALU:
        return _translate_binary_alu(op, ops)
    if op in UNARY_ALU:
        return _translate_unary_alu(op, ops)
    if op in (Op.CMP, Op.TEST):
        return _translate_compare(op, ops)
    if op is Op.PUSH:
        (reg,) = ops
        assert isinstance(reg, Reg)
        return [
            Uop(UopKind.ALU, alu=AluOp.SUB, dst=_RSP, srcs=(_RSP,), imm=8,
                addr_mode=AddrMode.REG_IMM),
            Uop(UopKind.ST, srcs=(int(reg),), mem=Mem(base=Reg.RSP),
                addr_mode=AddrMode.REG_MEM),
        ]
    if op is Op.POP:
        (reg,) = ops
        assert isinstance(reg, Reg)
        return [
            Uop(UopKind.LD, dst=int(reg), mem=Mem(base=Reg.RSP),
                addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=AluOp.ADD, dst=_RSP, srcs=(_RSP,), imm=8,
                addr_mode=AddrMode.REG_IMM),
        ]
    if op is Op.JMP:
        return [_jump_uop(UopKind.JMP, ops[0])]
    if op in COND_BRANCHES:
        uop = _jump_uop(UopKind.BR, ops[0])
        uop.cond = op.value
        uop.reads_flags = True
        return [uop]
    if op is Op.CALL:
        target = ops[0]
        retaddr = address + INSTR_SLOT
        jump = _jump_uop(UopKind.JMP, target)
        return [
            Uop(UopKind.ALU, alu=AluOp.SUB, dst=_RSP, srcs=(_RSP,), imm=8,
                addr_mode=AddrMode.REG_IMM),
            Uop(UopKind.ST, mem=Mem(base=Reg.RSP), imm=retaddr,
                addr_mode=AddrMode.REG_MEM),
            jump,
        ]
    if op is Op.RET:
        return [
            Uop(UopKind.LD, dst=T0, mem=Mem(base=Reg.RSP),
                addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=AluOp.ADD, dst=_RSP, srcs=(_RSP,), imm=8,
                addr_mode=AddrMode.REG_IMM),
            Uop(UopKind.JMP_IND, srcs=(T0,)),
        ]
    raise NotImplementedError(f"no translation for {instr}")  # pragma: no cover


def _translate_mov(ops: Tuple) -> List[Uop]:
    dst, src = ops
    if isinstance(dst, Reg) and isinstance(src, Reg):
        return [Uop(UopKind.MOV, dst=int(dst), srcs=(int(src),),
                    addr_mode=AddrMode.REG_REG)]
    if isinstance(dst, Reg) and isinstance(src, Imm):
        return [Uop(UopKind.LIMM, dst=int(dst), imm=src.value,
                    addr_mode=AddrMode.REG_IMM)]
    if isinstance(dst, Reg) and isinstance(src, Mem):
        return [Uop(UopKind.LD, dst=int(dst), mem=src, addr_mode=AddrMode.REG_MEM)]
    if isinstance(dst, Mem) and isinstance(src, Reg):
        return [Uop(UopKind.ST, srcs=(int(src),), mem=dst,
                    addr_mode=AddrMode.REG_MEM)]
    if isinstance(dst, Mem) and isinstance(src, Imm):
        # mov [mem], imm: store-immediate; single store uop carrying the data.
        return [Uop(UopKind.ST, mem=dst, imm=src.value, addr_mode=AddrMode.REG_MEM)]
    raise NotImplementedError(f"mov form {dst!r}, {src!r}")  # pragma: no cover


def _translate_binary_alu(op: Op, ops: Tuple) -> List[Uop]:
    alu = _ALU_MAP[op]
    dst, src = ops
    if isinstance(dst, Reg) and isinstance(src, Reg):
        return [Uop(UopKind.ALU, alu=alu, dst=int(dst), srcs=(int(dst), int(src)),
                    writes_flags=True, addr_mode=AddrMode.REG_REG)]
    if isinstance(dst, Reg) and isinstance(src, Imm):
        return [Uop(UopKind.ALU, alu=alu, dst=int(dst), srcs=(int(dst),),
                    imm=src.value, writes_flags=True, addr_mode=AddrMode.REG_IMM)]
    if isinstance(dst, Reg) and isinstance(src, Mem):
        return [
            Uop(UopKind.LD, dst=T0, mem=src, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=alu, dst=int(dst), srcs=(int(dst), T0),
                writes_flags=True, addr_mode=AddrMode.REG_MEM),
        ]
    if isinstance(dst, Mem) and isinstance(src, Reg):
        return [
            Uop(UopKind.LD, dst=T0, mem=dst, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=alu, dst=T0, srcs=(T0, int(src)),
                writes_flags=True, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ST, srcs=(T0,), mem=dst, addr_mode=AddrMode.REG_MEM),
        ]
    if isinstance(dst, Mem) and isinstance(src, Imm):
        return [
            Uop(UopKind.LD, dst=T0, mem=dst, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=alu, dst=T0, srcs=(T0,), imm=src.value,
                writes_flags=True, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ST, srcs=(T0,), mem=dst, addr_mode=AddrMode.REG_MEM),
        ]
    raise NotImplementedError(f"{op.value} form {dst!r}, {src!r}")  # pragma: no cover


def _translate_unary_alu(op: Op, ops: Tuple) -> List[Uop]:
    alu = _UNARY_MAP[op]
    imm = 1 if alu in (AluOp.ADD, AluOp.SUB) else None
    (target,) = ops
    writes_flags = op is not Op.NOT
    if isinstance(target, Reg):
        return [Uop(UopKind.ALU, alu=alu, dst=int(target), srcs=(int(target),),
                    imm=imm, writes_flags=writes_flags, addr_mode=AddrMode.REG_IMM)]
    assert isinstance(target, Mem)
    return [
        Uop(UopKind.LD, dst=T0, mem=target, addr_mode=AddrMode.REG_MEM),
        Uop(UopKind.ALU, alu=alu, dst=T0, srcs=(T0,), imm=imm,
            writes_flags=writes_flags, addr_mode=AddrMode.REG_MEM),
        Uop(UopKind.ST, srcs=(T0,), mem=target, addr_mode=AddrMode.REG_MEM),
    ]


def _translate_compare(op: Op, ops: Tuple) -> List[Uop]:
    alu = AluOp.CMP if op is Op.CMP else AluOp.TEST
    a, b = ops
    if isinstance(a, Reg) and isinstance(b, Reg):
        return [Uop(UopKind.ALU, alu=alu, srcs=(int(a), int(b)),
                    writes_flags=True, addr_mode=AddrMode.REG_REG)]
    if isinstance(a, Reg) and isinstance(b, Imm):
        return [Uop(UopKind.ALU, alu=alu, srcs=(int(a),), imm=b.value,
                    writes_flags=True, addr_mode=AddrMode.REG_IMM)]
    if isinstance(a, Reg) and isinstance(b, Mem):
        return [
            Uop(UopKind.LD, dst=T0, mem=b, addr_mode=AddrMode.REG_MEM),
            Uop(UopKind.ALU, alu=alu, srcs=(int(a), T0), writes_flags=True,
                addr_mode=AddrMode.REG_MEM),
        ]
    if isinstance(a, Mem):
        uops = [Uop(UopKind.LD, dst=T0, mem=a, addr_mode=AddrMode.REG_MEM)]
        if isinstance(b, Reg):
            uops.append(Uop(UopKind.ALU, alu=alu, srcs=(T0, int(b)),
                            writes_flags=True, addr_mode=AddrMode.REG_MEM))
        else:
            assert isinstance(b, Imm)
            uops.append(Uop(UopKind.ALU, alu=alu, srcs=(T0,), imm=b.value,
                            writes_flags=True, addr_mode=AddrMode.REG_MEM))
        return uops
    raise NotImplementedError(f"{op.value} form {a!r}, {b!r}")  # pragma: no cover


def _jump_uop(kind: UopKind, target) -> Uop:
    if isinstance(target, Imm):
        return Uop(kind, target=target.value)
    if isinstance(target, Reg):
        return Uop(UopKind.JMP_IND, srcs=(int(target),))
    raise NotImplementedError(f"unresolved jump target {target!r}")  # pragma: no cover
