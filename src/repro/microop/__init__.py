"""Micro-op layer: uop definitions and the CISC-to-RISC decoder."""

from .decoder import DecodePath, DecodeStats, Decoder
from .uops import (
    CAPABILITY_KINDS,
    MEMORY_KINDS,
    NUM_UREGS,
    T0,
    T1,
    AddrMode,
    AluOp,
    Uop,
    UopKind,
    ureg_name,
)

__all__ = [
    "AddrMode",
    "AluOp",
    "CAPABILITY_KINDS",
    "DecodePath",
    "DecodeStats",
    "Decoder",
    "MEMORY_KINDS",
    "NUM_UREGS",
    "T0",
    "T1",
    "Uop",
    "UopKind",
    "ureg_name",
]
