"""Workload construction toolkit.

The paper evaluates CHEx86 on the C/C++ subsets of SPEC CPU2017 and
PARSEC 2.1.  We cannot run those binaries, but CHEx86's costs are driven by
a small set of *behavioural drivers* the paper itself identifies:

* allocation volume, live-set size, and allocations-in-use per interval
  (Figure 3),
* temporal pointer-reload patterns — constant / stride / batch / repeat /
  random (Table II),
* the mix of pointer dereferences vs. plain compute, and
* alloc/free churn.

:class:`AsmBuilder` plus the ``phase_*`` helpers generate assembly programs
that reproduce those drivers; each benchmark module composes them with
per-benchmark parameters (``repro.workloads.spec`` / ``.parsec``).

Register conventions: ``r12`` holds the pointer-pool base, ``r10`` carries
the LCG state for randomized phases, ``r9``/``r11`` are phase-local, and
``r13``-``r15`` are never touched (reserved for ASan instrumentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..heap.library import heap_library_asm

#: LCG multiplier/increment (Knuth's MMIX) used by randomized phases.
LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407


@dataclass(frozen=True)
class Workload:
    """One runnable benchmark program."""

    name: str
    suite: str                       # "SPEC" or "PARSEC"
    source: str                      # full assembly text
    description: str
    threads: int = 1
    #: Entry label per thread (thread 0 runs "main").
    entry_labels: Tuple[str, ...] = ("main",)


class AsmBuilder:
    """Accumulates assembly text with unique-label management."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._globals: List[str] = []
        self._lines: List[str] = []
        self._label_counter = 0

    # -- low-level emission ----------------------------------------------------

    def global_(self, name: str, size: int, *init: int) -> str:
        init_text = "".join(f", {v}" for v in init)
        self._globals.append(f".global {name}, {size}{init_text}")
        return name

    def raw(self, text: str) -> None:
        self._lines.append(text)

    def op(self, text: str) -> None:
        self._lines.append("    " + text)

    def label(self, name: str) -> None:
        self._lines.append(f"{name}:")

    def fresh(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def source(self, extra_tail: str = "") -> str:
        return "\n".join(self._globals + self._lines) \
            + "\n" + extra_tail + heap_library_asm()

    # -- structured helpers -----------------------------------------------------

    def counted_loop(self, count: int, body, reg: str = "rcx",
                     step: int = 1) -> None:
        """Emit ``for reg in range(0, count, step): body(self)``."""
        top = self.fresh("loop")
        self.op(f"mov {reg}, 0")
        self.label(top)
        body(self)
        self.op(f"add {reg}, {step}")
        self.op(f"cmp {reg}, {count}")
        self.op(f"jne {top}")

    def lcg_next(self, dst: str = "r11", mask: Optional[int] = None) -> None:
        """Advance the r10 LCG; leave a (masked) value in ``dst``."""
        self.op(f"imul r10, {LCG_MUL}")
        self.op(f"add r10, {LCG_ADD}")
        self.op(f"mov {dst}, r10")
        self.op(f"shr {dst}, 33")
        if mask is not None:
            self.op(f"and {dst}, {mask}")


# ---------------------------------------------------------------------------
# Reusable behavioural phases.
# ---------------------------------------------------------------------------

def phase_alloc_pool(b: AsmBuilder, pool: str, count: int, size: int,
                     size_step: int = 0) -> None:
    """Allocate ``count`` buffers of ``size`` (+i*step) into ``pool``.

    Spills every pointer to the pool array — the canonical spilled-alias
    population step.
    """
    b.op(f"mov r12, [{pool}.addr]")
    loop = b.fresh("alloc")
    b.op("mov r9, 0")
    b.label(loop)
    if size_step:
        b.op("mov rdi, r9")
        b.op(f"imul rdi, {size_step}")
        b.op(f"add rdi, {size}")
    else:
        b.op(f"mov rdi, {size}")
    b.op("call malloc")
    b.op("mov [r12 + r9*8], rax")
    b.op("add r9, 1")
    b.op(f"cmp r9, {count}")
    b.op(f"jne {loop}")


def phase_free_pool(b: AsmBuilder, pool: str, count: int,
                    start: int = 0, step: int = 1) -> None:
    """Free pool entries ``start, start+step, ...`` below ``count``."""
    b.op(f"mov r12, [{pool}.addr]")
    loop = b.fresh("free")
    b.op(f"mov r9, {start}")
    b.label(loop)
    b.op("mov rdi, [r12 + r9*8]")
    b.op("call free")
    b.op("mov [r12 + r9*8], 0")
    b.op(f"add r9, {step}")
    b.op(f"cmp r9, {count}")
    b.op(f"jl {loop}")


def phase_stride_chase(b: AsmBuilder, pool: str, count: int, iters: int,
                       touches: int = 4) -> None:
    """Table II "Batch + Stride": reload buffer i, touch it, move to i+1."""
    b.op(f"mov r12, [{pool}.addr]")
    outer = b.fresh("stride_outer")
    inner = b.fresh("stride_inner")
    touch = b.fresh("stride_touch")
    b.op("mov r8, 0")
    b.label(outer)
    b.op("mov r9, 0")
    b.label(inner)
    b.op("mov rdx, 0")
    b.label(touch)
    # The spilled pointer is re-read for every dereference (register
    # pressure), so this PC's PID sequence is 1 1 1 2 2 2 ... — the
    # canonical Table II "Batch + Stride" site.
    b.op("mov rbx, [r12 + r9*8]")
    b.op("mov rax, [rbx + rdx*8]")
    b.op("mov [rsp - 8], rax")          # stack-local temporary (untracked)
    b.op("add rax, 1")
    b.op("mov r11, [rsp - 8]")
    b.op("add rax, r11")
    b.op("mov [rbx + rdx*8], rax")
    b.op("add rdx, 1")
    b.op(f"cmp rdx, {touches}")
    b.op(f"jne {touch}")
    b.op("add r9, 1")
    b.op(f"cmp r9, {count}")
    b.op(f"jne {inner}")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {outer}")


def phase_repeat_chase(b: AsmBuilder, pool: str, indices: Sequence[int],
                       iters: int) -> None:
    """Table II "Repeat": the same short buffer sequence, over and over."""
    b.op(f"mov r12, [{pool}.addr]")
    outer = b.fresh("repeat")
    b.op("mov r8, 0")
    b.label(outer)
    for index in indices:
        b.op(f"mov rbx, [r12 + {index * 8}]")
        b.op("mov rax, [rbx]")
        b.op("add rax, 1")
        b.op("mov [rbx], rax")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {outer}")


def phase_random_chase(b: AsmBuilder, pool: str, count_pow2: int,
                       iters: int) -> None:
    """Table II "Random": LCG-selected buffer each iteration.

    ``count_pow2`` must be a power of two (the index is masked).
    """
    assert count_pow2 & (count_pow2 - 1) == 0, "pool size must be 2^k"
    b.op(f"mov r12, [{pool}.addr]")
    loop = b.fresh("random")
    b.op("mov r8, 0")
    b.label(loop)
    b.lcg_next("r11", mask=count_pow2 - 1)
    b.op("mov rbx, [r12 + r11*8]")
    b.op("mov rax, [rbx + 8]")
    b.op("mov [rsp - 8], rax")          # stack-local temporary (untracked)
    b.op("add rax, 3")
    b.op("mov rdx, [rsp - 8]")
    b.op("add rax, rdx")
    b.op("mov [rbx + 8], rax")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {loop}")


def phase_linked_list(b: AsmBuilder, head_slot: str, nodes: int,
                      node_size: int = 32) -> None:
    """Build a linked list on the heap; head pointer spilled to a global.

    Node layout: [next, payload...].  Node sizes vary around ``node_size``
    (as real heap populations do), which keeps the nodes from stride-
    mapping into a fraction of the alias-cache sets.
    """
    b.op(f"mov r12, [{head_slot}.addr]")
    b.op("mov [r12], 0")
    loop = b.fresh("list_build")
    b.op("mov r9, 0")
    b.label(loop)
    b.op("mov rdi, r9")
    b.op("and rdi, 3")
    b.op("imul rdi, 16")
    b.op(f"add rdi, {node_size}")
    b.op("call malloc")
    b.op("mov rbx, [r12]")
    b.op("mov [rax], rbx")              # node.next = old head
    b.op("mov [rax + 8], r9")           # payload
    b.op("mov [r12], rax")              # head = node
    b.op("add r9, 1")
    b.op(f"cmp r9, {nodes}")
    b.op(f"jne {loop}")


def phase_list_walk(b: AsmBuilder, head_slot: str, iters: int) -> None:
    """Pointer-chase the list end to end, ``iters`` times (mcf-style)."""
    outer = b.fresh("walk_outer")
    inner = b.fresh("walk_inner")
    done = b.fresh("walk_done")
    b.op(f"mov r12, [{head_slot}.addr]")
    b.op("mov r8, 0")
    b.label(outer)
    b.op("mov rbx, [r12]")
    b.label(inner)
    b.op("cmp rbx, 0")
    b.op(f"je {done}")
    b.op("mov rax, [rbx + 8]")
    b.op("mov [rsp - 8], rax")          # stack-local temporary (untracked)
    b.op("add rax, 1")
    b.op("mov rdx, [rsp - 8]")
    b.op("xor rdx, rax")
    b.op("mov [rbx + 8], rax")
    b.op("mov rbx, [rbx]")              # follow next
    b.op(f"jmp {inner}")
    b.label(done)
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {outer}")


def phase_array_sweep(b: AsmBuilder, buffer_slot: str, words: int,
                      iters: int) -> None:
    """Stream over one large buffer (lbm/blackscholes-style)."""
    outer = b.fresh("sweep_outer")
    inner = b.fresh("sweep_inner")
    b.op(f"mov r11, [{buffer_slot}.addr]")
    b.op("mov rbx, [r11]")
    b.op("mov r8, 0")
    b.label(outer)
    b.op("mov r9, 0")
    b.label(inner)
    b.op("mov rax, [rbx + r9*8]")
    b.op("imul rax, 3")
    b.op("mov [rsp - 8], rax")          # stack-local temporary (untracked)
    b.op("add rax, 7")
    b.op("mov rdx, [rsp - 8]")
    b.op("xor rax, rdx")
    b.op("mov [rbx + r9*8], rax")
    b.op("add r9, 1")
    b.op(f"cmp r9, {words}")
    b.op(f"jne {inner}")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {outer}")


def phase_churn(b: AsmBuilder, size: int, iters: int) -> None:
    """malloc/use/free cycles (xalancbmk-style churn)."""
    loop = b.fresh("churn")
    b.op("mov r8, 0")
    b.label(loop)
    b.op(f"mov rdi, {size}")
    b.op("call malloc")
    b.op("mov [rax], r8")
    b.op("mov rbx, [rax]")
    b.op("mov rdi, rax")
    b.op("call free")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {loop}")


def phase_compute(b: AsmBuilder, iters: int) -> None:
    """ALU work plus register spills to the stack.

    Dilutes heap-pointer activity the way real compute phases do; the
    stack traffic is *untracked* (PID 0), so it separates the always-on
    policy (which still checks it) from prediction-driven surgical
    injection (which does not) — the always-on vs. prediction gap of
    Figure 6.
    """
    loop = b.fresh("compute")
    b.op("mov r8, 0")
    b.op("mov rax, 1")
    b.op("mov rdx, 3")
    b.label(loop)
    b.op("push rdx")                  # callee-saved spill (untracked)
    b.op("imul rax, rdx")
    b.op("add rax, 17")
    b.op("mov [rsp - 16], rax")       # local temporary on the stack
    b.op("shr rax, 1")
    b.op("mov rdx, [rsp - 16]")
    b.op("xor rax, r8")
    b.op("pop rdx")
    b.op("add r8, 1")
    b.op(f"cmp r8, {iters}")
    b.op(f"jne {loop}")


def standard_prologue(b: AsmBuilder, seed: int = 0x1234) -> None:
    b.label("main")
    b.op("nop")
    b.op(f"mov r10, {seed}")


def standard_epilogue(b: AsmBuilder) -> None:
    b.op("halt")
