"""Synthetic analogues of the SPEC CPU2017 C/C++ benchmarks.

Each builder reproduces the published behavioural profile of its namesake —
the allocation-volume ordering of Figure 3 (xalancbmk and gcc allocate the
most, lbm almost nothing), the temporal reload patterns of Table II
(perlbench is the heaviest "Batch + Stride" benchmark, sjeng and lbm are
"Constant"), and the paper's characterization of mcf/xalancbmk/leela as the
pointer-intensive outliers that dominate CHEx86's average overhead.
"""

from __future__ import annotations

from .base import (
    AsmBuilder,
    Workload,
    phase_alloc_pool,
    phase_array_sweep,
    phase_churn,
    phase_compute,
    phase_free_pool,
    phase_linked_list,
    phase_list_walk,
    phase_random_chase,
    phase_repeat_chase,
    phase_stride_chase,
    standard_epilogue,
    standard_prologue,
)


def perlbench(scale: int = 1) -> Workload:
    """Interpreter-style: many small allocations, dominant Batch+Stride."""
    b = AsmBuilder("perlbench")
    b.global_("pool", 64 * 8)
    standard_prologue(b, seed=0x5EED1)
    phase_alloc_pool(b, "pool", 64, 32)
    phase_stride_chase(b, "pool", 64, iters=4 * scale, touches=3)
    phase_repeat_chase(b, "pool", (3, 9, 17), iters=120 * scale)
    phase_churn(b, 48, iters=160 * scale)
    phase_compute(b, iters=400 * scale)
    phase_free_pool(b, "pool", 64)
    standard_epilogue(b)
    return Workload("perlbench", "SPEC", b.source(),
                    "hash/string interpreter profile: small allocations, "
                    "batch+stride reloads, alloc churn")


def gcc(scale: int = 1) -> Workload:
    """Compiler-style: high allocation volume, varied sizes, branchy."""
    b = AsmBuilder("gcc")
    b.global_("pool", 128 * 8)
    standard_prologue(b, seed=0x6CC)
    phase_alloc_pool(b, "pool", 128, 24, size_step=8)
    phase_stride_chase(b, "pool", 128, iters=2 * scale, touches=2)
    phase_free_pool(b, "pool", 128, start=1, step=2)   # free odd entries
    phase_churn(b, 64, iters=220 * scale)
    phase_repeat_chase(b, "pool", (0, 2, 4, 6), iters=80 * scale)
    phase_compute(b, iters=300 * scale)
    phase_free_pool(b, "pool", 128, start=0, step=2)
    standard_epilogue(b)
    return Workload("gcc", "SPEC", b.source(),
                    "IR-node profile: high allocation volume in varied "
                    "sizes, partial frees, mixed reload patterns")


def mcf(scale: int = 1) -> Workload:
    """Network simplex: pointer chasing over a large live node set."""
    b = AsmBuilder("mcf")
    b.global_("head", 16)
    b.global_("arcs", 32 * 8)
    standard_prologue(b, seed=0x3CF)
    phase_linked_list(b, "head", nodes=192, node_size=32)
    phase_list_walk(b, "head", iters=6 * scale)
    phase_alloc_pool(b, "arcs", 32, 64)
    phase_random_chase(b, "arcs", 32, iters=500 * scale)
    phase_list_walk(b, "head", iters=4 * scale)
    standard_epilogue(b)
    return Workload("mcf", "SPEC", b.source(),
                    "min-cost-flow profile: long pointer chases over a "
                    "large live set, memory-bound")


def xalancbmk(scale: int = 1) -> Workload:
    """XML transformer: extreme allocation churn, pointer-intensive."""
    b = AsmBuilder("xalancbmk")
    b.global_("pool", 64 * 8)
    standard_prologue(b, seed=0xA1A)
    phase_churn(b, 40, iters=500 * scale)
    phase_alloc_pool(b, "pool", 64, 40)
    phase_stride_chase(b, "pool", 64, iters=5 * scale, touches=4)
    phase_free_pool(b, "pool", 64)
    phase_churn(b, 56, iters=300 * scale)
    standard_epilogue(b)
    return Workload("xalancbmk", "SPEC", b.source(),
                    "DOM-node profile: the heaviest alloc/free churn and "
                    "pointer dereference density in the suite")


def deepsjeng(scale: int = 1) -> Workload:
    """Chess search: few allocations, repeated table probing (Constant)."""
    b = AsmBuilder("deepsjeng")
    b.global_("tables", 8 * 8)
    standard_prologue(b, seed=0xDEE9)
    phase_alloc_pool(b, "tables", 8, 1024)
    phase_random_chase(b, "tables", 8, iters=700 * scale)
    phase_repeat_chase(b, "tables", (0, 0, 0, 1), iters=200 * scale)
    phase_compute(b, iters=900 * scale)
    standard_epilogue(b)
    return Workload("deepsjeng", "SPEC", b.source(),
                    "transposition-table profile: a handful of large "
                    "allocations probed repeatedly, compute heavy")


def leela(scale: int = 1, libstdcxx_constant_deref: bool = False) -> Workload:
    """Go engine: tree node churn; optionally the statically-linked
    libstdc++ constant-address idiom that causes the paper's one false
    positive (Section VII-B)."""
    b = AsmBuilder("leela")
    b.global_("nodes", 64 * 8)
    b.global_("iostate", 32, 7, 7)
    standard_prologue(b, seed=0x1EE1A)
    phase_alloc_pool(b, "nodes", 64, 48)
    phase_stride_chase(b, "nodes", 64, iters=3 * scale, touches=2)
    phase_free_pool(b, "nodes", 64, start=0, step=2)
    phase_churn(b, 48, iters=250 * scale)
    phase_repeat_chase(b, "nodes", (1, 3, 5), iters=100 * scale)
    if libstdcxx_constant_deref:
        # Statically-linked libstdc++ moves a constant integer address into
        # a register and dereferences it (the benign-but-flagged idiom).
        iostate = b.global_("iostate2", 16, 42)
        b.op(f"movabs rbx, {0x600000}")  # placeholder; patched below
        b.raw("    ; constant-address dereference (false-positive path)")
        b.op("mov rax, [rbx]")
    phase_compute(b, iters=500 * scale)
    standard_epilogue(b)
    source = b.source()
    if libstdcxx_constant_deref:
        # Point the constant at the real iostate2 address.
        program_probe = __import__("repro.isa", fromlist=["assemble"]) \
            .assemble(source, name="leela-probe")
        address = next(g.address for g in program_probe.globals
                       if g.name == "iostate2")
        source = source.replace(f"movabs rbx, {0x600000}",
                                f"movabs rbx, {address}")
    return Workload("leela", "SPEC", source,
                    "MCTS tree profile: node churn with partial frees; "
                    "optional constant-dereference false-positive path")


def lbm(scale: int = 1) -> Workload:
    """Lattice Boltzmann: one big grid, streaming sweeps, no churn."""
    b = AsmBuilder("lbm")
    b.global_("grid", 16)
    standard_prologue(b, seed=0x1B3)
    b.op("mov rdi, 16384")
    b.op("call malloc")
    b.op("mov r11, [grid.addr]")
    b.op("mov [r11], rax")
    phase_array_sweep(b, "grid", words=1024, iters=6 * scale)
    phase_compute(b, iters=600 * scale)
    standard_epilogue(b)
    return Workload("lbm", "SPEC", b.source(),
                    "stencil profile: two allocations, streaming sweeps, "
                    "negligible pointer activity (Constant pattern)")


def nab(scale: int = 1) -> Workload:
    """Molecular dynamics: moderate arrays + arithmetic."""
    b = AsmBuilder("nab")
    b.global_("arrays", 16 * 8)
    standard_prologue(b, seed=0x4AB)
    phase_alloc_pool(b, "arrays", 16, 256)
    phase_stride_chase(b, "arrays", 16, iters=6 * scale, touches=6)
    phase_compute(b, iters=800 * scale)
    phase_random_chase(b, "arrays", 16, iters=200 * scale)
    phase_free_pool(b, "arrays", 16)
    standard_epilogue(b)
    return Workload("nab", "SPEC", b.source(),
                    "force-field profile: medium arrays, strided access, "
                    "arithmetic heavy")


#: The SPEC CPU2017 C/C++ benchmarks of the paper, in Figure 6 order.
SPEC_BUILDERS = {
    "perlbench": perlbench,
    "gcc": gcc,
    "mcf": mcf,
    "xalancbmk": xalancbmk,
    "deepsjeng": deepsjeng,
    "leela": leela,
    "lbm": lbm,
    "nab": nab,
}
