"""Synthetic SPEC CPU2017 / PARSEC 2.1 benchmark analogues."""

from __future__ import annotations

from typing import List

from .base import AsmBuilder, Workload
from .parsec import DEFAULT_THREADS, PARSEC_BUILDERS
from .spec import SPEC_BUILDERS

#: Benchmarks in the order Figure 6 plots them.
BENCHMARK_ORDER = (
    "perlbench", "gcc", "mcf", "xalancbmk", "deepsjeng", "leela", "lbm",
    "nab", "blackscholes", "bodytrack", "fluidanimate", "freqmine",
    "swaptions", "canneal",
)

SPEC_NAMES = tuple(SPEC_BUILDERS)
PARSEC_NAMES = tuple(PARSEC_BUILDERS)


def build(name: str, scale: int = 1, **kwargs) -> Workload:
    """Build one benchmark by name."""
    if name in SPEC_BUILDERS:
        return SPEC_BUILDERS[name](scale, **kwargs)
    if name in PARSEC_BUILDERS:
        return PARSEC_BUILDERS[name](scale, **kwargs)
    raise KeyError(f"unknown benchmark {name!r}; "
                   f"choose from {BENCHMARK_ORDER}")


def build_all(scale: int = 1) -> List[Workload]:
    """All 14 paper benchmarks, Figure 6 order."""
    return [build(name, scale) for name in BENCHMARK_ORDER]


__all__ = [
    "AsmBuilder",
    "BENCHMARK_ORDER",
    "DEFAULT_THREADS",
    "PARSEC_BUILDERS",
    "PARSEC_NAMES",
    "SPEC_BUILDERS",
    "SPEC_NAMES",
    "Workload",
    "build",
    "build_all",
]
