"""Synthetic analogues of the PARSEC 2.1 benchmarks (multithreaded).

Each builder emits one program containing per-thread code regions: thread 0
enters at ``main``, thread *k* at ``worker<k>``.  Threads work on disjoint
partitions (separate pools), but share the process heap, capability table
and alias table — so frees and alias stores generate the cross-core
invalidation traffic Sections IV-C / V-C describe.
"""

from __future__ import annotations

from typing import Callable, List

from .base import (
    AsmBuilder,
    Workload,
    phase_alloc_pool,
    phase_array_sweep,
    phase_churn,
    phase_compute,
    phase_free_pool,
    phase_linked_list,
    phase_list_walk,
    phase_random_chase,
    phase_repeat_chase,
    phase_stride_chase,
)

#: Threads per PARSEC workload (the paper runs them multithreaded).
DEFAULT_THREADS = 4


def _threaded(name: str, description: str, threads: int,
              emit_thread: Callable[[AsmBuilder, int], None]) -> Workload:
    """Assemble a program with one entry label per thread."""
    b = AsmBuilder(name)
    entries: List[str] = []
    for tid in range(threads):
        entry = "main" if tid == 0 else f"worker{tid}"
        entries.append(entry)
        b.label(entry)
        b.op("nop")
        b.op(f"mov r10, {0xBEEF + tid * 7919}")
        emit_thread(b, tid)
        b.op("halt")
    return Workload(name, "PARSEC", b.source(), description,
                    threads=threads, entry_labels=tuple(entries))


def blackscholes(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """Option pricing: embarrassingly parallel compute, few allocations."""
    builder_globals = {}

    def emit(b: AsmBuilder, tid: int) -> None:
        slot = f"opts_t{tid}"
        if slot not in builder_globals:
            b.global_(slot, 16)
            builder_globals[slot] = True
        b.op("mov rdi, 4096")
        b.op("call malloc")
        b.op(f"mov r11, [{slot}.addr]")
        b.op("mov [r11], rax")
        phase_array_sweep(b, slot, words=256, iters=4 * scale)
        phase_compute(b, iters=900 * scale)

    return _threaded("blackscholes",
                     "per-thread option arrays, compute dominated",
                     threads, emit)


def bodytrack(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """Vision pipeline: per-frame allocation batches, freed each frame."""

    def emit(b: AsmBuilder, tid: int) -> None:
        pool = f"frame_t{tid}"
        b.global_(pool, 16 * 8)
        frame = b.fresh("frame")
        b.op("mov rbp, 0")
        b.label(frame)
        phase_alloc_pool(b, pool, 16, 64)
        phase_stride_chase(b, pool, 16, iters=1, touches=3)
        phase_free_pool(b, pool, 16)
        b.op("add rbp, 1")
        b.op(f"cmp rbp, {6 * scale}")
        b.op(f"jne {frame}")
        phase_compute(b, iters=300 * scale)

    return _threaded("bodytrack",
                     "per-frame allocate/track/free batches",
                     threads, emit)


def fluidanimate(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """Particle simulation: cell lists with pointer respilling."""

    def emit(b: AsmBuilder, tid: int) -> None:
        cells = f"cells_t{tid}"
        b.global_(cells, 32 * 8)
        phase_alloc_pool(b, cells, 32, 48)
        phase_stride_chase(b, cells, 32, iters=3 * scale, touches=4)
        # Particles migrate between cells: pointers are re-spilled, which
        # exercises alias-cache coherence across cores.
        shuffle = b.fresh("migrate")
        b.op("mov r8, 0")
        b.label(shuffle)
        b.lcg_next("r11", mask=31)
        b.op("mov rbx, [r12 + r11*8]")
        b.lcg_next("r9", mask=31)
        b.op("mov rdx, [r12 + r9*8]")
        b.op("mov [r12 + r11*8], rdx")
        b.op("mov [r12 + r9*8], rbx")
        b.op("add r8, 1")
        b.op(f"cmp r8, {120 * scale}")
        b.op(f"jne {shuffle}")
        phase_free_pool(b, cells, 32)

    return _threaded("fluidanimate",
                     "cell lists with heavy pointer respilling/migration",
                     threads, emit)


def freqmine(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """FP-growth mining: tree construction, allocation heavy."""

    def emit(b: AsmBuilder, tid: int) -> None:
        head = f"tree_t{tid}"
        b.global_(head, 16)
        phase_linked_list(b, head, nodes=96, node_size=32)
        phase_list_walk(b, head, iters=4 * scale)
        phase_churn(b, 32, iters=200 * scale)

    return _threaded("freqmine",
                     "per-thread FP-tree construction and walks",
                     threads, emit)


def swaptions(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """HJM Monte-Carlo: per-trial simulation buffer churn + compute."""

    def emit(b: AsmBuilder, tid: int) -> None:
        trial = b.fresh("trial")
        b.op("mov rbp, 0")
        b.label(trial)
        b.op("mov rdi, 512")
        b.op("call malloc")
        b.op("mov rbx, rax")
        inner = b.fresh("sim")
        b.op("mov r9, 0")
        b.label(inner)
        b.op("mov rax, [rbx + r9*8]")
        b.op("imul rax, 5")
        b.op("add rax, 11")
        b.op("mov [rbx + r9*8], rax")
        b.op("add r9, 1")
        b.op("cmp r9, 32")
        b.op(f"jne {inner}")
        b.op("mov rdi, rbx")
        b.op("call free")
        b.op("add rbp, 1")
        b.op(f"cmp rbp, {25 * scale}")
        b.op(f"jne {trial}")
        phase_compute(b, iters=500 * scale)

    return _threaded("swaptions",
                     "per-trial buffer allocate/simulate/free",
                     threads, emit)


def canneal(scale: int = 1, threads: int = DEFAULT_THREADS) -> Workload:
    """Simulated annealing: random element picks and pointer swaps."""

    def emit(b: AsmBuilder, tid: int) -> None:
        pool = f"elems_t{tid}"
        b.global_(pool, 64 * 8)
        phase_alloc_pool(b, pool, 64, 32)
        phase_random_chase(b, pool, 64, iters=500 * scale)
        phase_repeat_chase(b, pool, (7, 21, 42), iters=60 * scale)

    return _threaded("canneal",
                     "random-order element accesses (Random pattern)",
                     threads, emit)


#: The PARSEC benchmarks of the paper, in Figure 6 order.
PARSEC_BUILDERS = {
    "blackscholes": blackscholes,
    "bodytrack": bodytrack,
    "fluidanimate": fluidanimate,
    "freqmine": freqmine,
    "swaptions": swaptions,
    "canneal": canneal,
}
