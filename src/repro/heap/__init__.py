"""Heap substrate: the exploitable allocator and the registered library."""

from .allocator import (
    ALIGN,
    HEADER_BYTES,
    HOSTOP_UOP_COST,
    INUSE_BIT,
    AllocationRecord,
    HeapAllocator,
    HeapStats,
)
from .library import (
    HEAP_FUNCTIONS,
    HeapFnKind,
    RegisteredFunction,
    heap_library_asm,
    host_dispatch_table,
    registrations_for,
)

__all__ = [
    "ALIGN",
    "AllocationRecord",
    "HEADER_BYTES",
    "HEAP_FUNCTIONS",
    "HOSTOP_UOP_COST",
    "HeapAllocator",
    "HeapFnKind",
    "HeapStats",
    "INUSE_BIT",
    "RegisteredFunction",
    "heap_library_asm",
    "host_dispatch_table",
    "registrations_for",
]
