"""The heap-management *library*: assembly stubs plus MSR registration info.

CHEx86 intercepts the **entry and exit instruction addresses** of registered
heap-management functions (Section IV-C, *Initial Configuration*): the OS
kernel programs model-specific registers with those addresses and the
functions' signatures (which argument registers carry the size / the pointer
being freed).  This module provides:

* the assembly text of the library routines (each is an entry label, a
  ``hostop`` that runs the allocator on the simulated heap, and a ``ret``
  whose address is the registered exit point);
* :class:`RegisteredFunction` descriptors — what the MSRs hold;
* :func:`registrations_for` to derive the MSR contents from an assembled
  program's label addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..isa.instructions import INSTR_SLOT
from ..isa.program import Program
from ..isa.registers import Reg


class HeapFnKind(enum.Enum):
    """What capability action a registered function implies."""

    ALLOC = "alloc"      # malloc, calloc
    FREE = "free"        # free
    REALLOC = "realloc"  # frees the old capability, generates a new one


@dataclass(frozen=True)
class RegisteredFunction:
    """One MSR-registered heap function: addresses plus signature."""

    name: str
    kind: HeapFnKind
    entry: int
    exit: int
    #: Registers whose product is the requested size (malloc: (rdi,);
    #: calloc: (rdi, rsi); realloc: (rsi,)).  Empty for free.
    size_regs: Tuple[Reg, ...]
    #: Register carrying the pointer being freed (free/realloc), else None.
    ptr_reg: Reg = None


#: (label, hostop name, kind, size regs, ptr reg) for the standard library.
_LIBRARY_SPEC = (
    ("malloc", "heap_malloc", HeapFnKind.ALLOC, (Reg.RDI,), None),
    ("calloc", "heap_calloc", HeapFnKind.ALLOC, (Reg.RDI, Reg.RSI), None),
    ("realloc", "heap_realloc", HeapFnKind.REALLOC, (Reg.RSI,), Reg.RDI),
    ("free", "heap_free", HeapFnKind.FREE, (), Reg.RDI),
)

#: Names of the library's entry labels.
HEAP_FUNCTIONS = tuple(spec[0] for spec in _LIBRARY_SPEC)


def heap_library_asm() -> str:
    """Assembly text of the heap library, appended to every program."""
    lines: List[str] = []
    for label, host_name, _, _, _ in _LIBRARY_SPEC:
        lines.append(f"{label}:")
        lines.append(f"    hostop {host_name}")
        lines.append("    ret")
    return "\n".join(lines) + "\n"


def registrations_for(program: Program) -> List[RegisteredFunction]:
    """Derive the MSR registration set from a program's label addresses.

    Only functions the program actually links (labels present) register —
    the paper notes a model-specific limit on entry/exit registrations per
    process; four is comfortably within it.
    """
    registrations: List[RegisteredFunction] = []
    for label, _, kind, size_regs, ptr_reg in _LIBRARY_SPEC:
        entry = program.labels.get(label)
        if entry is None:
            continue
        # Stub shape is `hostop ; ret`: the exit point is the ret slot.
        exit_addr = entry + INSTR_SLOT
        registrations.append(
            RegisteredFunction(
                name=label, kind=kind, entry=entry, exit=exit_addr,
                size_regs=tuple(size_regs), ptr_reg=ptr_reg,
            )
        )
    return registrations


def host_dispatch_table(allocator) -> Dict[str, "callable"]:
    """Map hostop names to allocator calls following the ABI.

    Each host routine reads its arguments from and writes its result to the
    machine's architectural registers — the same registers the MCU's
    ``capGen``/``capFree`` micro-ops snoop.
    """

    def heap_malloc(regs: List[int]) -> None:
        regs[Reg.RAX] = allocator.malloc(regs[Reg.RDI])

    def heap_calloc(regs: List[int]) -> None:
        regs[Reg.RAX] = allocator.calloc(regs[Reg.RDI], regs[Reg.RSI])

    def heap_realloc(regs: List[int]) -> None:
        regs[Reg.RAX] = allocator.realloc(regs[Reg.RDI], regs[Reg.RSI])

    def heap_free(regs: List[int]) -> None:
        allocator.free(regs[Reg.RDI])
        regs[Reg.RAX] = 0

    return {
        "heap_malloc": heap_malloc,
        "heap_calloc": heap_calloc,
        "heap_realloc": heap_realloc,
        "heap_free": heap_free,
    }
