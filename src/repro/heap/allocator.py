"""Free-list heap allocator operating on simulated memory.

This models the exploitable core of a classic high-performance allocator
(glibc-style fastbins before hardening): chunk headers and free-list ``fd``
pointers live *in the simulated heap itself*, so temporal-safety exploits in
``repro.exploits.how2heap`` behave exactly like their real counterparts:

* a use-after-free write to a freed chunk corrupts its ``fd`` pointer and a
  later ``malloc`` of the same size class returns an attacker-chosen address;
* a double free inserts a chunk into its bin twice ("fastbin dup");
* an invalid free pushes a fake chunk onto a bin.

The allocator performs **no** integrity checks — the paper's point is that
CHEx86 catches the *violation* (UAF, double free, invalid free) before the
metadata corruption can be weaponized.

Chunk layout (16-byte aligned)::

    base + 0 : header word = chunk_size | INUSE_BIT
    base + 8 : user data ...      (when free: fd pointer to next bin chunk)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.program import HEAP_BASE
from ..memory.memory import Memory

HEADER_BYTES = 8
ALIGN = 16
INUSE_BIT = 1
SIZE_MASK = ~0xF

#: Host-routine cost model: executing malloc/free in a real allocator costs
#: on the order of a hundred instructions; the pipeline charges this many
#: equivalent micro-ops per HOSTOP so allocation-heavy workloads pay for it.
HOSTOP_UOP_COST = {
    "heap_malloc": 90,
    "heap_calloc": 120,
    "heap_realloc": 150,
    "heap_free": 60,
}


@dataclass
class AllocationRecord:
    """Host-side log entry for one allocation (profiling ground truth).

    This is *observer* state — the simulated program and the exploits only
    interact with the in-memory chunk metadata.  The hardware checker
    co-processor (``repro.core.checker``) also uses this log as its
    exhaustive search space.
    """

    serial: int
    address: int
    size: int
    freed: bool = False


@dataclass
class HeapStats:
    """Counters feeding the Figure 3 allocation-behaviour profile."""

    total_allocs: int = 0
    total_frees: int = 0
    failed_allocs: int = 0
    live: int = 0
    max_live: int = 0
    bytes_allocated: int = 0

    def on_alloc(self, size: int) -> None:
        self.total_allocs += 1
        self.live += 1
        self.bytes_allocated += size
        if self.live > self.max_live:
            self.max_live = self.live

    def on_free(self) -> None:
        self.total_frees += 1
        self.live -= 1

    def register_metrics(self, registry, prefix: str = "heap") -> None:
        """Expose the allocator counters as ``<prefix>.*`` gauges.

        The allocator is *system*-shared: in a multicore run every core's
        registry reads the same object, so the metrics merge with
        ``last`` (one copy), never summed across cores.
        """
        from ..telemetry.registry import MERGE_LAST

        registry.register_object(prefix, self, (
            "total_allocs", "total_frees", "failed_allocs", "live",
            "max_live", "bytes_allocated"), merge=MERGE_LAST)


class HeapAllocator:
    """The allocator backing the registered heap-management routines."""

    def __init__(
        self,
        memory: Memory,
        base: int = HEAP_BASE,
        limit: int = 64 << 20,
    ) -> None:
        self.memory = memory
        self.base = base
        self.limit = base + limit
        self._top = base  # wilderness pointer
        self._bins: Dict[int, int] = {}  # size class -> chunk base (0 = empty)
        self.stats = HeapStats()
        self.records: List[AllocationRecord] = []
        self._by_address: Dict[int, AllocationRecord] = {}

    # -- the four library entry points ---------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the user pointer, 0 on failure."""
        if size <= 0:
            self.stats.failed_allocs += 1
            return 0
        chunk_size = self._chunk_size(size)
        base = self._pop_bin(chunk_size)
        if base == 0:
            base = self._extend_wilderness(chunk_size)
            if base == 0:
                self.stats.failed_allocs += 1
                return 0
        self.memory.write_word(base, chunk_size | INUSE_BIT)
        user = base + HEADER_BYTES
        self._record_alloc(user, size)
        return user

    def calloc(self, count: int, size: int) -> int:
        """Allocate and zero ``count * size`` bytes."""
        total = count * size
        user = self.malloc(total)
        if user:
            words = (total + 7) // 8
            self.memory.fill_words(user, [0] * words, metered=True)
        return user

    def free(self, user: int) -> None:
        """Release the allocation at ``user``.  No validation whatsoever."""
        if user == 0:
            return  # free(NULL) is defined as a no-op
        base = user - HEADER_BYTES
        header = self.memory.read_word(base)
        chunk_size = header & SIZE_MASK
        if chunk_size == 0:
            # Fake chunk with a zero header: still push it, bucketed at the
            # minimum class (the exploitable invalid-free path).
            chunk_size = ALIGN * 2
        self.memory.write_word(base, chunk_size)  # clear INUSE
        # Push onto the bin: fd written INTO the (now free) user area.
        head = self._bins.get(chunk_size, 0)
        self.memory.write_word(user, head)
        self._bins[chunk_size] = base
        self._record_free(user)

    def realloc(self, user: int, size: int) -> int:
        """Resize: allocate-copy-free (the simple allocator strategy)."""
        if user == 0:
            return self.malloc(size)
        if size <= 0:
            self.free(user)
            return 0
        old_base = user - HEADER_BYTES
        old_chunk = self.memory.read_word(old_base) & SIZE_MASK
        old_user_bytes = max(old_chunk - HEADER_BYTES, 0)
        new_user = self.malloc(size)
        if new_user:
            words = (min(old_user_bytes, size) + 7) // 8
            for i in range(words):
                self.memory.write_word(
                    new_user + i * 8, self.memory.read_word(user + i * 8)
                )
            self.free(user)
        return new_user

    # -- introspection (host-side ground truth) ---------------------------------

    def record_for(self, address: int) -> Optional[AllocationRecord]:
        """Record of the allocation whose user area contains ``address``.

        This is the exhaustive search the hardware checker performs over all
        tracked blocks, live *and* freed (Section V-A).
        """
        # Exact user-pointer hit first (cheap, common).
        record = self._by_address.get(address)
        if record is not None:
            return record
        for record in reversed(self.records):
            if record.address <= address < record.address + record.size:
                return record
        return None

    @property
    def wilderness(self) -> int:
        return self._top

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _chunk_size(user_size: int) -> int:
        raw = user_size + HEADER_BYTES
        return max((raw + ALIGN - 1) // ALIGN * ALIGN, ALIGN * 2)

    def _pop_bin(self, chunk_size: int) -> int:
        head = self._bins.get(chunk_size, 0)
        if head == 0:
            return 0
        # fd pointer lives in the chunk's user area — trusting it blindly is
        # exactly what makes fastbin-dup style exploits possible.
        fd = self.memory.read_word(head + HEADER_BYTES)
        self._bins[chunk_size] = fd
        return head

    def _extend_wilderness(self, chunk_size: int) -> int:
        if self._top + chunk_size > self.limit:
            return 0
        base = self._top
        self._top += chunk_size
        return base

    def _record_alloc(self, user: int, size: int) -> None:
        self.stats.on_alloc(size)
        record = AllocationRecord(len(self.records), user, size)
        self.records.append(record)
        self._by_address[user] = record

    def _record_free(self, user: int) -> None:
        self.stats.on_free()
        record = self._by_address.get(user)
        if record is not None and not record.freed:
            record.freed = True
