"""Interactive machine debugger: ``python -m repro debug prog.s``.

A gdb-flavoured REPL over :class:`~repro.core.machine.Chex86Machine` for
stepping programs under CHEx86 and inspecting the shadow state the paper
adds — capabilities, PID tags, spilled aliases — next to the architectural
state.

Commands::

    s / step [N]     execute N macro instructions (default 1)
    c / continue     run until halt, violation, or budget
    r / regs         architectural registers (with PID tags)
    d / disasm       disassembly window around the current rip
    caps             shadow capability table (most recent entries)
    aliases          live spilled-pointer aliases
    mem ADDR [N]     dump N words at ADDR
    stats            machine statistics summary
    why              diagnostic report for the last violation
    q / quit         leave

Scriptable: commands are read from stdin, so ``echo "s 10\\nregs\\nq" |
python -m repro debug prog.s`` works in pipelines and tests.
"""

from __future__ import annotations

import sys
from typing import Callable, List

from .analysis.diagnostics import explain_violation
from .core.capability import WILD_PID
from .core.machine import Chex86Machine
from .core.variants import Variant
from .isa.disasm import format_instr
from .isa.program import Program
from .isa.registers import Reg


class Debugger:
    """The REPL; IO is injectable for tests."""

    def __init__(self, machine: Chex86Machine,
                 write: Callable[[str], None] = None) -> None:
        self.machine = machine
        self._write = write if write is not None else _stdout_write
        self._budget = 2_000_000

    # -- the loop -----------------------------------------------------------

    def repl(self, lines) -> None:
        self._write(f"chex86-dbg: {self.machine.program.name!r} under "
                    f"{self.machine.variant.value}; 'q' quits, empty line "
                    f"repeats 'step'")
        self.cmd_disasm([])
        last = ["step"]
        for raw in lines:
            parts = raw.strip().split()
            if parts:
                last = parts
            command, args = last[0].lower(), last[1:]
            if command in ("q", "quit", "exit"):
                break
            try:
                self.dispatch(command, args)
            except Exception as exc:  # robust REPL: report, keep going
                self._write(f"error: {exc}")
            if self.machine.halted:
                self._write("(machine halted)")

    def dispatch(self, command: str, args: List[str]) -> None:
        handlers = {
            "s": self.cmd_step, "step": self.cmd_step,
            "c": self.cmd_continue, "continue": self.cmd_continue,
            "r": self.cmd_regs, "regs": self.cmd_regs,
            "d": self.cmd_disasm, "disasm": self.cmd_disasm,
            "caps": self.cmd_caps,
            "aliases": self.cmd_aliases,
            "mem": self.cmd_mem,
            "stats": self.cmd_stats,
            "why": self.cmd_why,
        }
        handler = handlers.get(command)
        if handler is None:
            self._write(f"unknown command {command!r} "
                        f"(try: {', '.join(sorted(handlers))})")
            return
        handler(args)

    # -- commands ----------------------------------------------------------------

    def cmd_step(self, args: List[str]) -> None:
        count = int(args[0]) if args else 1
        executed = self.machine.run_quantum(count)
        self._write(f"stepped {executed} instruction(s)")
        self.cmd_disasm([])

    def cmd_continue(self, _args: List[str]) -> None:
        executed = self.machine.run_quantum(self._budget)
        self._write(f"ran {executed} instruction(s); "
                    f"{self.machine.violations.count()} violation(s)")
        if self.machine.violations.flagged:
            self.cmd_why([])

    def cmd_regs(self, _args: List[str]) -> None:
        machine = self.machine
        for row_start in range(0, 16, 4):
            cells = []
            for index in range(row_start, row_start + 4):
                reg = Reg(index)
                value = machine.regs[index]
                pid = machine.tracker.current_pid(index) \
                    if machine.traits.tracks_pointers else 0
                tag = ""
                if pid == WILD_PID:
                    tag = " [wild]"
                elif pid:
                    tag = f" [pid {pid}]"
                cells.append(f"{reg.name.lower():>3}={value:#014x}{tag}")
            self._write("  ".join(cells))

    def cmd_disasm(self, _args: List[str]) -> None:
        machine = self.machine
        program = machine.program
        labels_by_address = {a: n for n, a in program.labels.items()}
        try:
            index = program.index_of(machine.rip)
        except ValueError:
            self._write(f"rip={machine.rip:#x} (outside text)")
            return
        for i in range(max(0, index - 2), min(len(program), index + 3)):
            address = program.address_of(i)
            label = labels_by_address.get(address)
            if label and program.instrs[i].label == label:
                self._write(f"{label}:")
            marker = "=>" if i == index else "  "
            self._write(f"{marker} {address:#x}:  "
                        f"{format_instr(program.fetch(address), labels_by_address)}")

    def cmd_caps(self, args: List[str]) -> None:
        limit = int(args[0]) if args else 10
        capabilities = list(self.machine.captable)
        self._write(f"{len(capabilities)} capabilities "
                    f"(showing last {min(limit, len(capabilities))}):")
        for capability in capabilities[-limit:]:
            self._write(f"  {capability}")

    def cmd_aliases(self, _args: List[str]) -> None:
        table = self.machine.alias_table
        self._write(f"{table.live_entries} live spilled-pointer aliases; "
                    f"shadow {table.shadow_bytes:,} B")

    def cmd_mem(self, args: List[str]) -> None:
        if not args:
            self._write("usage: mem ADDR [N]")
            return
        address = int(args[0], 0) & ~7
        count = int(args[1]) if len(args) > 1 else 4
        for i in range(count):
            word_address = address + i * 8
            value = self.machine.memory.peek_word(word_address)
            self._write(f"  {word_address:#x}: {value:#018x}")

    def cmd_stats(self, _args: List[str]) -> None:
        self._write(self.machine.stats_summary())

    def cmd_why(self, _args: List[str]) -> None:
        self._write(explain_violation(self.machine))


def _stdout_write(text: str) -> None:
    print(text)


def debug_program(program: Program, variant: Variant = Variant.UCODE_PREDICTION,
                  lines=None, write: Callable[[str], None] = None) -> Debugger:
    """Start a debugger over ``program``; ``lines`` defaults to stdin."""
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=False)
    debugger = Debugger(machine, write=write)
    debugger.repl(lines if lines is not None else sys.stdin)
    return debugger
