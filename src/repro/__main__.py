"""Command-line interface: ``python -m repro <command>``.

Commands
========

``run FILE``
    Assemble and run an assembly program under a chosen variant::

        python -m repro run prog.s --variant ucode-prediction --trap

``workload NAME``
    Run one of the 14 built-in benchmark analogues and print its
    statistics summary::

        python -m repro workload mcf --variant hw-only --scale 2

``figure {1,3,6,7,8,9}`` / ``table {1,2,3,4}``
    Regenerate one of the paper's figures/tables and print it.

``security``
    Run the three exploit suites (RIPE / ASan suite / How2Heap).

``trace FILE``
    Run a program with the event tracer attached and print/export the
    capability events (uop injections, capchecks, predictor outcomes,
    squashes, violations)::

        python -m repro trace prog.s --kind capcheck --pc 0x400010

    ``FILE`` may also be a previously exported trace — a machine-ring
    JSONL/Chrome export or a sweep-level merged trace from
    ``figure/table/reproduce --trace-out`` — which is filtered and
    re-exported instead of re-run.

``status``
    Show live (or resumable) sweep progress read from the journal under
    the cell-cache directory — works from another terminal while a
    sweep runs.

``bench history``
    Compare the committed ``BENCH_*.json`` performance records against
    the checked-in baseline and print a trend table with a regression
    verdict (``--check`` exits 1 for CI).

``metrics diff A B``
    Structured, tolerance-aware diff of two metrics exports.

``list``
    List benchmarks, variants, and exploit suites.
"""

from __future__ import annotations

import argparse
import sys

from .core import Chex86Machine, Variant
from .eval import fig1, fig3, fig6, fig7, fig8, fig9, security
from .eval import table1, table2, table3, table4
from .eval.engine import (CellFailure, DEFAULT_CACHE_DIR,
                          DEFAULT_MAX_RETRIES, DEFAULT_RETRY_BACKOFF,
                          EvalEngine)
from .fuzz import (DEFAULT_BUDGET as FUZZ_DEFAULT_BUDGET,
                   DEFAULT_CORPUS_DIR)
from .heap import heap_library_asm
from .isa import assemble
from .telemetry import EVENT_KINDS, EventTracer, write_snapshot
from .workloads import BENCHMARK_ORDER, build

_VARIANTS = {v.value: v for v in Variant}

_FIGURES = {"1": fig1, "3": fig3, "6": fig6, "7": fig7, "8": fig8, "9": fig9}
_TABLES = {"1": table1, "2": table2, "3": table3, "4": table4}

#: Figures/tables whose cells come from the shared evaluation engine.
_ENGINE_FIGURES = {"6", "7", "8", "9"}
_ENGINE_TABLES = {"2", "4"}


class CliError(Exception):
    """A user-facing CLI failure: one line on stderr, exit status 2."""


def _add_variant_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--variant", default="ucode-prediction",
                        choices=sorted(_VARIANTS),
                        help="CHEx86 design point (default: the paper's "
                             "prediction-driven microcode variant)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel simulation workers "
                             "(default: all CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk cell cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"cell cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any single simulation cell "
                             "running longer than this (default: no limit)")
    parser.add_argument("--max-retries", type=int,
                        default=DEFAULT_MAX_RETRIES, metavar="N",
                        help="re-dispatch a crashed/hung/raising cell up to "
                             f"N times (default: {DEFAULT_MAX_RETRIES})")
    parser.add_argument("--retry-backoff", type=float,
                        default=DEFAULT_RETRY_BACKOFF, metavar="SECONDS",
                        help="base delay before a retry, doubled on every "
                             "further attempt of the same cell "
                             f"(default: {DEFAULT_RETRY_BACKOFF})")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep: skip cells the "
                             "journal under the cache directory marks "
                             "complete")
    parser.add_argument("--simpoint", action="store_true",
                        help="sampled simulation: estimate eligible "
                             "benchmark cells from checkpointed SimPoint "
                             "intervals instead of full runs "
                             "(docs/sampling.md)")
    parser.add_argument("--interval", type=int, default=None, metavar="N",
                        help="SimPoint profiling/replay interval in "
                             "instructions (requires --simpoint; "
                             "default: 50000)")
    parser.add_argument("--max-k", type=int, default=None, metavar="K",
                        help="maximum number of simulation points per "
                             "workload (requires --simpoint; default: 8)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="trace the sweep: collect engine spans from "
                             "the parent and every worker (plus machine "
                             "capability events) and write one merged "
                             "Chrome trace_event file (Perfetto-loadable)")
    parser.add_argument("--trace-capacity", type=int, default=65536,
                        metavar="N",
                        help="per-process span buffer size for --trace-out "
                             "(default: 65536; the parent spills to "
                             "spans.jsonl under the cache directory)")
    parser.add_argument("--trace-machine-capacity", type=int, default=4096,
                        metavar="N",
                        help="per-machine event ring shipped back with "
                             "--trace-out; 0 disables machine events "
                             "(default: 4096)")


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", action="store_true",
                        help="profile the simulation: write a cProfile "
                             "dump and print per-phase counters")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="cProfile dump path (default: derived from "
                             "the program/workload name, e.g. mcf.prof)")


def _profile_out(args, stem: str) -> str:
    """Resolve ``--profile-out``: an explicit path wins; otherwise the
    dump is named after what was profiled, so back-to-back profiling
    runs of different programs do not clobber one file."""
    if args.profile_out:
        return args.profile_out
    return f"{stem}.prof"


def _start_profiler(enabled: bool):
    if not enabled:
        return None
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _finish_profiler(profiler, path: str) -> None:
    profiler.disable()
    profiler.dump_stats(path)
    print(f"profile: wrote {path} "
          f"(inspect with `python -m pstats {path}`)", file=sys.stderr)


def _print_phase_counters(counters) -> None:
    # Sorted so the report is deterministic regardless of dict insertion
    # order (multicore runs merge per-core dicts in core order).
    print("phase counters:")
    for counter in sorted(counters):
        print(f"  {counter:32s} {counters[counter]:>14,}")
    print(f"  {'total':32s} {sum(counters.values()):>14,}")


def _validate_engine_args(args) -> None:
    """Reject bad engine flags on *every* command that parses them —
    including figures/tables that happen not to use the engine, so
    ``figure 1 --jobs 0`` fails loudly instead of being ignored."""
    if args.jobs is not None and args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        raise CliError(f"--cell-timeout must be > 0, got {args.cell_timeout}")
    if args.max_retries < 0:
        raise CliError(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.retry_backoff < 0:
        raise CliError(f"--retry-backoff must be >= 0, "
                       f"got {args.retry_backoff}")
    if args.resume and args.no_cache:
        raise CliError("--resume needs the cell cache (drop --no-cache)")
    if args.interval is not None and not args.simpoint:
        raise CliError("--interval requires --simpoint")
    if args.max_k is not None and not args.simpoint:
        raise CliError("--max-k requires --simpoint")
    if args.interval is not None and args.interval <= 0:
        raise CliError(f"--interval must be > 0, got {args.interval}")
    if args.max_k is not None and args.max_k <= 0:
        raise CliError(f"--max-k must be > 0, got {args.max_k}")
    if args.trace_capacity < 1:
        raise CliError(f"--trace-capacity must be >= 1, "
                       f"got {args.trace_capacity}")
    if args.trace_machine_capacity < 0:
        raise CliError(f"--trace-machine-capacity must be >= 0, "
                       f"got {args.trace_machine_capacity}")


def _engine_from(args, echo) -> EvalEngine:
    _validate_engine_args(args)
    trace = None
    if args.trace_out:
        from .telemetry.spans import TraceOptions

        trace = TraceOptions(capacity=args.trace_capacity,
                             machine_capacity=args.trace_machine_capacity)
    engine = EvalEngine(jobs=args.jobs, cache_dir=args.cache_dir,
                        use_cache=not args.no_cache, echo=echo,
                        cell_timeout=args.cell_timeout,
                        max_retries=args.max_retries,
                        retry_backoff=args.retry_backoff,
                        resume=args.resume, trace=trace,
                        provenance=getattr(args, "provenance", False))
    if not args.simpoint:
        return engine
    from .eval.sampling import (DEFAULT_INTERVAL, DEFAULT_MAX_K,
                                SamplingEngine, SimPointPlan)

    plan = SimPointPlan(
        interval=args.interval if args.interval is not None
        else DEFAULT_INTERVAL,
        max_k=args.max_k if args.max_k is not None else DEFAULT_MAX_K)
    return SamplingEngine(engine, plan=plan, echo=echo)


def _read_program(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        raise CliError(f"cannot read assembly file {path!r}: "
                       f"{error.strerror or error}") from error


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CHEx86 (ISCA 2020) reproduction: microcode-enabled "
                    "capabilities for x86 memory safety.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="assemble and run a program file")
    run_p.add_argument("file", help="assembly source (mini-x86 dialect)")
    _add_variant_arg(run_p)
    run_p.add_argument("--trap", action="store_true",
                       help="halt at the first violation")
    run_p.add_argument("--max-instructions", type=int, default=2_000_000)
    run_p.add_argument("--no-heap-library", action="store_true",
                       help="do not append the standard heap library")
    run_p.add_argument("--translate", action="store_true",
                       help="statically instrument with capchk instructions "
                            "and run under the bt-isa-extension variant")
    _add_profile_args(run_p)
    run_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the full telemetry-registry snapshot "
                            "as JSON")
    run_p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="attach the event tracer and write the "
                            "retained events")
    run_p.add_argument("--trace-format", default="jsonl",
                       choices=("jsonl", "chrome"),
                       help="trace export format: JSON lines or Chrome "
                            "trace_event (Perfetto / chrome://tracing)")
    run_p.add_argument("--trace-capacity", type=int, default=65536,
                       metavar="N",
                       help="event ring-buffer size; oldest events are "
                            "dropped past this (default: 65536)")
    run_p.add_argument("--provenance", action="store_true",
                       help="record context-sensitive provenance: "
                            "violations gain alloc/free/access chains and "
                            "an attribution report is written")
    run_p.add_argument("--provenance-dir", default="results/provenance",
                       metavar="DIR",
                       help="directory for provenance reports "
                            "(default: results/provenance)")

    wl_p = sub.add_parser("workload", help="run a built-in benchmark")
    wl_p.add_argument("name", choices=BENCHMARK_ORDER)
    _add_variant_arg(wl_p)
    wl_p.add_argument("--scale", type=int, default=1)
    _add_profile_args(wl_p)
    wl_p.add_argument("--metrics-out", default=None, metavar="FILE",
                      help="write the merged per-core telemetry snapshot "
                           "as JSON")

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", type=int, default=1)
    _add_engine_args(fig_p)
    fig_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the per-cell metrics sidecar "
                            "(engine-backed figures only)")
    fig_p.add_argument("--provenance", action="store_true",
                       help="arm provenance recording in every cell and "
                            "write per-workload attribution reports "
                            "(engine-backed figures only)")
    fig_p.add_argument("--provenance-dir", default="results/provenance",
                       metavar="DIR",
                       help="directory for provenance reports "
                            "(default: results/provenance)")

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("number", choices=sorted(_TABLES))
    tab_p.add_argument("--scale", type=int, default=1)
    _add_engine_args(tab_p)
    tab_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the per-cell metrics sidecar "
                            "(engine-backed tables only)")
    tab_p.add_argument("--provenance", action="store_true",
                       help="arm provenance recording in every cell and "
                            "write per-workload attribution reports "
                            "(engine-backed tables only)")
    tab_p.add_argument("--provenance-dir", default="results/provenance",
                       metavar="DIR",
                       help="directory for provenance reports "
                            "(default: results/provenance)")

    trace_p = sub.add_parser(
        "trace", help="run a program with the event tracer attached and "
                      "inspect/export the capability events")
    trace_p.add_argument("file", help="assembly source (mini-x86 dialect)")
    _add_variant_arg(trace_p)
    trace_p.add_argument("--kind", action="append", choices=EVENT_KINDS,
                         metavar="KIND", default=None,
                         help="only show these event kinds (repeatable; "
                              f"choices: {', '.join(EVENT_KINDS)})")
    trace_p.add_argument("--pc", type=lambda s: int(s, 0), default=None,
                         metavar="ADDR",
                         help="only events at this instruction address "
                              "(accepts 0x hex)")
    trace_p.add_argument("--limit", type=int, default=50, metavar="N",
                         help="print at most the last N matching events "
                              "(default: 50; 0 = all retained)")
    trace_p.add_argument("--capacity", type=int, default=65536, metavar="N",
                         help="event ring-buffer size (default: 65536)")
    trace_p.add_argument("--out", default=None, metavar="FILE",
                         help="also write the matching events to FILE")
    trace_p.add_argument("--format", default="text",
                         choices=("text", "jsonl", "chrome"),
                         help="--out format (default: text)")
    trace_p.add_argument("--max-instructions", type=int, default=2_000_000)
    trace_p.add_argument("--no-heap-library", action="store_true",
                         help="do not append the standard heap library")

    att_p = sub.add_parser(
        "attribute", help="context-sensitive cost attribution: run with "
                          "provenance armed and report which call chains "
                          "pay for capability checks")
    att_p.add_argument("target",
                       help="assembly source file, or a built-in workload "
                            f"name ({', '.join(BENCHMARK_ORDER)})")
    _add_variant_arg(att_p)
    att_p.add_argument("--top", type=int, default=20, metavar="N",
                       help="show the N hottest entries (0 = all; "
                            "default: 20)")
    att_p.add_argument("--format", default="collapsed",
                       choices=("json", "collapsed", "annotate"),
                       help="collapsed: flamegraph folded stacks; "
                            "annotate: disassembly heatmap; json: the "
                            "full structured report (default: collapsed)")
    att_p.add_argument("--counter", default="capchecks",
                       choices=("capchecks", "alias_walks",
                                "uop_injections"),
                       help="cost family to attribute (default: capchecks)")
    att_p.add_argument("--scale", type=int, default=1,
                       help="workload scale (workload targets only)")
    att_p.add_argument("--max-instructions", type=int, default=2_000_000)
    att_p.add_argument("--no-heap-library", action="store_true",
                       help="do not append the standard heap library "
                            "(file targets only)")
    att_p.add_argument("--out", default=None, metavar="FILE",
                       help="also write the rendered output to FILE")

    sec_p = sub.add_parser("security", help="run the exploit suites")
    sec_p.add_argument("--ripe-limit", type=int, default=None,
                       help="subsample RIPE to this many cases")

    dbg_p = sub.add_parser("debug", help="interactive machine debugger")
    dbg_p.add_argument("file", help="assembly source (mini-x86 dialect)")
    _add_variant_arg(dbg_p)
    dbg_p.add_argument("--no-heap-library", action="store_true")

    rep_p = sub.add_parser(
        "reproduce", help="regenerate every artifact into a directory")
    rep_p.add_argument("--out", default="results")
    rep_p.add_argument("--scale", type=int, default=1)
    rep_p.add_argument("--ripe-limit", type=int, default=None)
    _add_engine_args(rep_p)
    rep_p.add_argument("--profile", action="store_true",
                       help="write profile.prof and a \"profile\" section "
                            "(phase counters, top functions) in summary.json")

    status_p = sub.add_parser(
        "status", help="show live/resumable sweep progress from the "
                       "journal under the cell-cache directory")
    status_p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                          help=f"cell cache directory to inspect "
                               f"(default: {DEFAULT_CACHE_DIR})")
    status_p.add_argument("--json", action="store_true",
                          help="emit the status as JSON instead of text")
    status_p.add_argument("--watch", type=float, default=None,
                          metavar="SECONDS",
                          help="refresh every SECONDS until interrupted")

    bench_p = sub.add_parser(
        "bench", help="benchmark-record tooling (perf-regression history)")
    bench_p.add_argument("action", choices=("history",),
                         help="history: compare committed BENCH_*.json "
                              "records against the checked-in baseline")
    bench_p.add_argument("--dir", default=".", metavar="DIR",
                         help="directory holding the BENCH_*.json records "
                              "(default: repo root)")
    bench_p.add_argument("--baseline", default=None, metavar="FILE",
                         help="hotloop baseline JSON (default: "
                              "benchmarks/bench_hotloop_baseline.json "
                              "under --dir)")
    bench_p.add_argument("--max-regression", type=float, default=None,
                         metavar="FRACTION",
                         help="throughput-regression gate as a fraction "
                              "(default: 0.30, matching CI's perf-smoke)")
    bench_p.add_argument("--max-error", type=float, default=None,
                         metavar="FRACTION",
                         help="SimPoint worst-case relative-error gate "
                              "(default: 0.10)")
    bench_p.add_argument("--check", action="store_true",
                         help="exit 1 if any metric regressed beyond its "
                              "gate (for CI)")
    bench_p.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of text")

    fuzz_p = sub.add_parser(
        "fuzz", help="coverage-guided differential fuzzing campaign")
    fuzz_p.add_argument("--seeds", type=int, default=50, metavar="N",
                        help="number of generator seeds to sweep "
                             "(default: 50)")
    fuzz_p.add_argument("--seed-base", type=int, default=0, metavar="BASE",
                        help="first seed of the range (default: 0)")
    fuzz_p.add_argument("--budget", type=int, default=FUZZ_DEFAULT_BUDGET,
                        metavar="N",
                        help="instruction budget per oracle machine "
                             f"(default: {FUZZ_DEFAULT_BUDGET})")
    fuzz_p.add_argument("--corpus-dir", default=DEFAULT_CORPUS_DIR,
                        metavar="DIR",
                        help="persistent corpus directory; interesting "
                             "seeds and shrunk reproducers accumulate "
                             f"here (default: {DEFAULT_CORPUS_DIR})")
    fuzz_p.add_argument("--shrink", action="store_true", default=True,
                        dest="shrink",
                        help="minimize failing programs before reporting "
                             "(default)")
    fuzz_p.add_argument("--no-shrink", action="store_false", dest="shrink",
                        help="report failures without minimizing them")
    fuzz_p.add_argument("--bug", default="", metavar="SPEC",
                        help="oracle-sensitivity mode: inject a known bug "
                             "(kind[:role][@index], e.g. "
                             "'skip-capcheck:diff:superblock'); the "
                             "campaign must then FAIL — used by the "
                             "sensitivity tests and CI, see "
                             "docs/fuzzing.md")
    _add_engine_args(fuzz_p)

    met_p = sub.add_parser(
        "metrics", help="metrics-export tooling (structured diffing)")
    met_p.add_argument("action", choices=("diff",),
                       help="diff: compare two metrics exports")
    met_p.add_argument("files", nargs=2, metavar="FILE",
                       help="two metrics files: --metrics-out snapshots, "
                            "engine per-cell sidecars, or bare "
                            "name->value JSON")
    met_p.add_argument("--tolerance", type=float, default=0.0,
                       metavar="T",
                       help="allowed drift per changed metric: absolute "
                            "for ratio-like metrics, relative otherwise "
                            "(default: 0 = exact)")
    met_p.add_argument("--json", action="store_true",
                       help="emit the diff as JSON instead of text")

    sub.add_parser("list", help="list benchmarks, variants, suites")
    return parser


def cmd_run(args) -> int:
    from pathlib import Path

    source = _read_program(args.file)
    if not args.no_heap_library and "malloc:" not in source:
        source += "\n" + heap_library_asm()
    program = assemble(source, name=args.file)
    variant = _VARIANTS[args.variant]
    if args.translate:
        from .translator import translate

        program, report = translate(program)
        variant = Variant.BT_ISA_EXTENSION
        print(f"binary translation: {report.instrumented} accesses "
              f"instrumented (+{report.code_growth} instructions)")
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=args.trap)
    if args.provenance:
        machine.enable_provenance()
    tracer = None
    if args.trace_out:
        if args.trace_capacity < 1:
            raise CliError(f"--trace-capacity must be >= 1, "
                           f"got {args.trace_capacity}")
        tracer = EventTracer(capacity=args.trace_capacity)
        machine.attach_tracer(tracer)
    profiler = _start_profiler(args.profile)
    result = machine.run(max_instructions=args.max_instructions)
    if profiler is not None:
        _finish_profiler(profiler, _profile_out(args, Path(args.file).stem))
        _print_phase_counters(machine.phase_counters())
    print(machine.stats_summary())
    for violation in result.violations.violations:
        print(f"VIOLATION: {violation}")
    if result.flagged:
        from .analysis.diagnostics import explain_all_violations

        print()
        print(explain_all_violations(machine))
    if args.metrics_out:
        write_snapshot(args.metrics_out, machine.metrics_snapshot(),
                       meta={"program": args.file, "variant": args.variant})
        print(f"metrics: wrote {args.metrics_out}", file=sys.stderr)
    if tracer is not None:
        if args.trace_format == "chrome":
            tracer.write_chrome(args.trace_out,
                                process_name=Path(args.file).stem)
        else:
            tracer.write_jsonl(args.trace_out)
        print(f"trace: wrote {len(tracer)} event(s) to {args.trace_out} "
              f"({tracer.dropped} dropped)", file=sys.stderr)
    if args.provenance:
        from .telemetry import provenance as prov_mod

        stem = Path(args.file).stem
        cell = prov_mod.cell_export(machine, f"{stem}/{args.variant}")
        json_path, collapsed_path = prov_mod.write_report(
            args.provenance_dir, stem, [cell])
        print(f"provenance: wrote {json_path} + {collapsed_path}",
              file=sys.stderr)
    return 1 if result.flagged else 0


def cmd_workload(args) -> int:
    from .eval.common import run_benchmark

    workload = build(args.name, args.scale)
    profiler = _start_profiler(args.profile)
    run = run_benchmark(workload, _VARIANTS[args.variant])
    if profiler is not None:
        _finish_profiler(profiler, _profile_out(args, workload.name))
        _print_phase_counters(run.phase_counters)
    if args.metrics_out:
        write_snapshot(args.metrics_out, run.metrics,
                       meta={"workload": workload.name,
                             "variant": args.variant,
                             "scale": args.scale})
        print(f"metrics: wrote {args.metrics_out}", file=sys.stderr)
    print(f"{workload.name} ({workload.suite}, {workload.threads} thread(s)) "
          f"under {args.variant}:")
    print(f"  instructions      {run.instructions:>12,}")
    print(f"  uops              {run.uops:>12,} "
          f"({run.injected_uops:,} injected)")
    print(f"  cycles            {run.cycles:>12,}")
    print(f"  capability$ miss  {run.capcache_miss_rate:>11.1%}")
    print(f"  alias$ miss       {run.aliascache_miss_rate:>11.1%}")
    print(f"  reload mispredict {run.predictor_misprediction_rate:>11.1%}")
    print(f"  squash time       {run.squash_fraction:>11.1%}")
    print(f"  shadow storage    {run.shadow_rss_bytes:>12,} B")
    print(f"  bandwidth         {run.bandwidth_mb_per_s:>10.1f} MB/s")
    return 0


def _echo_stderr(message: str) -> None:
    # Engine progress goes to stderr so stdout stays exactly the
    # rendered figure/table (pipeable, byte-comparable).
    print(message, file=sys.stderr)


def _write_cell_sidecar(engine: EvalEngine, module, args,
                        artifact: str) -> None:
    engine.write_metrics(args.metrics_out,
                         module.cell_specs(scale=args.scale), artifact)
    print(f"metrics: wrote {args.metrics_out}", file=sys.stderr)


def _write_sweep_trace(engine, args, label: str) -> None:
    document = engine.write_trace(args.trace_out, label=label)
    print(f"trace: wrote {len(document['traceEvents'])} trace event(s) "
          f"to {args.trace_out}", file=sys.stderr)


def cmd_figure(args) -> int:
    module = _FIGURES[args.number]
    _validate_engine_args(args)
    if args.metrics_out and args.number not in _ENGINE_FIGURES:
        raise CliError(f"--metrics-out requires an engine-backed figure "
                       f"({', '.join(sorted(_ENGINE_FIGURES))})")
    if args.trace_out and args.number not in _ENGINE_FIGURES:
        raise CliError(f"--trace-out requires an engine-backed figure "
                       f"({', '.join(sorted(_ENGINE_FIGURES))})")
    if args.provenance and args.number not in _ENGINE_FIGURES:
        raise CliError(f"--provenance requires an engine-backed figure "
                       f"({', '.join(sorted(_ENGINE_FIGURES))})")
    if args.number == "1":
        result = module.run()
    elif args.number in _ENGINE_FIGURES:
        engine = _engine_from(args, _echo_stderr)
        result = module.run(scale=args.scale, engine=engine)
        if args.metrics_out:
            _write_cell_sidecar(engine, module, args, f"fig{args.number}")
        if args.trace_out:
            _write_sweep_trace(engine, args, f"fig{args.number}")
        if args.provenance:
            engine.write_provenance(args.provenance_dir, f"fig{args.number}")
    else:
        result = module.run(scale=args.scale)
    print(result.format_text())
    return 0


def cmd_table(args) -> int:
    module = _TABLES[args.number]
    _validate_engine_args(args)
    if args.metrics_out and args.number not in _ENGINE_TABLES:
        raise CliError(f"--metrics-out requires an engine-backed table "
                       f"({', '.join(sorted(_ENGINE_TABLES))})")
    if args.trace_out and args.number not in _ENGINE_TABLES:
        raise CliError(f"--trace-out requires an engine-backed table "
                       f"({', '.join(sorted(_ENGINE_TABLES))})")
    if args.provenance and args.number not in _ENGINE_TABLES:
        raise CliError(f"--provenance requires an engine-backed table "
                       f"({', '.join(sorted(_ENGINE_TABLES))})")
    if args.number == "3":
        result = module.run()
    elif args.number in _ENGINE_TABLES:
        engine = _engine_from(args, _echo_stderr)
        result = module.run(scale=args.scale, engine=engine)
        if args.metrics_out:
            _write_cell_sidecar(engine, module, args, f"table{args.number}")
        if args.trace_out:
            _write_sweep_trace(engine, args, f"table{args.number}")
        if args.provenance:
            engine.write_provenance(args.provenance_dir,
                                    f"table{args.number}")
    else:
        result = module.run(scale=args.scale)
    print(result.format_text())
    return 0


def cmd_attribute(args) -> int:
    import json as json_mod
    from pathlib import Path

    from .telemetry import provenance as prov_mod

    if args.target in BENCHMARK_ORDER:
        workload = build(args.target, args.scale)
        if workload.threads > 1:
            raise CliError(
                f"{args.target} is multithreaded; attribute one core via "
                f"`figure --provenance` instead")
        source = workload.source
        name = workload.name
    else:
        source = _read_program(args.target)
        if not args.no_heap_library and "malloc:" not in source:
            source += "\n" + heap_library_asm()
        name = Path(args.target).stem
    program = assemble(source, name=name)
    machine = Chex86Machine(program, variant=_VARIANTS[args.variant],
                            halt_on_violation=False)
    recorder = machine.enable_provenance()
    machine.run(max_instructions=args.max_instructions)
    if args.format == "json":
        rendered = json_mod.dumps(
            prov_mod.cell_export(machine, f"{name}/{args.variant}"),
            indent=2, sort_keys=True)
    elif args.format == "annotate":
        rendered = "\n".join(
            recorder.annotated_disassembly(args.counter, top=args.top))
    else:
        rendered = "\n".join(prov_mod.collapsed_lines(
            recorder.collapsed(args.counter), top=args.top))
    print(rendered)
    print(f"attribute: {recorder.total(args.counter):,} {args.counter} "
          f"event(s) across {len(recorder.collapsed(args.counter))} "
          f"context(s); {machine.violations.count()} violation(s)",
          file=sys.stderr)
    if args.out:
        Path(args.out).write_text(rendered + "\n")
        print(f"attribute: wrote {args.out}", file=sys.stderr)
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import BugSpecError, BugInjection, FuzzOptions, run_campaign

    _validate_engine_args(args)
    if args.simpoint:
        raise CliError("fuzz cells are not samplable (drop --simpoint)")
    if args.seeds < 1:
        raise CliError(f"--seeds must be >= 1, got {args.seeds}")
    if args.seed_base < 0:
        raise CliError(f"--seed-base must be >= 0, got {args.seed_base}")
    if args.budget < 1:
        raise CliError(f"--budget must be >= 1, got {args.budget}")
    if args.bug:
        try:
            BugInjection.parse(args.bug)
        except BugSpecError as error:
            raise CliError(str(error)) from error

    engine = _engine_from(args, _echo_stderr)
    options = FuzzOptions(seeds=args.seeds, seed_base=args.seed_base,
                          budget=args.budget, corpus_dir=args.corpus_dir,
                          shrink=args.shrink, bug=args.bug)
    report = run_campaign(engine, options, echo=_echo_stderr)
    if args.trace_out:
        _write_sweep_trace(engine, args, "fuzz")
    print(report.format_text())
    return 0 if report.ok else 1


def cmd_security(args) -> int:
    result = security.run(ripe_limit=args.ripe_limit)
    print(result.format_text())
    return 0 if result.all_flagged() else 1


def _load_trace_events(path: str):
    """Load ``path`` as a trace export if it looks like one.

    Returns a list of :class:`TraceEvent` for (a) engine-produced merged
    Chrome traces (``--trace-out`` on figure/table/reproduce — machine
    events are recovered from their pid 1000+ swimlanes), (b)
    machine-ring Chrome exports (``run --trace-format chrome``), and
    (c) machine-ring JSONL exports.  Returns ``None`` when the file is
    not JSON-shaped at all (an assembly program).  A ``.json``/
    ``.jsonl`` file that fails to parse raises :class:`CliError` rather
    than being fed to the assembler.
    """
    import json as json_mod
    from pathlib import Path

    from .telemetry import TraceEvent
    from .telemetry.collate import load_chrome, machine_trace_events

    explicit = Path(path).suffix.lower() in (".json", ".jsonl")
    text = _read_program(path)
    head = text.lstrip()[:1]
    if not explicit and head not in ("{", "["):
        return None

    try:
        document = json_mod.loads(text)
    except ValueError:
        document = None
    if document is not None:
        # Whole-file JSON: a Chrome trace_event document (merged sweep
        # trace or machine-ring chrome export), possibly bare-array.
        try:
            return machine_trace_events(load_chrome(path))
        except ValueError as error:
            raise CliError(f"{path}: {error}") from error

    # JSON lines: one machine event object per line (write_jsonl).
    events = []
    for number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json_mod.loads(line)
        except ValueError as error:
            if explicit:
                raise CliError(f"{path}:{number}: not valid JSONL: "
                               f"{error}") from error
            return None
        if not isinstance(record, dict) or "kind" not in record:
            if explicit:
                raise CliError(f"{path}:{number}: not a trace record "
                               f"(missing \"kind\")")
            return None
        fields = {name: value for name, value in record.items()
                  if name not in ("ts", "kind", "pc")}
        pc = record.get("pc", 0)
        if isinstance(pc, str):
            pc = int(pc, 0)
        events.append(TraceEvent(ts=int(record.get("ts", 0)),
                                 kind=str(record["kind"]),
                                 pc=int(pc), fields=fields))
    return events


def _inspect_trace_events(events, args) -> int:
    """The shared filter/print/export tail of ``repro trace``."""
    from pathlib import Path

    if args.kind:
        wanted = set(args.kind)
        events = [event for event in events if event.kind in wanted]
    if args.pc is not None:
        events = [event for event in events if event.pc == args.pc]
    shown = events if not args.limit else events[-args.limit:]
    for event in shown:
        print(event.format_text())
    if len(shown) < len(events):
        print(f"... showing last {len(shown)} of {len(events)} matching "
              f"event(s); raise --limit for more", file=sys.stderr)

    counts: dict = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    summary = ", ".join(f"{kind}={counts[kind]}" for kind in EVENT_KINDS
                        if kind in counts) or "none"
    print(f"events: {len(events)} loaded ({summary})", file=sys.stderr)

    if args.out:
        exporter = EventTracer(capacity=1)
        if args.format == "chrome":
            exporter.write_chrome(args.out,
                                  process_name=Path(args.file).stem,
                                  events=events)
        elif args.format == "jsonl":
            exporter.write_jsonl(args.out, events=events)
        else:
            Path(args.out).write_text(
                "\n".join(event.format_text() for event in events)
                + ("\n" if events else ""))
        print(f"trace: wrote {len(events)} event(s) to {args.out}",
              file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    from pathlib import Path

    if args.capacity < 1:
        raise CliError(f"--capacity must be >= 1, got {args.capacity}")
    if args.limit < 0:
        raise CliError(f"--limit must be >= 0, got {args.limit}")
    loaded = _load_trace_events(args.file)
    if loaded is not None:
        return _inspect_trace_events(loaded, args)
    source = _read_program(args.file)
    if not args.no_heap_library and "malloc:" not in source:
        source += "\n" + heap_library_asm()
    program = assemble(source, name=args.file)
    machine = Chex86Machine(program, variant=_VARIANTS[args.variant],
                            halt_on_violation=False)
    tracer = EventTracer(capacity=args.capacity)
    machine.attach_tracer(tracer)
    machine.run(max_instructions=args.max_instructions)

    events = tracer.filtered(kinds=args.kind, pc=args.pc)
    shown = events if not args.limit else events[-args.limit:]
    for event in shown:
        print(event.format_text())
    if len(shown) < len(events):
        print(f"... showing last {len(shown)} of {len(events)} matching "
              f"event(s); raise --limit for more", file=sys.stderr)

    counts = tracer.kind_counts()
    summary = ", ".join(f"{kind}={counts[kind]}" for kind in EVENT_KINDS
                        if kind in counts) or "none"
    print(f"events: {tracer.emitted} emitted, {tracer.dropped} dropped "
          f"({summary})", file=sys.stderr)

    if args.out:
        if args.format == "chrome":
            tracer.write_chrome(args.out, process_name=Path(args.file).stem,
                                events=events)
        elif args.format == "jsonl":
            tracer.write_jsonl(args.out, events=events)
        else:
            Path(args.out).write_text(
                "\n".join(event.format_text() for event in events)
                + ("\n" if events else ""))
        print(f"trace: wrote {len(events)} event(s) to {args.out}",
              file=sys.stderr)
    return 0


def cmd_debug(args) -> int:
    from .debugger import debug_program

    source = _read_program(args.file)
    if not args.no_heap_library and "malloc:" not in source:
        source += "\n" + heap_library_asm()
    program = assemble(source, name=args.file)
    debug_program(program, variant=_VARIANTS[args.variant])
    return 0


def cmd_reproduce(args) -> int:
    from .eval.runner import reproduce

    engine = _engine_from(args, print)
    reproduce(out_dir=args.out, scale=args.scale,
              ripe_limit=args.ripe_limit, engine=engine,
              profile=args.profile)
    if args.trace_out:
        _write_sweep_trace(engine, args, "reproduce")
    return 0


def cmd_status(args) -> int:
    import json as json_mod
    import time

    from .eval.status import read_status

    while True:
        status = read_status(args.cache_dir)
        if args.json:
            print(json_mod.dumps(status.to_dict(), indent=2, sort_keys=True))
        else:
            print(status.format_text())
        if args.watch is None:
            return 0
        if args.watch <= 0:
            raise CliError(f"--watch must be > 0, got {args.watch}")
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        print()


def cmd_bench(args) -> int:
    import json as json_mod

    from .analysis import benchtrack

    if args.max_regression is not None and args.max_regression < 0:
        raise CliError(f"--max-regression must be >= 0, "
                       f"got {args.max_regression}")
    if args.max_error is not None and args.max_error < 0:
        raise CliError(f"--max-error must be >= 0, got {args.max_error}")
    report = benchtrack.collect(
        record_dir=args.dir, baseline_path=args.baseline,
        max_regression=(args.max_regression
                        if args.max_regression is not None
                        else benchtrack.DEFAULT_MAX_REGRESSION),
        max_error=(args.max_error if args.max_error is not None
                   else benchtrack.DEFAULT_MAX_ERROR))
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    if args.check and report.regressions():
        return 1
    return 0


def cmd_metrics(args) -> int:
    import json as json_mod

    from .telemetry.diffs import diff_snapshots, load_metrics

    if args.tolerance < 0:
        raise CliError(f"--tolerance must be >= 0, got {args.tolerance}")
    try:
        a = load_metrics(args.files[0])
        b = load_metrics(args.files[1])
    except ValueError as error:
        raise CliError(str(error)) from error
    diff = diff_snapshots(a, b, tolerance=args.tolerance)
    if args.json:
        print(json_mod.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.format_text())
    return 0 if diff.clean else 1


def cmd_list(_args) -> int:
    print("benchmarks:", ", ".join(BENCHMARK_ORDER))
    print("variants:  ", ", ".join(sorted(_VARIANTS)))
    print("figures:   ", ", ".join(sorted(_FIGURES)))
    print("tables:    ", ", ".join(sorted(_TABLES)))
    print("suites:     RIPE (850), ASan suite (15), How2Heap (18)")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "workload": cmd_workload,
        "figure": cmd_figure,
        "table": cmd_table,
        "attribute": cmd_attribute,
        "security": cmd_security,
        "fuzz": cmd_fuzz,
        "trace": cmd_trace,
        "debug": cmd_debug,
        "reproduce": cmd_reproduce,
        "status": cmd_status,
        "bench": cmd_bench,
        "metrics": cmd_metrics,
        "list": cmd_list,
    }[args.command]
    try:
        return handler(args)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(2)
    except CellFailure as error:
        # Simulation cells exhausted their retry budget: not a usage
        # mistake (exit 1, not 2).  Completed cells stay cached and
        # journaled, so re-running with --resume recomputes only these.
        for spec, reason in error.failures:
            print(f"error: cell {spec.label} failed permanently: {reason}",
                  file=sys.stderr)
        print("error: fix the cause and re-run with --resume to recompute "
              "only the failed cells", file=sys.stderr)
        sys.exit(1)
    except FileNotFoundError as error:
        # Anything the handlers did not anticipate (argparse already
        # rejects unknown workload/figure/table names with status 2).
        print(f"error: no such file: {error.filename}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    sys.exit(main())
