"""Unified telemetry: structured metrics registry + event tracing.

Every paper metric (Figures 6-9: uop expansion, capability/alias cache
miss rates, predictor coverage, squash time, violations) is exported
through one :class:`~repro.telemetry.registry.MetricsRegistry` per core,
and the interesting discrete events (uop injections, capability
generation/check/free, predictor outcomes, squashes, violations) stream
into a bounded :class:`~repro.telemetry.tracer.EventTracer` ring buffer
with JSONL and Chrome ``trace_event`` export.

Design constraints (see docs/observability.md):

* **The fast path stays fast.**  Hot counters remain plain ``int``
  attributes on the existing per-subsystem stats dataclasses; the
  registry is *pull-based* — it reads them only when a snapshot is
  taken (end of run, quantum boundary, or export), so the simulation
  hot loop pays nothing for the registry's existence.
* **Tracing is off by default.**  A machine with no attached tracer
  pays one attribute-is-None test at the (already conditional) event
  sites; an attached tracer appends fixed-size tuples into a
  preallocated ring.
* **Additive only.**  ``stats_summary()`` and every ``results/*.txt``
  artifact render byte-identically to the pre-telemetry output; the
  registry is the source the renderings read from, not a new format.
"""

from .collate import collate, validate_chrome_trace
from .diffs import MetricsDiff, diff_snapshots, load_metrics
from .registry import (
    METRICS_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    write_snapshot,
)
from .provenance import PROVENANCE_SCHEMA, ProvenanceRecorder
from .spans import SPAN_SCHEMA, SpanTracer, TraceOptions
from .tracer import EVENT_KINDS, EventTracer, TraceEvent

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "write_snapshot",
    "EVENT_KINDS",
    "EventTracer",
    "TraceEvent",
    "PROVENANCE_SCHEMA",
    "ProvenanceRecorder",
    "SPAN_SCHEMA",
    "SpanTracer",
    "TraceOptions",
    "collate",
    "validate_chrome_trace",
    "MetricsDiff",
    "diff_snapshots",
    "load_metrics",
]
