"""Structured diffing of metrics exports (``repro metrics diff``).

Every metrics surface in the repo — ``write_snapshot`` files from
``--metrics-out``, the engine's per-cell sidecars under
``results/metrics/``, a bare ``{name: value}`` snapshot — flattens to a
dotted-name → number mapping.  :func:`diff_snapshots` compares two such
mappings the way the test-suite (and a human bisecting a perf change)
actually wants:

* **added / removed** keys are reported separately — a new counter is
  schema drift, not a value change;
* **changed** keys get both an absolute and a relative delta, and the
  *comparand* judged against the tolerance is chosen per metric:
  ratio-like metrics (miss rates, coverage, IPC — bounded quantities
  where "0.93 vs 0.95" is the meaningful distance) are judged on the
  absolute delta, unbounded counters on the relative delta, so one
  ``--tolerance 0.01`` reads naturally for both;
* a metric that appears with value ``0`` on one side and non-zero on
  the other has no finite relative delta — it is judged on the side
  that exists (always out of tolerance unless the tolerance covers the
  absolute change of a ratio-like name).

``diff_snapshots(...).clean`` is what tests should assert instead of
``assert a == b`` on metric dicts: failures print *which* metric moved
and by how much.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

#: Bumped when the diff document layout changes.
METRIC_DIFF_SCHEMA = 1

#: Dotted-name components that mark a metric as ratio-like (judged on
#: absolute delta).  Matched against whole dot-separated components and
#: trailing suffixes (``miss_rate``), not raw substrings.
RATIO_HINTS = ("rate", "accuracy", "fraction", "coverage", "ipc",
               "expansion", "ratio")


def is_ratio_like(name: str, a: float, b: float) -> bool:
    """Should ``name`` be judged on absolute (not relative) delta?"""
    components = name.lower().split(".")
    for component in components:
        if component in RATIO_HINTS:
            return True
        if any(component.endswith("_" + hint) for hint in RATIO_HINTS):
            return True
    # Bounded values: both sides inside [0, 1] behave like ratios.
    return 0.0 <= a <= 1.0 and 0.0 <= b <= 1.0 \
        and not (float(a).is_integer() and float(b).is_integer())


@dataclass
class MetricDelta:
    """One changed metric: both deltas plus the judged comparand."""

    name: str
    a: float
    b: float
    abs_delta: float
    rel_delta: float        # |b-a| / |a| (or /|b| when a == 0)
    ratio_like: bool
    comparand: float        # what the tolerance is applied to

    def within(self, tolerance: float) -> bool:
        return self.comparand <= tolerance

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


@dataclass
class MetricsDiff:
    """The structured result of comparing two metric snapshots."""

    added: Dict[str, float] = field(default_factory=dict)
    removed: Dict[str, float] = field(default_factory=dict)
    changed: List[MetricDelta] = field(default_factory=list)
    tolerance: float = 0.0
    unchanged: int = 0

    @property
    def identical(self) -> bool:
        return not self.added and not self.removed and not self.changed

    def out_of_tolerance(self) -> List[MetricDelta]:
        return [delta for delta in self.changed
                if not delta.within(self.tolerance)]

    @property
    def clean(self) -> bool:
        """No schema drift and every change within tolerance — the
        condition ``repro metrics diff`` exits 0 on."""
        return not self.added and not self.removed \
            and not self.out_of_tolerance()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": METRIC_DIFF_SCHEMA,
            "tolerance": self.tolerance,
            "added": dict(sorted(self.added.items())),
            "removed": dict(sorted(self.removed.items())),
            "changed": [delta.to_dict() for delta in self.changed],
            "unchanged": self.unchanged,
            "clean": self.clean,
        }

    def format_text(self) -> str:
        lines: List[str] = []
        for name in sorted(self.added):
            lines.append(f"+ {name} = {self.added[name]:g} (only in B)")
        for name in sorted(self.removed):
            lines.append(f"- {name} = {self.removed[name]:g} (only in A)")
        for delta in self.changed:
            marker = " " if delta.within(self.tolerance) else "!"
            kind = "abs" if delta.ratio_like else "rel"
            lines.append(
                f"{marker} {delta.name}: {delta.a:g} -> {delta.b:g} "
                f"(abs {delta.abs_delta:+g}, rel {delta.rel_delta:.2%}, "
                f"judged {kind})")
        summary = (f"{len(self.added)} added, {len(self.removed)} removed, "
                   f"{len(self.changed)} changed "
                   f"({len(self.out_of_tolerance())} beyond tolerance "
                   f"{self.tolerance:g}), {self.unchanged} unchanged")
        lines.append(("OK: " if self.clean else "DIFF: ") + summary)
        return "\n".join(lines)


def diff_snapshots(a: Dict[str, float], b: Dict[str, float],
                   tolerance: float = 0.0) -> MetricsDiff:
    """Compare two flat metric snapshots; see the module docstring for
    the ratio-aware judging rules."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    diff = MetricsDiff(tolerance=tolerance)
    names_a, names_b = set(a), set(b)
    diff.added = {name: float(b[name]) for name in names_b - names_a}
    diff.removed = {name: float(a[name]) for name in names_a - names_b}
    for name in sorted(names_a & names_b):
        va, vb = float(a[name]), float(b[name])
        if va == vb:
            diff.unchanged += 1
            continue
        abs_delta = vb - va
        denominator = abs(va) if va != 0 else abs(vb)
        rel_delta = abs(abs_delta) / denominator
        ratio = is_ratio_like(name, va, vb)
        diff.changed.append(MetricDelta(
            name=name, a=va, b=vb, abs_delta=abs_delta,
            rel_delta=rel_delta, ratio_like=ratio,
            comparand=abs(abs_delta) if ratio else rel_delta))
    return diff


def load_metrics(path: Union[str, Path]) -> Dict[str, float]:
    """Flatten any of the repo's metrics-export shapes to name → value.

    Accepts ``write_snapshot`` documents (``{"metrics": {...}}``),
    engine per-cell sidecars (``{"engine": {...}, "cells": [...]}`` —
    cell metrics are prefixed ``<workload>/<defense>.``), and bare
    ``{name: number}`` snapshots.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise ValueError(f"cannot read metrics file {path}: "
                         f"{error.strerror or error}") from error
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")

    if "cells" in document and isinstance(document.get("cells"), list):
        flat: Dict[str, float] = {}
        engine = document.get("engine")
        if isinstance(engine, dict):
            for name, value in engine.items():
                if isinstance(value, (int, float)):
                    flat[name] = float(value)
        for cell in document["cells"]:
            if not isinstance(cell, dict):
                continue
            prefix = f"{cell.get('workload', '?')}/{cell.get('defense', '?')}"
            for name, value in cell.get("metrics", {}).items():
                if isinstance(value, (int, float)):
                    flat[f"{prefix}.{name}"] = float(value)
        return flat

    if "metrics" in document and isinstance(document["metrics"], dict):
        document = document["metrics"]
    flat = {}
    for name, value in document.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    if not flat:
        raise ValueError(f"{path}: no numeric metrics found")
    return flat
