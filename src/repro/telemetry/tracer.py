"""Bounded ring-buffer event tracer with JSONL / Chrome trace export.

The tracer records *discrete* machine events — the things the paper's
mechanism narrative is made of — as fixed-shape tuples:

======================  ====================================================
kind                    payload fields
======================  ====================================================
``uop_inject``          ``uops`` — injected micro-ops at a heap-interception
                        site (capGen/capFree begin/end pairs)
``capcheck``            ``pid``, ``address``, ``ok`` — one executed
                        ``capCheck`` micro-op
``capgen``              ``pid``, ``base``, ``size`` — a capability was
                        generated (allocation interception completed)
``capfree``             ``pid`` — a capability was freed/invalidated
``predictor``           ``predicted``, ``actual``, ``outcome`` — one
                        pointer-reload prediction resolution (outcome is
                        ``correct`` / ``P0AN`` / ``PNA0`` / ``PMAN``)
``squash``              ``cause`` (``branch`` | ``alias``), ``penalty`` —
                        a pipeline flush was charged
``violation``           ``violation`` (kind label), ``pid``, ``address`` —
                        a memory-safety violation was flagged
======================  ====================================================

Every record also carries ``ts`` (the core's current commit cycle) and
``pc`` (the macro instruction's address).  The buffer is a preallocated
ring: once ``capacity`` events have been emitted the oldest are
overwritten and counted in :attr:`EventTracer.dropped`, so tracing a
long run costs bounded memory.

Exports:

* :meth:`EventTracer.write_jsonl` — one JSON object per line, ordered
  oldest-to-newest (grep/jq-friendly);
* :meth:`EventTracer.chrome_trace` / :meth:`EventTracer.write_chrome` —
  the Chrome ``trace_event`` JSON object format, loadable in Perfetto or
  ``chrome://tracing`` for timeline viewing (``squash`` events become
  duration slices, everything else instant events).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Union

#: Every kind the machine emits (the ``repro trace --kind`` choices).
EVENT_KINDS = (
    "uop_inject",
    "capcheck",
    "capgen",
    "capfree",
    "predictor",
    "squash",
    "violation",
)


class TraceEvent(NamedTuple):
    """One structured trace record."""

    ts: int
    kind: str
    pc: int
    fields: Dict[str, object]

    def to_json_obj(self) -> Dict[str, object]:
        record: Dict[str, object] = {"ts": self.ts, "kind": self.kind,
                                     "pc": self.pc}
        record.update(self.fields)
        return record

    def format_text(self) -> str:
        payload = " ".join(f"{key}={_fmt(key, value)}"
                           for key, value in self.fields.items())
        return f"{self.ts:>10}  {self.kind:<10} pc={self.pc:#x}" \
               + (f"  {payload}" if payload else "")


def _fmt(key: str, value: object) -> str:
    if key in ("address", "base") and isinstance(value, int):
        return f"{value:#x}"
    return str(value)


class EventTracer:
    """Preallocated ring buffer of :class:`TraceEvent` records."""

    __slots__ = ("capacity", "_ring", "_emitted")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._emitted = 0

    # -- recording (the only method on a hot path) ---------------------------

    def emit(self, ts: int, kind: str, pc: int = 0, **fields) -> None:
        self._ring[self._emitted % self.capacity] = \
            TraceEvent(ts, kind, pc, fields)
        self._emitted += 1

    # -- introspection -------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including overwritten ones)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self._emitted - self.capacity)

    def __len__(self) -> int:
        return min(self._emitted, self.capacity)

    def records(self) -> List[TraceEvent]:
        """Retained events, oldest first (wraparound-corrected)."""
        count = len(self)
        if self._emitted <= self.capacity:
            return [event for event in self._ring[:count]
                    if event is not None]
        pivot = self._emitted % self.capacity
        ordered = self._ring[pivot:] + self._ring[:pivot]
        return [event for event in ordered if event is not None]

    def filtered(self, kinds: Optional[Sequence[str]] = None,
                 pc: Optional[int] = None) -> List[TraceEvent]:
        """Retained events restricted to ``kinds`` and/or one ``pc``."""
        wanted = set(kinds) if kinds else None
        return [event for event in self.records()
                if (wanted is None or event.kind in wanted)
                and (pc is None or event.pc == pc)]

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.records():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- export --------------------------------------------------------------

    def jsonl_lines(self, events: Optional[Iterable[TraceEvent]] = None
                    ) -> List[str]:
        source = self.records() if events is None else events
        return [json.dumps(event.to_json_obj(), sort_keys=True)
                for event in source]

    def write_jsonl(self, path: Union[str, Path],
                    events: Optional[Iterable[TraceEvent]] = None) -> None:
        lines = self.jsonl_lines(events)
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    def chrome_trace(self, process_name: str = "chex86",
                     events: Optional[Iterable[TraceEvent]] = None
                     ) -> Dict[str, object]:
        """The Chrome ``trace_event`` JSON object form of the buffer.

        ``ts`` is in microseconds by spec; we map one simulated cycle to
        one microsecond, which keeps relative spacing exact and renders
        readably in Perfetto / ``chrome://tracing``.
        """
        trace_events: List[Dict[str, object]] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]
        source = self.records() if events is None else events
        for event in source:
            args = dict(event.fields)
            args["pc"] = f"{event.pc:#x}"
            record: Dict[str, object] = {
                "name": event.kind,
                "cat": "chex86",
                "ts": event.ts,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
            if event.kind == "squash":
                record["ph"] = "X"
                record["dur"] = max(1, int(event.fields.get("penalty", 1)))
            else:
                record["ph"] = "i"
                record["s"] = "t"
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome(self, path: Union[str, Path],
                     process_name: str = "chex86",
                     events: Optional[Iterable[TraceEvent]] = None) -> None:
        document = self.chrome_trace(process_name, events)
        Path(path).write_text(json.dumps(document) + "\n")
