"""Context-sensitive provenance attribution.

CHEx86's enforcement is *context sensitive* — capabilities are minted
per allocation context — yet the aggregate counters in
``MetricsRegistry`` and the flat pc-tagged events in ``EventTracer``
cannot answer questions like "which call chain pays for most capability
checks?" or "which allocation site produced the capability behind this
use-after-free?".  This module closes that gap with an opt-in
:class:`ProvenanceRecorder`:

* **Shadow call stack.**  The machine reports CALL/RET retirement; the
  recorder folds the live stack into interned *context ids* using a
  calling-context tree (one node per ``(parent, call-site pc)`` pair),
  so hot-path bookkeeping is two dict operations, not a stack copy.
* **Capability lifecycles.**  Every capability generation and free
  (realloc decomposes into free+gen) is tagged ``(context, pc, cycle)``
  and kept in a bounded per-capability history.
* **Violation forensics.**  :meth:`ProvenanceRecorder.chain` assembles
  the allocation → free → faulting-access chain for a violation; the
  machine attaches it to the frozen ``Violation`` so diagnostics and
  JSON reports can render an ASan-style provenance section.
* **Cost attribution.**  Capability checks, alias-tree walks, MCU uop
  injections, and reload-predictor outcomes are bucketed by
  ``(context, pc)`` and exported as flamegraph-compatible collapsed
  stacks and annotated-disassembly heatmaps.

Everything here is opt-in: ``Chex86Machine.enable_provenance()`` arms a
machine, and the module-level :func:`arm`/:func:`attach_machine_recorder`
pair mirrors ``telemetry.spans`` so eval-engine workers can arm every
cell machine without threading a recorder through every call site.
With the recorder disarmed (the default) the hot path pays a single
``is None`` test per event site and all results stay byte-identical.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Version stamp for provenance exports and on-disk reports.  Bump when
#: the export tree shape changes incompatibly.
PROVENANCE_SCHEMA = 1

#: The interned id of the empty call stack.
ROOT_CONTEXT = 0

#: Cost-attribution counter families tracked per ``(context, pc)``.
COUNTERS = ("capchecks", "alias_walks", "uop_injections")


def symbolize(program, pc: int) -> str:
    """Resolve ``pc`` to ``label`` or ``label+0xoff`` using the nearest
    preceding program label; falls back to the raw hex address."""
    if program is None or not getattr(program, "labels", None):
        return f"{pc:#x}"
    pairs = sorted((address, name) for name, address in program.labels.items())
    addresses = [address for address, _ in pairs]
    index = bisect_right(addresses, pc) - 1
    if index < 0:
        return f"{pc:#x}"
    address, name = pairs[index]
    offset = pc - address
    return name if offset == 0 else f"{name}+{offset:#x}"


class ProvenanceRecorder:
    """Per-machine provenance state.

    Hot-path methods (``on_call``/``on_ret``/``on_check``/...) are
    dict-increment cheap; everything expensive (symbolization, stack
    unfolding, report assembly) happens at export time.
    """

    def __init__(self, program=None, history_limit: int = 16) -> None:
        self.program = program
        self.history_limit = max(2, int(history_limit))
        # Calling-context tree: context id -> (parent context, call pc).
        # Node 0 is the root (empty stack).
        self._parents: List[Tuple[int, int]] = [(-1, -1)]
        self._children: Dict[Tuple[int, int], int] = {}
        self._ctx_stack: List[int] = []
        self.current = ROOT_CONTEXT
        # pid -> bounded [(event, context, pc, cycle, size), ...]
        self.lifecycles: Dict[int, List[Tuple[str, int, int, int, int]]] = {}
        self.truncated: Dict[int, int] = {}
        # (context, pc) -> count, one table per cost family.
        self.capchecks: Dict[Tuple[int, int], int] = {}
        self.alias_walks: Dict[Tuple[int, int], int] = {}
        self.uop_injections: Dict[Tuple[int, int], int] = {}
        # (context, pc, outcome) -> count for reload-predictor outcomes.
        self.reload_outcomes: Dict[Tuple[int, int, str], int] = {}
        self._symbols: Optional[Tuple[List[int], List[str]]] = None

    # -- shadow call stack ---------------------------------------------------

    def on_call(self, site_pc: int) -> None:
        """A CALL retired at ``site_pc``: descend into (or intern) the
        child context."""
        key = (self.current, site_pc)
        context = self._children.get(key)
        if context is None:
            context = len(self._parents)
            self._parents.append(key)
            self._children[key] = context
        self._ctx_stack.append(self.current)
        self.current = context

    def on_ret(self) -> None:
        """A RET retired: pop back to the caller's context.  Unbalanced
        stacks (longjmp-style control flow, mid-function entry after a
        snapshot restore) degrade gracefully to the root context."""
        if self._ctx_stack:
            self.current = self._ctx_stack.pop()
        else:
            self.current = ROOT_CONTEXT

    def depth(self) -> int:
        return len(self._ctx_stack)

    # -- capability lifecycles -----------------------------------------------

    def on_capgen(self, pid: int, pc: int, cycle: int, size: int) -> None:
        self._record(pid, "alloc", pc, cycle, size)

    def on_capfree(self, pid: int, pc: int, cycle: int) -> None:
        self._record(pid, "free", pc, cycle, 0)

    def _record(self, pid: int, event: str, pc: int, cycle: int,
                size: int) -> None:
        history = self.lifecycles.setdefault(pid, [])
        if len(history) >= self.history_limit:
            del history[1]  # keep the original allocation, drop oldest rest
            self.truncated[pid] = self.truncated.get(pid, 0) + 1
        history.append((event, self.current, pc, cycle, size))

    # -- cost attribution ----------------------------------------------------

    def on_check(self, pc: int) -> None:
        key = (self.current, pc)
        table = self.capchecks
        table[key] = table.get(key, 0) + 1

    def on_walk(self, pc: int) -> None:
        key = (self.current, pc)
        table = self.alias_walks
        table[key] = table.get(key, 0) + 1

    def on_inject(self, pc: int, uops: int) -> None:
        key = (self.current, pc)
        table = self.uop_injections
        table[key] = table.get(key, 0) + uops

    def on_reload(self, pc: int, outcome: str) -> None:
        key = (self.current, pc, outcome)
        table = self.reload_outcomes
        table[key] = table.get(key, 0) + 1

    # -- context resolution --------------------------------------------------

    def frames(self, context: int) -> List[int]:
        """The call-site pcs of ``context``, outermost first."""
        pcs: List[int] = []
        while context > ROOT_CONTEXT:
            parent, pc = self._parents[context]
            pcs.append(pc)
            context = parent
        pcs.reverse()
        return pcs

    def _symbol(self, pc: int) -> str:
        if self._symbols is None:
            labels = getattr(self.program, "labels", None) or {}
            pairs = sorted((address, name) for name, address in labels.items())
            self._symbols = ([address for address, _ in pairs],
                             [name for _, name in pairs])
        addresses, names = self._symbols
        index = bisect_right(addresses, pc) - 1
        if index < 0:
            return f"{pc:#x}"
        offset = pc - addresses[index]
        return names[index] if offset == 0 else f"{names[index]}+{offset:#x}"

    def frame_names(self, context: int) -> List[str]:
        """Symbolized frames for ``context`` (nearest preceding label)."""
        return [self._symbol(pc) for pc in self.frames(context)]

    # -- violation forensics -------------------------------------------------

    def chain(self, violation, pc: int) -> Dict[str, object]:
        """Build the alloc → free → faulting-access provenance chain for
        ``violation`` flagged at ``pc``.  Plain data only, so the chain
        pickles inside the frozen ``Violation`` and survives snapshots."""

        def entry(record) -> Dict[str, object]:
            event, context, event_pc, cycle, size = record
            return {"event": event,
                    "context": self.frames(context),
                    "frames": self.frame_names(context),
                    "pc": event_pc, "cycle": cycle, "size": size}

        history = self.lifecycles.get(violation.pid, [])
        alloc = next((r for r in history if r[0] == "alloc"), None)
        free = next((r for r in reversed(history) if r[0] == "free"), None)
        return {
            "alloc": entry(alloc) if alloc is not None else None,
            "free": entry(free) if free is not None else None,
            "access": {"context": self.frames(self.current),
                       "frames": self.frame_names(self.current),
                       "pc": pc},
        }

    # -- exports -------------------------------------------------------------

    def _table(self, counter: str) -> Dict[Tuple[int, int], int]:
        if counter not in COUNTERS:
            raise ValueError(f"unknown provenance counter: {counter!r}")
        return getattr(self, counter)

    def collapsed(self, counter: str = "capchecks") -> Dict[str, int]:
        """Flamegraph-compatible folded stacks: ``frame;frame;leaf`` →
        count, where the leaf frame is the costed pc's enclosing label."""
        folded: Dict[str, int] = {}
        for (context, pc), count in self._table(counter).items():
            stack = ";".join(self.frame_names(context) + [self._symbol(pc)])
            folded[stack] = folded.get(stack, 0) + count
        return folded

    def pc_counts(self, counter: str = "capchecks") -> Dict[int, int]:
        """Context-collapsed per-pc totals (heatmap input)."""
        totals: Dict[int, int] = {}
        for (_, pc), count in self._table(counter).items():
            totals[pc] = totals.get(pc, 0) + count
        return totals

    def annotated_disassembly(self, counter: str = "capchecks",
                              top: int = 20) -> List[str]:
        """Heatmap lines for the ``top`` hottest pcs: count, share,
        address, symbol, and (when the program is available) the
        disassembled instruction."""
        from ..isa.disasm import format_instr

        totals = self.pc_counts(counter)
        grand = sum(totals.values())
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        if top > 0:
            ranked = ranked[:top]
        lines = []
        for pc, count in ranked:
            share = count / grand if grand else 0.0
            text = ""
            if self.program is not None:
                try:
                    text = format_instr(self.program.fetch(pc))
                except Exception:
                    text = "<outside text section>"
            lines.append(f"{count:>10}  {share:6.1%}  {pc:#08x}  "
                         f"{self._symbol(pc):<24}  {text}".rstrip())
        return lines

    def total(self, counter: str = "capchecks") -> int:
        return sum(self._table(counter).values())

    def export(self) -> Dict[str, object]:
        """JSON-safe per-cell export: collapsed stacks and per-pc totals
        for every cost family, reload outcomes, lifecycle summary."""
        outcomes: Dict[str, Dict[str, int]] = {}
        for (context, pc, outcome), count in self.reload_outcomes.items():
            stack = ";".join(self.frame_names(context) + [self._symbol(pc)])
            bucket = outcomes.setdefault(outcome, {})
            bucket[stack] = bucket.get(stack, 0) + count
        return {
            "schema": PROVENANCE_SCHEMA,
            "contexts": len(self._parents),
            "collapsed": {counter: self.collapsed(counter)
                          for counter in COUNTERS},
            "pcs": {counter: {f"{pc:#x}": count
                              for pc, count in sorted(
                                  self.pc_counts(counter).items())}
                    for counter in COUNTERS},
            "totals": {counter: self.total(counter) for counter in COUNTERS},
            "reload_outcomes": outcomes,
            "capabilities": len(self.lifecycles),
            "lifecycle_truncated": sum(self.truncated.values()),
        }

    # -- snapshot support ----------------------------------------------------

    def state_tree(self) -> Dict[str, object]:
        """Plain-data state for machine snapshots (SNAPSHOT_SCHEMA >= 3)."""
        return {
            "history_limit": self.history_limit,
            "current": self.current,
            "parents": [list(pair) for pair in self._parents],
            "ctx_stack": list(self._ctx_stack),
            "lifecycles": {pid: [list(record) for record in history]
                           for pid, history in self.lifecycles.items()},
            "truncated": dict(self.truncated),
            "capchecks": [[context, pc, count] for (context, pc), count
                          in self.capchecks.items()],
            "alias_walks": [[context, pc, count] for (context, pc), count
                            in self.alias_walks.items()],
            "uop_injections": [[context, pc, count] for (context, pc), count
                               in self.uop_injections.items()],
            "reload_outcomes": [[context, pc, outcome, count]
                                for (context, pc, outcome), count
                                in self.reload_outcomes.items()],
        }

    @classmethod
    def from_state(cls, program, state: Dict[str, object]) -> "ProvenanceRecorder":
        recorder = cls(program, history_limit=state["history_limit"])
        recorder._parents = [tuple(pair) for pair in state["parents"]]
        recorder._children = {
            pair: context for context, pair in enumerate(recorder._parents)
            if context != ROOT_CONTEXT}
        recorder._ctx_stack = list(state["ctx_stack"])
        recorder.current = state["current"]
        recorder.lifecycles = {
            int(pid): [tuple(record) for record in history]
            for pid, history in state["lifecycles"].items()}
        recorder.truncated = {int(pid): count
                              for pid, count in state["truncated"].items()}
        for counter in COUNTERS:
            table = recorder._table(counter)
            for context, pc, count in state[counter]:
                table[(context, pc)] = count
        for context, pc, outcome, count in state["reload_outcomes"]:
            recorder.reload_outcomes[(context, pc, outcome)] = count
        return recorder


# -- structured violation reports ------------------------------------------


def violation_json(violation) -> Dict[str, object]:
    """Structured (JSON-safe) forensic record for one violation."""
    return {
        "kind": violation.kind.value,
        "cwe": violation.kind.cwe,
        "pid": violation.pid,
        "address": violation.address,
        "size": violation.size,
        "pc": violation.instr_address,
        "detail": violation.detail,
        "provenance": violation.provenance,
    }


def cell_export(machine, label: str) -> Dict[str, object]:
    """One eval-engine cell's provenance sidecar: the recorder export
    plus every enriched violation the run produced."""
    recorder = machine.provenance
    export = recorder.export() if recorder is not None else None
    return {
        "label": label,
        "export": export,
        "violations": [violation_json(v)
                       for v in machine.violations.violations],
    }


def merge_cell_exports(cells: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-cell sidecars into per-workload attribution tables.
    Context ids are process-local, so merging happens on the resolved
    folded-stack strings, which are stable across processes."""
    workloads: Dict[str, Dict[str, object]] = {}
    for cell in cells:
        label = str(cell.get("label", ""))
        workload = label.split("/", 1)[0] if label else "<unknown>"
        bucket = workloads.setdefault(workload, {
            "cells": 0,
            "collapsed": {counter: {} for counter in COUNTERS},
            "totals": {counter: 0 for counter in COUNTERS},
            "reload_outcomes": {},
            "violations": [],
        })
        bucket["cells"] += 1
        bucket["violations"].extend(cell.get("violations") or [])
        export = cell.get("export")
        if not export:
            continue
        for counter in COUNTERS:
            folded = bucket["collapsed"][counter]
            for stack, count in export["collapsed"].get(counter, {}).items():
                folded[stack] = folded.get(stack, 0) + count
            bucket["totals"][counter] += export["totals"].get(counter, 0)
        for outcome, stacks in export.get("reload_outcomes", {}).items():
            folded = bucket["reload_outcomes"].setdefault(outcome, {})
            for stack, count in stacks.items():
                folded[stack] = folded.get(stack, 0) + count
    return workloads


def collapsed_lines(folded: Dict[str, int], top: int = 0) -> List[str]:
    """Render a folded-stack table as ``stack count`` lines, hottest
    first (the format flamegraph.pl and speedscope ingest)."""
    ranked = sorted(folded.items(), key=lambda item: (-item[1], item[0]))
    if top > 0:
        ranked = ranked[:top]
    return [f"{stack} {count}" for stack, count in ranked]


def write_report(directory, artifact: str,
                 cells: List[Dict[str, object]]) -> Tuple[Path, Path]:
    """Write ``<artifact>.json`` (full merged report) and
    ``<artifact>.collapsed`` (capability-check folded stacks) under
    ``directory``; returns both paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    workloads = merge_cell_exports(cells)
    report = {
        "schema": PROVENANCE_SCHEMA,
        "artifact": artifact,
        "cells": cells,
        "workloads": workloads,
    }
    json_path = directory / f"{artifact}.json"
    json_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    merged: Dict[str, int] = {}
    for bucket in workloads.values():
        for stack, count in bucket["collapsed"]["capchecks"].items():
            merged[stack] = merged.get(stack, 0) + count
    collapsed_path = directory / f"{artifact}.collapsed"
    collapsed_path.write_text(
        "\n".join(collapsed_lines(merged)) + ("\n" if merged else ""))
    return json_path, collapsed_path


# -- module-level arming (mirrors telemetry.spans) --------------------------

_ARMED = False
_SESSIONS: List[Dict[str, object]] = []


def arm() -> None:
    """Arm provenance recording for this process: subsequent
    :func:`attach_machine_recorder` calls enable recorders."""
    global _ARMED
    _ARMED = True


def disarm() -> None:
    global _ARMED
    _ARMED = False
    _SESSIONS.clear()


def armed() -> bool:
    return _ARMED


def attach_machine_recorder(machine, label: str) -> None:
    """No-op unless :func:`arm` ran; otherwise enable the machine's
    recorder and register the session for collection."""
    if not _ARMED:
        return
    if machine.provenance is None:
        machine.enable_provenance()
    _SESSIONS.append({"label": label, "machine": machine})


def collect_cell_exports() -> List[Dict[str, object]]:
    """Drain attached sessions into plain-data per-cell sidecars."""
    exports = []
    while _SESSIONS:
        session = _SESSIONS.pop(0)
        exports.append(cell_export(session["machine"], session["label"]))
    return exports


def shipment() -> Optional[Dict[str, object]]:
    """The worker-to-parent pipe payload; None when nothing was armed."""
    cells = collect_cell_exports()
    if not cells:
        return None
    return {"schema": PROVENANCE_SCHEMA, "cells": cells}
