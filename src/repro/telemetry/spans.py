"""Sweep-scope span tracing: what the *engine* spends its wall-clock on.

The machine-level :class:`~repro.telemetry.tracer.EventTracer` answers
"what did the simulated core do"; this layer answers "where did the
sweep's wall-clock go" — batch scheduling, cache probes, worker
lifetimes, retries, checkpoint passes, superblock compiles — across the
parent process *and* every supervised worker.

One :class:`SpanTracer` lives per process.  It records **spans**
(begin/end with nesting) and **instants** as plain dicts:

* timestamps come from ``time.perf_counter_ns()`` (monotonic, immune to
  wall-clock steps); each tracer also records a one-shot *clock anchor*
  pairing a monotonic reading with ``time.time_ns()``, which is how
  :mod:`repro.telemetry.collate` aligns per-worker clocks onto one
  sweep timeline;
* every record carries ``pid`` and a small ``tid`` — either the
  recording thread (compressed to 0, 1, 2, …) or an explicit *lane*
  (the engine gives each in-flight cell attempt its own lane so
  concurrent cells render as parallel swimlanes in Perfetto);
* the buffer is **bounded**: past ``capacity`` completed spans, the
  tracer either spills the buffer to a JSONL file (``spill_path`` set —
  one JSON object per line, append-only, crash-tolerant) or drops the
  oldest records and counts them in :attr:`SpanTracer.dropped`.

Workers ship their buffers home with :meth:`SpanTracer.shipment` — a
plain picklable dict carrying the clock anchor, the drained spans, and
any captured machine event rings.

Instrumented subsystems never hold a tracer reference.  They call the
module-level helpers, which are no-ops until someone *installs* a
tracer (:func:`install`/:func:`uninstall`):

``with spans.maybe("snapshot.capture", pages=n): ...``
    Records a span iff a tracer is installed; otherwise the context
    manager is shared, allocation-free, and does nothing.

``spans.attach_machine_tracer(machine, label)``
    Attaches a bounded :class:`EventTracer` ring to a machine iff the
    installed collection asked for machine-event capture; the captured
    rings ride along in the shipment so the collator can place
    capchecks/squashes/violations on the sweep timeline.

The disabled path — no tracer installed, the default — is one module
global ``is None`` test per site.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Bumped when the span record / shipment layout changes.
SPAN_SCHEMA = 1

#: The engine's default name for the span spill file (lives next to the
#: sweep journal under the cell-cache directory).
SPILL_FILENAME = "spans.jsonl"


@dataclass(frozen=True)
class TraceOptions:
    """How one traced sweep collects: buffer sizes and spill location."""

    capacity: int = 65536          # per-process span buffer (records)
    machine_capacity: int = 4096   # per-machine event ring shipped back
    spill_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(
                f"span capacity must be >= 1, got {self.capacity}")
        if self.machine_capacity < 0:
            raise ValueError(f"machine ring capacity must be >= 0, "
                             f"got {self.machine_capacity}")


class _SpanHandle:
    """An open span returned by :meth:`SpanTracer.begin`."""

    __slots__ = ("name", "category", "start_ns", "tid", "args", "closed")

    def __init__(self, name: str, category: str, start_ns: int, tid: int,
                 args: Dict[str, object]) -> None:
        self.name = name
        self.category = category
        self.start_ns = start_ns
        self.tid = tid
        self.args = args
        self.closed = False


class SpanTracer:
    """Bounded per-process buffer of engine spans and instants."""

    def __init__(self, capacity: int = 65536,
                 spill_path: Optional[Union[str, Path]] = None,
                 process_label: str = "engine") -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spill_path = Path(spill_path) if spill_path else None
        self.process_label = process_label
        self.pid = os.getpid()
        # The clock anchor: one (wall, monotonic) pair taken atomically
        # enough for trace purposes.  Collation maps any monotonic span
        # timestamp from this process to the wall clock via
        # ``wall_ns + (t - mono_ns)``.
        self.anchor_wall_ns = time.time_ns()
        self.anchor_mono_ns = time.perf_counter_ns()
        self._records: List[Dict[str, object]] = []
        self.spilled = 0
        self.dropped = 0
        self._spill_drained = 0  # spilled lines already returned by drain()
        self._thread_tids: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def _tid(self, tid: Optional[int]) -> int:
        if tid is not None:
            return tid
        ident = threading.get_ident()
        known = self._thread_tids.get(ident)
        if known is None:
            known = self._thread_tids[ident] = len(self._thread_tids)
        return known

    def begin(self, name: str, category: str = "engine",
              tid: Optional[int] = None, **args) -> _SpanHandle:
        """Open a span; close it with :meth:`end` (any order, any time)."""
        return _SpanHandle(name, category, time.perf_counter_ns(),
                           self._tid(tid), dict(args))

    def end(self, handle: _SpanHandle, **args) -> None:
        """Close an open span, merging any late-arriving args."""
        if handle.closed:
            return
        handle.closed = True
        if args:
            handle.args.update(args)
        now = time.perf_counter_ns()
        self._append({
            "ph": "X",
            "name": handle.name,
            "cat": handle.category,
            "start_ns": handle.start_ns,
            "dur_ns": max(0, now - handle.start_ns),
            "pid": self.pid,
            "tid": handle.tid,
            "args": handle.args,
        })

    @contextmanager
    def span(self, name: str, category: str = "engine",
             tid: Optional[int] = None, **args):
        handle = self.begin(name, category, tid, **args)
        try:
            yield handle
        finally:
            self.end(handle)

    def instant(self, name: str, category: str = "engine",
                tid: Optional[int] = None, **args) -> None:
        self._append({
            "ph": "i",
            "name": name,
            "cat": category,
            "start_ns": time.perf_counter_ns(),
            "dur_ns": 0,
            "pid": self.pid,
            "tid": self._tid(tid),
            "args": dict(args),
        })

    def _append(self, record: Dict[str, object]) -> None:
        self._records.append(record)
        if len(self._records) < self.capacity:
            return
        if self.spill_path is not None:
            self._spill()
        else:
            # No spill target: keep the newest half, count the rest.
            keep = self.capacity // 2
            self.dropped += len(self._records) - keep
            del self._records[:len(self._records) - keep]

    def _spill(self) -> None:
        """Append the buffered records to the spill file and clear."""
        records, self._records = self._records, []
        try:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with self.spill_path.open("a") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
            self.spilled += len(records)
        except OSError:
            # Unwritable spill target degrades to drop-oldest.
            self.dropped += len(records)

    # -- introspection / export ----------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def clock(self) -> Dict[str, object]:
        """The clock anchor the collator aligns this process with."""
        return {
            "pid": self.pid,
            "label": self.process_label,
            "wall_ns": self.anchor_wall_ns,
            "mono_ns": self.anchor_mono_ns,
        }

    def drain(self) -> List[Dict[str, object]]:
        """All retained records (spilled ones first, re-read from disk),
        clearing the in-memory buffer."""
        records: List[Dict[str, object]] = []
        if self.spilled > self._spill_drained and self.spill_path is not None:
            try:
                lines = self.spill_path.read_text().splitlines()
            except OSError:
                lines = []
            # The spill file survives (repro status tails it); remember
            # how far this drain read so a later drain never duplicates.
            for line in lines[self._spill_drained:]:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # truncated trailing line
            self._spill_drained = len(lines)
        records.extend(self._records)
        self._records = []
        return records

    def shipment(self) -> Dict[str, object]:
        """The picklable per-process bundle the collator consumes."""
        return {
            "schema": SPAN_SCHEMA,
            "clock": self.clock(),
            "spans": self.drain(),
            "machines": collect_machine_rings(),
        }


# -- module-level plumbing (the instrumented subsystems' view) ----------------


_CURRENT: Optional[SpanTracer] = None
_MACHINE_CAPACITY: int = 0
_MACHINE_RINGS: List[Dict[str, object]] = []


@contextmanager
def _noop():
    yield None


_NOOP = _noop


def install(tracer: SpanTracer, machine_capacity: int = 0) -> None:
    """Make ``tracer`` the process-wide current span tracer.

    ``machine_capacity > 0`` additionally arms machine-event capture:
    every subsequently simulated machine (single-core cells) gets a
    bounded :class:`EventTracer` ring that ships with the tracer's
    :meth:`~SpanTracer.shipment`.
    """
    global _CURRENT, _MACHINE_CAPACITY
    _CURRENT = tracer
    _MACHINE_CAPACITY = machine_capacity


def uninstall() -> Optional[SpanTracer]:
    global _CURRENT, _MACHINE_CAPACITY
    tracer, _CURRENT = _CURRENT, None
    _MACHINE_CAPACITY = 0
    return tracer


def current() -> Optional[SpanTracer]:
    return _CURRENT


def maybe(name: str, category: str = "engine", **args):
    """A span iff a tracer is installed; a shared no-op otherwise."""
    tracer = _CURRENT
    if tracer is None:
        return _NOOP()
    return tracer.span(name, category, **args)


def instant(name: str, category: str = "engine", **args) -> None:
    tracer = _CURRENT
    if tracer is not None:
        tracer.instant(name, category, **args)


def attach_machine_tracer(machine, label: str) -> None:
    """Attach a capture ring to ``machine`` iff capture is armed.

    No-op (one global test) when tracing is off.  Attaching an event
    tracer makes the machine take the exact per-instruction path
    (superblock replay requires no tracer), which is slower but — by
    the differential suite — simulates identically.
    """
    if _CURRENT is None or not _MACHINE_CAPACITY:
        return
    from .tracer import EventTracer

    ring = EventTracer(capacity=_MACHINE_CAPACITY)
    machine.attach_tracer(ring)
    _MACHINE_RINGS.append({
        "label": label,
        "machine": machine,
        "tracer": ring,
        "start_ns": time.perf_counter_ns(),
    })


def collect_machine_rings() -> List[Dict[str, object]]:
    """Drain every captured ring into plain dicts (for a shipment)."""
    collected: List[Dict[str, object]] = []
    while _MACHINE_RINGS:
        entry = _MACHINE_RINGS.pop(0)
        machine = entry["machine"]
        tracer = entry["tracer"]
        cycles = int(getattr(machine.timing, "now", 0))
        events = [event.to_json_obj() for event in tracer.records()]
        if cycles <= 0:
            cycles = max((event["ts"] for event in events), default=0)
        collected.append({
            "label": entry["label"],
            "start_ns": entry["start_ns"],
            "end_ns": time.perf_counter_ns(),
            "cycles": cycles,
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
            "events": events,
        })
    return collected
