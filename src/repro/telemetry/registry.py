"""The structured metrics registry.

A :class:`MetricsRegistry` is a flat namespace of hierarchically named
(dot-separated) metrics — ``machine.mcu.injected_uops``,
``cache.cap.miss_rate`` — backed by four instrument kinds:

``counter``
    A push-style monotonic count (``registry.counter(name).inc()``).
    Used where no existing stats object carries the value (e.g. the
    evaluation engine's cell accounting).

``gauge``
    A zero-argument callable read at snapshot time.  This is how the
    simulator's existing plain-``int`` hot-loop counters are exposed
    without touching the hot path: the subsystem keeps incrementing its
    dataclass attribute and the registry pulls the value on demand.
    ``register_object`` bulk-registers attribute-reading gauges.

``ratio``
    A derived metric defined as ``numerator / denominator`` over two
    other registered metrics, with an explicit ``default`` for the
    zero-denominator case (the repo-wide convention is 0.0; predictor
    accuracy uses 1.0).  Ratios are recomputed — never summed — when
    snapshots are merged or differenced, so multi-core aggregates and
    per-quantum deltas stay mathematically meaningful.

``histogram``
    Fixed-bucket distribution (``observe(value)``); snapshots expand to
    ``<name>.count``, ``<name>.sum`` and cumulative ``<name>.le_<bound>``
    buckets.

Disabled registries (``MetricsRegistry(enabled=False)``) hand out shared
null instruments whose ``inc``/``observe`` are no-ops allocating nothing,
and snapshot to ``{}`` — the near-zero-cost disabled path.

Snapshots are plain ``{name: int | float}`` dicts, which makes the
delta/merge algebra trivial and the JSON export direct
(:func:`write_snapshot`).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

#: Bumped when the exported metrics JSON layout changes.
METRICS_SCHEMA = 1

#: How a metric combines across per-core snapshots: ``sum`` for
#: per-core counts, ``last`` for system-wide gauges that every core
#: observes identically (shadow bytes, heap totals).
MERGE_SUM = "sum"
MERGE_LAST = "last"


class Counter:
    """A push-style monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class _NullCounter:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` buckets on export)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullHistogram:
    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters/gauges/ratios/histograms with snapshot semantics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Tuple[Callable[[], float], str]] = {}
        self._ratios: "Dict[str, Tuple[str, str, float]]" = {}
        self._histograms: Dict[str, Histogram] = {}
        # (object id, attribute) -> metric name, recorded by
        # register_object so coverage tests can ask "is this stats
        # attribute reachable as a gauge?" (registered_attributes).
        self._attr_sources: "List[Tuple[object, str, str]]" = []
        # Optional per-metric metadata (e.g. the CWE id behind a
        # violations.<kind> gauge); informational only — excluded from
        # snapshots so the delta/merge algebra is untouched.
        self._metadata: Dict[str, Dict[str, object]] = {}

    # -- registration --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Create (or fetch) the push-style counter called ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        self._check_free(name)
        created = self._counters[name] = Counter()
        return created

    def gauge(self, name: str, fn: Callable[[], float],
              merge: str = MERGE_SUM,
              meta: Optional[Mapping[str, object]] = None) -> None:
        """Register a pull gauge: ``fn`` is read at snapshot time.

        ``meta`` attaches descriptive metadata (retrievable through
        :meth:`metadata`) without affecting snapshot values.
        """
        if not self.enabled:
            return
        self._check_free(name)
        if merge not in (MERGE_SUM, MERGE_LAST):
            raise ValueError(f"unknown merge mode {merge!r}")
        self._gauges[name] = (fn, merge)
        if meta:
            self._metadata[name] = dict(meta)

    def metadata(self, name: str) -> Dict[str, object]:
        """Metadata attached at registration ({} when none)."""
        return dict(self._metadata.get(name, {}))

    def register_object(self, prefix: str, obj: object,
                        fields: Union[Sequence[str], Mapping[str, str]],
                        merge: str = MERGE_SUM) -> None:
        """Expose plain attributes of ``obj`` as ``<prefix>.<field>``.

        ``fields`` is either attribute names (metric name == attribute
        name) or a ``{metric_name: attribute_name}`` mapping.  This is
        the bridge from the hot-loop stats dataclasses: the attribute
        stays a bare ``int`` the simulator increments directly.
        """
        if not self.enabled:
            return
        items = (fields.items() if isinstance(fields, Mapping)
                 else ((name, name) for name in fields))
        for metric, attribute in items:
            self.gauge(f"{prefix}.{metric}",
                       _attr_reader(obj, attribute), merge=merge)
            self._attr_sources.append((obj, attribute, f"{prefix}.{metric}"))

    def registered_attributes(self, obj: object) -> Dict[str, str]:
        """``{attribute: metric name}`` for every attribute of ``obj``
        bridged through :meth:`register_object` — what the
        metric-coverage completeness test walks to catch stats counters
        that never reach a sidecar."""
        return {attribute: metric
                for source, attribute, metric in self._attr_sources
                if source is obj}

    def ratio(self, name: str, numerator: str, denominator: str,
              default: float = 0.0) -> None:
        """Register ``name`` as ``numerator / denominator`` (both metric
        names), yielding ``default`` on a zero denominator."""
        if not self.enabled:
            return
        self._check_free(name)
        self._ratios[name] = (numerator, denominator, default)

    def histogram(self, name: str,
                  buckets: Sequence[float]) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        existing = self._histograms.get(name)
        if existing is not None:
            return existing
        self._check_free(name)
        created = self._histograms[name] = Histogram(buckets)
        return created

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Current value of every metric, ratios last (they read the
        snapshot itself, so a ratio may reference any other kind)."""
        if not self.enabled:
            return {}
        snap: Dict[str, float] = {}
        for name, instrument in self._counters.items():
            snap[name] = instrument.value
        for name, (fn, _merge) in self._gauges.items():
            snap[name] = fn()
        for name, histogram in self._histograms.items():
            self._expand_histogram(snap, name, histogram)
        self._apply_ratios(snap)
        return snap

    def delta(self, older: Mapping[str, float],
              newer: Mapping[str, float]) -> Dict[str, float]:
        """Per-interval view: ``newer - older`` for summing metrics,
        the newer value for ``last`` gauges, ratios recomputed over the
        differenced counters (an interval miss rate, not a cumulative
        one)."""
        out: Dict[str, float] = {}
        last = self._last_metrics()
        ratio_names = set(self._ratios)
        for name, value in newer.items():
            if name in ratio_names:
                continue
            if name in last:
                out[name] = value
            else:
                out[name] = value - older.get(name, 0)
        self._apply_ratios(out)
        return out

    def merge(self, snapshots: Sequence[Mapping[str, float]]
              ) -> Dict[str, float]:
        """Aggregate per-core snapshots taken from structurally identical
        registries: sum the summing metrics, keep one copy of the
        system-wide gauges, recompute the ratios over the sums."""
        out: Dict[str, float] = {}
        last = self._last_metrics()
        ratio_names = set(self._ratios)
        for snap in snapshots:
            for name, value in snap.items():
                if name in ratio_names:
                    continue
                if name in last:
                    out[name] = value
                else:
                    out[name] = out.get(name, 0) + value
        self._apply_ratios(out)
        return out

    # -- internals -----------------------------------------------------------

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges \
                or name in self._ratios or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered")

    def _last_metrics(self) -> set:
        return {name for name, (_fn, merge) in self._gauges.items()
                if merge == MERGE_LAST}

    def _apply_ratios(self, snap: Dict[str, float]) -> None:
        for name, (num, den, default) in self._ratios.items():
            denominator = snap.get(den, 0)
            snap[name] = (snap.get(num, 0) / denominator
                          if denominator else default)

    @staticmethod
    def _expand_histogram(snap: Dict[str, float], name: str,
                          histogram: Histogram) -> None:
        snap[f"{name}.count"] = histogram.count
        snap[f"{name}.sum"] = histogram.sum
        cumulative = 0
        for bound, bucket in zip(histogram.bounds,
                                 histogram.bucket_counts):
            cumulative += bucket
            snap[f"{name}.le_{bound:g}"] = cumulative


def _attr_reader(obj: object, attribute: str) -> Callable[[], float]:
    def read() -> float:
        return getattr(obj, attribute)
    return read


def write_snapshot(path: Union[str, Path],
                   metrics: Mapping[str, float],
                   meta: Optional[Mapping[str, object]] = None) -> None:
    """Write one metrics snapshot as a self-describing JSON document."""
    document = {
        "schema": METRICS_SCHEMA,
        "meta": dict(meta) if meta else {},
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
