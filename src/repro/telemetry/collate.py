"""Collate per-process span shipments into one Chrome ``trace_event`` file.

A traced sweep produces one :meth:`~repro.telemetry.spans.SpanTracer.
shipment` per process: the parent engine plus every supervised worker.
Each shipment carries its own monotonic span timestamps, a clock anchor
(one ``(wall_ns, mono_ns)`` pair), and any captured machine event rings.
:func:`collate` merges them — **clock-aligned per worker** — into a
single Chrome ``trace_event`` JSON object that opens in Perfetto or
``chrome://tracing`` with engine spans and machine events on the same
timeline:

* every span becomes a complete (``ph: "X"``) event; instants become
  ``ph: "i"``;
* each process renders as its own track (``process_name`` metadata from
  the shipment's clock label), with the engine's per-cell *lanes* as
  named threads, so concurrent cell attempts appear as parallel
  swimlanes;
* machine events (capchecks, squashes, violations, …) are measured in
  simulated cycles, not wall time; the collator scales each captured
  ring linearly onto the wall-clock window its machine actually ran in
  (``start_ns``/``end_ns`` from the capture), preserving relative
  spacing, and keeps the exact ``cycle`` in the event args.

Timestamp alignment: for a shipment with anchor ``(wall_ns, mono_ns)``,
a monotonic reading ``t`` maps to the wall clock as
``wall_ns + (t - mono_ns)``; the trace origin is the earliest anchor
across shipments, and Chrome ``ts`` is microseconds since that origin.

:func:`validate_chrome_trace` is the schema check CI runs over the
merged file: required field types, every ``B`` matched by an ``E``, and
timestamps monotonic per ``(pid, tid)``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Bumped when the merged-trace layout changes.
COLLATED_TRACE_SCHEMA = 1

#: The tid machine-event tracks start at inside a worker's process
#: track (far above any span lane).
MACHINE_TID_BASE = 1000


def _wall_ns(clock: Dict[str, object], mono_ns: int) -> int:
    return int(clock["wall_ns"]) + (mono_ns - int(clock["mono_ns"]))


def collate(shipments: Sequence[Dict[str, object]],
            sweep_label: str = "sweep") -> Dict[str, object]:
    """Merge span shipments into one Chrome ``trace_event`` document."""
    shipments = [s for s in shipments if s]
    events: List[Dict[str, object]] = []
    origin: Optional[int] = None
    for shipment in shipments:
        clock = shipment["clock"]
        anchor = int(clock["wall_ns"])
        if origin is None or anchor < origin:
            origin = anchor
    if origin is None:
        origin = 0

    def ts_us(clock: Dict[str, object], mono_ns: int) -> float:
        return round((_wall_ns(clock, mono_ns) - origin) / 1000.0, 3)

    seen_pids = set()
    for shipment in shipments:
        clock = shipment["clock"]
        pid = int(clock["pid"])
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0,
                           "args": {"name": str(clock.get("label", pid))}})
        for span in shipment.get("spans", ()):
            record: Dict[str, object] = {
                "name": span["name"],
                "cat": span.get("cat", "engine"),
                "ph": "X" if span.get("ph", "X") == "X" else "i",
                "ts": ts_us(clock, int(span["start_ns"])),
                "pid": pid,
                "tid": int(span.get("tid", 0)),
                "args": dict(span.get("args", {})),
            }
            if record["ph"] == "X":
                record["dur"] = round(int(span.get("dur_ns", 0)) / 1000.0, 3)
            else:
                record["s"] = "t"
            events.append(record)
        for index, ring in enumerate(shipment.get("machines", ())):
            events.extend(_machine_events(clock, pid, index, ring, ts_us))

    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": COLLATED_TRACE_SCHEMA,
            "generator": "repro sweep tracer",
            "label": sweep_label,
            "origin_wall_ns": origin,
            "processes": len(shipments),
        },
    }


def _machine_events(clock: Dict[str, object], pid: int, index: int,
                    ring: Dict[str, object], ts_us) -> List[Dict[str, object]]:
    """Scale one captured machine ring onto its wall-clock window."""
    tid = MACHINE_TID_BASE + index
    label = ring.get("label", f"machine {index}")
    out: List[Dict[str, object]] = [{
        "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": f"machine: {label}"},
    }]
    start_ns = int(ring.get("start_ns", 0))
    end_ns = int(ring.get("end_ns", start_ns))
    cycles = max(1, int(ring.get("cycles", 0)))
    scale = max(0, end_ns - start_ns) / cycles  # ns per simulated cycle
    for event in ring.get("events", ()):
        cycle = int(event.get("ts", 0))
        args = {key: value for key, value in event.items()
                if key not in ("ts", "kind")}
        args["cycle"] = cycle
        if isinstance(args.get("pc"), int):
            args["pc"] = f"{args['pc']:#x}"
        record: Dict[str, object] = {
            "name": str(event.get("kind", "event")),
            "cat": "machine",
            "ts": ts_us(clock, start_ns + int(cycle * scale)),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if event.get("kind") == "squash":
            record["ph"] = "X"
            record["dur"] = round(
                max(1, int(event.get("penalty", 1))) * scale / 1000.0, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    return out


def write_chrome(path: Union[str, Path], document: Dict[str, object]) -> None:
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document) + "\n")


def load_chrome(path: Union[str, Path]) -> Dict[str, object]:
    """Read a Chrome trace file (object form or bare event array)."""
    document = json.loads(Path(path).read_text())
    if isinstance(document, list):  # the JSON-array flavour of the format
        document = {"traceEvents": document}
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace_event document")
    return document


def validate_chrome_trace(document: Dict[str, object]) -> List[str]:
    """Schema-check a merged trace; returns problems (empty == valid).

    Checks the invariants the CI gate relies on: ``traceEvents`` is a
    list of well-typed events (``ph`` a string, ``ts`` numeric and
    non-negative, ``pid``/``tid`` integers), every ``B`` has a matching
    ``E`` on its ``(pid, tid)``, and non-metadata timestamps are
    monotonically non-decreasing per ``(pid, tid)`` track.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    open_begins: Dict[tuple, List[str]] = {}
    last_ts: Dict[tuple, float] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: ph {ph!r} is not a non-empty string")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid {event.get('pid')!r} is not int")
            continue
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid {event.get('tid')!r} is not int")
            continue
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts {ts!r} is not a non-negative "
                            f"number")
            continue
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, 0):
            problems.append(
                f"{where}: ts {ts} goes backwards on pid/tid {track}")
        last_ts[track] = ts
        if ph == "X":
            dur = event.get("dur", 0)
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event dur {dur!r} invalid")
        elif ph == "B":
            open_begins.setdefault(track, []).append(
                str(event.get("name", "")))
        elif ph == "E":
            stack = open_begins.get(track)
            if not stack:
                problems.append(f"{where}: E without a matching B on "
                                f"pid/tid {track}")
            else:
                stack.pop()
    for track, stack in open_begins.items():
        for name in stack:
            problems.append(f"B {name!r} on pid/tid {track} never closed "
                            f"by an E")
    return problems


def machine_trace_events(document: Dict[str, object]):
    """The machine-level events of a *merged* trace, as
    :class:`~repro.telemetry.tracer.TraceEvent` records (cycle
    timestamps restored) — what ``repro trace`` filters."""
    from .tracer import TraceEvent

    out = []
    for event in document.get("traceEvents", ()):
        if not isinstance(event, dict) or event.get("cat") not in (
                "machine", "chex86"):
            continue
        if event.get("ph") == "M":
            continue
        args = dict(event.get("args", {}))
        cycle = args.pop("cycle", None)
        ts = int(cycle) if cycle is not None else int(event.get("ts", 0))
        pc = args.pop("pc", 0)
        if isinstance(pc, str):
            pc = int(pc, 0)
        if event.get("name") == "squash" and "penalty" not in args \
                and "dur" in event:
            args["penalty"] = event["dur"]
        out.append(TraceEvent(ts=ts, kind=str(event.get("name", "event")),
                              pc=pc, fields=args))
    return out
