"""The binary translator: static ``capchk`` instrumentation.

Rewrites a program the way the paper's binary-translation variant would:
every instruction with a register-memory addressing mode gets a ``capchk``
ISA-extension instruction inserted ahead of it, naming the same memory
operand (the check resolves its PID from the pointer tracker in hardware
— the "special instructions made available through secure ISA extensions").

Unlike the microcode variant, these checks are *macro instructions*: they
occupy fetch slots, decode slots, and code footprint, which is the
front-end-throughput cost the paper measures. The translated program runs
under ``Variant.BT_ISA_EXTENSION`` (no injection — everything is explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..isa.instructions import Instr, Op
from ..isa.operands import Imm, Mem
from ..isa.program import Program
from ..isa.registers import Reg

#: Instructions whose implicit (stack) accesses the translator skips, plus
#: non-dereferencing memory-operand users.
_SKIP_OPS = {Op.PUSH, Op.POP, Op.CALL, Op.RET, Op.LEA, Op.NOP, Op.HALT,
             Op.HOSTOP, Op.CAPCHK}

#: Mnemonics whose memory operand is written (for the check's write flag).
_WRITING_OPS = {Op.MOV, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL,
                Op.SHL, Op.SHR, Op.INC, Op.DEC, Op.NEG, Op.NOT}


@dataclass
class TranslationReport:
    """What the translator did (the BT variant's instrumentation stats)."""

    instrumented: int = 0
    skipped_stack: int = 0
    added_instructions: int = 0

    @property
    def code_growth(self) -> int:
        return self.added_instructions


def _needs_check(instr: Instr) -> bool:
    if instr.op in _SKIP_OPS:
        return False
    mem = instr.mem_operand
    if mem is None:
        return False
    if mem.base in (Reg.RSP, Reg.RBP) and mem.index is None:
        return False  # frame traffic: untracked by construction
    return True


def _is_write(instr: Instr) -> bool:
    """Whether the memory operand is (also) written."""
    if instr.op not in _WRITING_OPS:
        return False
    return isinstance(instr.operands[0], Mem)


def translate(program: Program) -> Tuple[Program, TranslationReport]:
    """Return ``(translated_program, report)``.

    Labels move onto the inserted check so all control flow re-resolves,
    exactly like the sanitizer's instrumentation pass.
    """
    report = TranslationReport()
    out: List[Instr] = []
    for instr in program.instrs:
        if not _needs_check(instr):
            if instr.mem_operand is not None and instr.op not in _SKIP_OPS:
                report.skipped_stack += 1
            out.append(instr)
            continue
        operands = (instr.mem_operand, Imm(1)) if _is_write(instr) \
            else (instr.mem_operand,)
        out.append(Instr(Op.CAPCHK, operands, label=instr.label))
        out.append(Instr(instr.op, instr.operands, comment=instr.comment))
        report.instrumented += 1
        report.added_instructions += 1
    translated = Program(out, program.globals, text_base=program.text_base,
                         name=program.name + "+bt")
    return translated, report
