"""Binary-translation instrumentation (the paper's design point (b)).

Section IV-C: "we specifically take the example of our microcode variant to
describe our instrumentation mechanisms, but note that this instrumentation
may also happen with the help of a binary translator", using "special
capability generation instructions exposed via ISA extensions".

This package materializes that path: :func:`translate` statically rewrites
a program, inserting the ``capchk`` ISA-extension macro instruction
(`repro.isa` Op.CAPCHK) ahead of every register-memory access.  Unlike the
microcode variant's under-the-hood injection, the checks *live in the
macro-instruction stream* — they occupy fetch/decode bandwidth, which is
exactly the front-end-throughput cost the paper measures the microcode
engine avoiding (+12%).
"""

from .rewrite import TranslationReport, translate

__all__ = ["TranslationReport", "translate"]
