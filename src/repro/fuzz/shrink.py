"""Minimizing shrinker for oracle failures.

Delta-debugging over body *statements*: the generator guarantees every
statement is independently removable (self-contained labels, floor-size
allocations), so any subset of the body is a valid program with the
same profile payload.  The shrinker greedily deletes chunks, halving
the chunk size ddmin-style, re-checking the caller's predicate after
every deletion — typically collapsing a 30-statement failing program to
the handful of statements (often zero) the failure actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .generator import FuzzProgram

#: Predicate cap: each check re-runs the failing oracle, so the budget
#: bounds shrink time at roughly ``max_checks`` oracle runs.
DEFAULT_MAX_CHECKS = 96


@dataclass(frozen=True)
class ShrinkResult:
    program: FuzzProgram
    checks: int
    removed: int

    @property
    def shrank(self) -> bool:
        return self.removed > 0


def shrink(program: FuzzProgram,
           predicate: Callable[[FuzzProgram], bool], *,
           max_checks: int = DEFAULT_MAX_CHECKS) -> ShrinkResult:
    """Smallest body subset (greedy ddmin) still satisfying
    ``predicate``.

    ``predicate(candidate)`` must return True when the candidate still
    *fails* the oracle in question.  ``program`` itself is assumed
    failing; if the predicate rejects it outright (a flaky failure),
    the original is returned untouched.
    """
    checks = 0
    if not predicate(program):
        return ShrinkResult(program=program, checks=1, removed=0)
    best = program
    chunk = max(1, len(best.body) // 2)
    while chunk >= 1 and checks < max_checks:
        index = 0
        removed_this_pass = False
        while index < len(best.body) and checks < max_checks:
            candidate = best.with_body(
                best.body[:index] + best.body[index + chunk:])
            checks += 1
            if predicate(candidate):
                best = candidate
                removed_this_pass = True
            else:
                index += chunk
        if chunk == 1 and not removed_this_pass:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 1
        if chunk == 1 and not best.body:
            break
    return ShrinkResult(program=best, checks=checks,
                        removed=len(program.body) - len(best.body))
