"""Persistent on-disk corpus: the seeds worth keeping.

A corpus directory holds one small JSON record per interesting seed
(one that contributed at least one coverage feature no earlier entry
had), plus a ``failures/`` subdirectory of shrunk reproducers.  Records
store the *recipe* — ``(seed, profile, budget)`` — not the program
text: the generator is deterministic, so replay regenerates the source
and verifies it against the recorded digest (a changed generator fails
loudly instead of silently replaying a different program).

The committed regression corpus under ``tests/corpus/`` is exactly one
of these directories; ``tests/test_corpus_replay.py`` replays it
through the full oracle set on every tier-1 run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

CORPUS_SCHEMA = 1

FAILURE_DIR = "failures"


class CorpusError(ValueError):
    """A malformed or schema-incompatible corpus record."""


@dataclass(frozen=True)
class CorpusEntry:
    """One kept seed and the coverage features that earned its place."""

    seed: int
    profile: str
    budget: int
    source_sha256: str
    features: Tuple[str, ...]

    @property
    def filename(self) -> str:
        return f"seed{self.seed:05d}-{self.profile}.json"

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CORPUS_SCHEMA,
            "seed": self.seed,
            "profile": self.profile,
            "budget": self.budget,
            "source_sha256": self.source_sha256,
            "features": sorted(self.features),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CorpusEntry":
        schema = record.get("schema")
        if schema != CORPUS_SCHEMA:
            raise CorpusError(f"corpus schema {schema!r} != {CORPUS_SCHEMA}")
        return cls(seed=int(record["seed"]), profile=str(record["profile"]),
                   budget=int(record["budget"]),
                   source_sha256=str(record["source_sha256"]),
                   features=tuple(record["features"]))


class Corpus:
    """A directory of corpus entries with a cached coverage union."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.entries: Dict[str, CorpusEntry] = {}
        self._coverage: Set[str] = set()
        self._load()

    def _load(self) -> None:
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except ValueError as error:
                raise CorpusError(f"{path}: not valid JSON: {error}") \
                    from error
            entry = CorpusEntry.from_dict(record)
            self.entries[entry.filename] = entry
            self._coverage |= set(entry.features)

    def __len__(self) -> int:
        return len(self.entries)

    def coverage(self) -> Set[str]:
        return set(self._coverage)

    def consider(self, entry: CorpusEntry) -> Set[str]:
        """Keep ``entry`` if it contributes new coverage.

        Returns the set of features it newly contributed (empty when the
        entry was not kept).  Already-present recipes are never
        re-written, so replaying a corpus range is idempotent.
        """
        if entry.filename in self.entries:
            return set()
        new = set(entry.features) - self._coverage
        if not new:
            return set()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / entry.filename
        path.write_text(json.dumps(entry.to_dict(), indent=1,
                                   sort_keys=True) + "\n")
        self.entries[entry.filename] = entry
        self._coverage |= new
        return new

    def ordered_entries(self) -> List[CorpusEntry]:
        """Entries in filename (seed) order — replay determinism."""
        return [self.entries[name] for name in sorted(self.entries)]

    # -- failure artifacts ----------------------------------------------------------

    def failure_dir(self) -> Path:
        return self.directory / FAILURE_DIR

    def record_failure(self, name: str,
                       payload: Dict[str, object]) -> Path:
        """Write one shrunk-reproducer record under ``failures/``."""
        directory = self.failure_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path

    def failures(self) -> List[Path]:
        directory = self.failure_dir()
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.json"))
