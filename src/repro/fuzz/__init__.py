"""Coverage-guided differential fuzzing for the CHEx86 simulator.

The simulator's headline property is *exactness*: every performance
transform (decoded blocks, superblock chains, snapshot/restore,
chunked execution) and every protection variant must be architecturally
invisible except for the violations it flags.  This package turns that
claim into a closed loop:

* :mod:`~repro.fuzz.generator` — deterministic grammar-based mini-x86
  programs covering every Table I rule class and violation profile;
* :mod:`~repro.fuzz.oracles` — the pluggable correctness oracles
  (3-mode differential, variant transparency, snapshot round-trip,
  metric conservation);
* :mod:`~repro.fuzz.coverage` — rule/violation/variant/metric-bucket
  coverage features;
* :mod:`~repro.fuzz.corpus` — the persistent on-disk corpus plus
  shrunk-failure artifacts;
* :mod:`~repro.fuzz.shrink` — ddmin-style statement minimization;
* :mod:`~repro.fuzz.faults` — deliberate bug injection proving each
  oracle can actually fail;
* :mod:`~repro.fuzz.cell` / :mod:`~repro.fuzz.campaign` — ``kind="fuzz"``
  evaluation-engine cells and the ``repro fuzz`` campaign driver.

See ``docs/fuzzing.md`` for the workflow.
"""

from .campaign import (DEFAULT_CORPUS_DIR, FuzzOptions, FuzzReport,
                       Reproducer, run_campaign, shrink_failure)
from .cell import FuzzCellResult, compute_fuzz_cell
from .corpus import CORPUS_SCHEMA, Corpus, CorpusEntry, CorpusError
from .coverage import (DEFAULT_RULE, RuleHitRecorder, all_rule_names,
                       metric_features, unreached_classes)
from .faults import BugInjection, BugSpecError, DEFAULT_ROLES, KINDS
from .generator import (DATA_REGS, DEFAULT_BUDGET, FuzzProgram, PROFILES,
                        PROTECT_HOOK, PTR_REGS, VIOLATION_PROFILES,
                        WELL_BEHAVED, generate, generate_program,
                        profile_for_seed)
from .oracles import (DETECTION_VARIANT, MODES, MODE_IDS, ORACLE_NAMES,
                      ORACLES, OracleFailure, OracleReport,
                      PROTECTED_VARIANTS, architectural_state,
                      install_protect_hook, run_oracles, strip_frontend)
from .shrink import DEFAULT_MAX_CHECKS, ShrinkResult, shrink

__all__ = [
    "BugInjection", "BugSpecError", "CORPUS_SCHEMA", "Corpus",
    "CorpusEntry", "CorpusError", "DATA_REGS", "DEFAULT_BUDGET",
    "DEFAULT_CORPUS_DIR", "DEFAULT_MAX_CHECKS", "DEFAULT_ROLES",
    "DEFAULT_RULE", "DETECTION_VARIANT", "FuzzCellResult", "FuzzOptions",
    "FuzzProgram", "FuzzReport", "KINDS", "MODES", "MODE_IDS",
    "ORACLES", "ORACLE_NAMES", "OracleFailure", "OracleReport",
    "PROFILES", "PROTECTED_VARIANTS", "PROTECT_HOOK", "PTR_REGS",
    "Reproducer", "RuleHitRecorder", "ShrinkResult",
    "VIOLATION_PROFILES", "WELL_BEHAVED", "all_rule_names",
    "architectural_state", "compute_fuzz_cell", "generate",
    "generate_program", "install_protect_hook", "metric_features",
    "profile_for_seed", "run_campaign", "run_oracles", "shrink",
    "shrink_failure", "strip_frontend", "unreached_classes",
]
