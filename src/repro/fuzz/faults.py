"""Deliberate bug injection for oracle-sensitivity testing.

An oracle that never fires is worse than no oracle: it reads as a green
checkmark over a blind spot.  Mirroring the evaluation engine's
``REPRO_FAULT_SPEC`` grammar, a :class:`BugInjection` plants one known
bug into one machine *role* of an oracle run, and the sensitivity tests
assert the matching oracle actually fails:

* ``skip-capcheck`` — the targeted machine's capability-table ``check``
  returns None for every call (or only the Nth with ``@N``), i.e. the
  microcode stops enforcing: the differential / transparency oracles
  must see the violation set diverge.
* ``drop-violation`` — the targeted machine records no violations: the
  detection leg of the transparency oracle must notice the expected
  class is missing.
* ``corrupt-snapshot`` — one register is flipped on the restored
  machine: the snapshot round-trip oracle must see state diverge.
* ``skew-metric`` — one tracker counter is bumped after the chunked
  run: the metric-conservation oracle must flag the non-conserved
  counter.

Spec grammar (``REPRO_FUZZ_BUG`` environment variable or ``--bug``):
``kind[:role][@index]`` — ``role`` is an ``fnmatch`` pattern over the
oracle-assigned machine roles (``diff:superblock``,
``transparency:ucode-always-on``, ``snapshot:restored``,
``conservation:chunked``, ...); ``index`` selects only the Nth firing
of a wrapped call (1-based; 0 or absent = every call).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

from ..isa import Reg

ENV_VAR = "REPRO_FUZZ_BUG"

#: kind -> the role it targets when the spec names none.
DEFAULT_ROLES = {
    "skip-capcheck": "diff:superblock",
    "drop-violation": "transparency:ucode-always-on",
    "corrupt-snapshot": "snapshot:restored",
    "skew-metric": "conservation:chunked",
}

KINDS = tuple(DEFAULT_ROLES)


class BugSpecError(ValueError):
    """An unparseable or unknown ``REPRO_FUZZ_BUG`` specification."""


@dataclass
class BugInjection:
    """One armed bug.  ``arm`` wraps behavior before a machine runs;
    ``mutate`` applies post-hoc corruption at the oracle's named point."""

    kind: str
    role: str
    index: int = 0
    fired: int = 0
    _calls: int = field(default=0, repr=False)

    @classmethod
    def parse(cls, spec: str) -> "BugInjection":
        spec = spec.strip()
        index = 0
        if "@" in spec:
            spec, _, count = spec.rpartition("@")
            try:
                index = int(count)
            except ValueError:
                raise BugSpecError(
                    f"bad @index in bug spec: {count!r}") from None
            if index < 0:
                raise BugSpecError(f"@index must be >= 0, got {index}")
        kind, _, role = spec.partition(":")
        if kind not in KINDS:
            raise BugSpecError(
                f"unknown bug kind {kind!r} (known: {', '.join(KINDS)})")
        return cls(kind=kind, role=role or DEFAULT_ROLES[kind], index=index)

    @classmethod
    def from_env(cls) -> Optional["BugInjection"]:
        spec = os.environ.get(ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    def spec(self) -> str:
        text = f"{self.kind}:{self.role}"
        if self.index:
            text += f"@{self.index}"
        return text

    def matches(self, role: str) -> bool:
        return fnmatchcase(role, self.role)

    def _should_fire(self) -> bool:
        self._calls += 1
        if self.index and self._calls != self.index:
            return False
        self.fired += 1
        return True

    # -- hooks --------------------------------------------------------------------

    def arm(self, machine, role: str) -> None:
        """Install the pre-run behavioral wrap on ``machine`` when its
        ``role`` matches; a no-op for the post-hoc kinds."""
        if not self.matches(role):
            return
        if self.kind == "skip-capcheck":
            original = machine.captable.check

            def unchecked(pid, address, size=8, write=False):
                if self._should_fire():
                    return None
                return original(pid, address, size, write=write)

            machine.captable.check = unchecked
        elif self.kind == "drop-violation":
            def swallow(violation):
                self._should_fire()

            machine.violations.record = swallow

    def mutate(self, machine, role: str) -> None:
        """Apply the post-hoc corruption kinds at the oracle's named
        mutation point (after restore / after the chunked run)."""
        if not self.matches(role):
            return
        if self.kind == "corrupt-snapshot":
            if self._should_fire():
                machine.regs[int(Reg.RBX)] ^= 0x40
        elif self.kind == "skew-metric":
            if self._should_fire():
                machine.tracker.stats.transfers += 1
