"""Campaign driver: fan seeds out through the engine, fold the results
into the corpus, shrink the failures.

The parallel part (one fuzz cell per seed) rides the fault-tolerant
:class:`~repro.eval.engine.EvalEngine`; everything order-sensitive —
corpus admission, coverage accounting, shrinking — happens parent-side
in seed order, so a campaign's corpus and report are deterministic
regardless of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .cell import FuzzCellResult
from .corpus import Corpus, CorpusEntry
from .faults import BugInjection
from .generator import DEFAULT_BUDGET, generate
from .oracles import run_oracles
from .shrink import DEFAULT_MAX_CHECKS, shrink

DEFAULT_CORPUS_DIR = ".fuzz-corpus"


@dataclass(frozen=True)
class FuzzOptions:
    """One campaign's knobs (the CLI maps flags straight onto this)."""

    seeds: int = 50
    seed_base: int = 0
    budget: int = DEFAULT_BUDGET
    corpus_dir: str = DEFAULT_CORPUS_DIR
    shrink: bool = True
    bug: str = ""
    max_shrink_checks: int = DEFAULT_MAX_CHECKS


@dataclass(frozen=True)
class Reproducer:
    """One shrunk failing program, persisted under ``failures/``."""

    seed: int
    profile: str
    oracles: Tuple[str, ...]
    original_statements: int
    shrunk_statements: int
    path: str


@dataclass
class FuzzReport:
    """What a campaign produced, renderable for the CLI."""

    seeds: int
    seed_base: int
    budget: int
    bug: str
    results: List[FuzzCellResult] = field(default_factory=list)
    reproducers: List[Reproducer] = field(default_factory=list)
    new_entries: int = 0
    new_features: int = 0
    corpus_size: int = 0
    coverage_size: int = 0
    total_instructions: int = 0

    @property
    def failures(self) -> List[Tuple[int, str, str, str]]:
        return [(result.seed, result.profile, oracle, detail)
                for result in self.results
                for oracle, detail in result.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def format_text(self) -> str:
        lines = [
            f"fuzz campaign: seeds {self.seed_base}.."
            f"{self.seed_base + self.seeds - 1}, budget "
            f"{self.budget:,} instructions per oracle machine"
        ]
        if self.bug:
            lines.append(f"injected bug: {self.bug}")
        lines.append(
            f"corpus: +{self.new_entries} seed(s), +{self.new_features} "
            f"feature(s) (now {self.corpus_size} seed(s), "
            f"{self.coverage_size} feature(s))")
        lines.append(
            f"simulated: {self.total_instructions:,} reference "
            f"instructions across {len(self.results)} seed(s)")
        if not self.failures:
            lines.append("oracle failures: none")
        else:
            lines.append(f"oracle failures: {len(self.failures)}")
            for seed, profile, oracle, detail in self.failures:
                summary = detail.splitlines()[0]
                lines.append(f"  seed {seed} ({profile}) [{oracle}] "
                             f"{summary}")
            for repro in self.reproducers:
                lines.append(
                    f"  reproducer: seed {repro.seed} shrunk "
                    f"{repro.original_statements} -> "
                    f"{repro.shrunk_statements} statement(s) at "
                    f"{repro.path}")
        return "\n".join(lines)


def _build_specs(options: FuzzOptions):
    from ..eval.engine import CellSpec

    specs = []
    for seed in range(options.seed_base, options.seed_base + options.seeds):
        program = generate(seed)
        specs.append(CellSpec(workload=f"fuzz{seed}",
                              defense=program.profile,
                              kind="fuzz",
                              fuzz_seed=seed,
                              fuzz_profile=program.profile,
                              fuzz_bug=options.bug,
                              max_instructions=options.budget))
    return specs


def shrink_failure(result: FuzzCellResult, options: FuzzOptions,
                   corpus: Corpus) -> Reproducer:
    """Minimize one failing seed and persist the reproducer record.

    The predicate re-runs only the oracles that failed, with a fresh
    injection per check (injections are stateful counters).
    """
    program = generate(result.seed, result.profile)
    failing = tuple(dict.fromkeys(oracle for oracle, _ in result.failures))

    def still_failing(candidate) -> bool:
        injection = (BugInjection.parse(result.bug)
                     if result.bug else None)
        report = run_oracles(candidate, budget=result.budget,
                             injection=injection, only=failing)
        return bool(report.failures)

    outcome = shrink(program, still_failing,
                     max_checks=options.max_shrink_checks)
    shrunk = outcome.program
    path = corpus.record_failure(
        f"seed{result.seed:05d}-{result.profile}",
        {
            "seed": result.seed,
            "profile": result.profile,
            "budget": result.budget,
            "bug": result.bug,
            "oracles": list(failing),
            "failures": [list(pair) for pair in result.failures],
            "original_statements": program.statement_count,
            "shrunk_statements": shrunk.statement_count,
            "shrink_checks": outcome.checks,
            "shrunk_source": shrunk.source,
        })
    return Reproducer(seed=result.seed, profile=result.profile,
                      oracles=failing,
                      original_statements=program.statement_count,
                      shrunk_statements=shrunk.statement_count,
                      path=str(path))


def run_campaign(engine, options: FuzzOptions,
                 echo: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run one campaign through ``engine`` and return the report."""
    say = echo or (lambda message: None)
    specs = _build_specs(options)
    results_by_spec = engine.run_cells(specs, artifact="fuzz")

    corpus = Corpus(options.corpus_dir)
    report = FuzzReport(seeds=options.seeds, seed_base=options.seed_base,
                        budget=options.budget, bug=options.bug)
    for spec in specs:
        result: FuzzCellResult = results_by_spec[spec]
        report.results.append(result)
        report.total_instructions += result.instructions
        # A bug-injection campaign exercises the oracles, not the
        # simulator: its coverage is tainted and stays out of the corpus.
        if result.ok and not options.bug:
            new = corpus.consider(CorpusEntry(
                seed=result.seed, profile=result.profile,
                budget=result.budget,
                source_sha256=result.source_sha256,
                features=result.features))
            if new:
                report.new_entries += 1
                report.new_features += len(new)
                say(f"corpus: kept seed {result.seed} "
                    f"({result.profile}): +{len(new)} feature(s)")
    for result in report.results:
        if result.ok:
            continue
        say(f"oracle failure: seed {result.seed} ({result.profile}): "
            f"{result.failures[0][0]}")
        if options.shrink:
            repro = shrink_failure(result, options, corpus)
            report.reproducers.append(repro)
            say(f"shrunk: seed {repro.seed} "
                f"{repro.original_statements} -> "
                f"{repro.shrunk_statements} statement(s)")
    report.corpus_size = len(corpus)
    report.coverage_size = len(corpus.coverage())
    return report
