"""The ``kind="fuzz"`` evaluation-engine cell.

One cell = one seed pushed through the full oracle set.  The result is
plain data (JSON round-trippable) so fuzz cells inherit the engine's
whole fault-tolerance story — supervised workers, retries, timeouts,
journaling, caching, span tracing — without any fuzz-specific plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .faults import BugInjection
from .generator import generate
from .oracles import run_oracles


@dataclass(frozen=True)
class FuzzCellResult:
    """Outcome of one seed's oracle pass (picklable, JSON-encodable)."""

    seed: int
    profile: str
    budget: int
    source_sha256: str
    statements: int
    #: Retired instructions of the differential reference run (the
    #: engine's throughput accounting reads this attribute).
    instructions: int
    features: Tuple[str, ...] = ()
    #: ``(oracle, detail)`` pairs; empty means every oracle passed.
    failures: Tuple[Tuple[str, str], ...] = ()
    bug: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "budget": self.budget,
            "source_sha256": self.source_sha256,
            "statements": self.statements,
            "instructions": self.instructions,
            "features": list(self.features),
            "failures": [list(pair) for pair in self.failures],
            "bug": self.bug,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FuzzCellResult":
        return cls(
            seed=int(record["seed"]),
            profile=str(record["profile"]),
            budget=int(record["budget"]),
            source_sha256=str(record["source_sha256"]),
            statements=int(record["statements"]),
            instructions=int(record["instructions"]),
            features=tuple(record["features"]),
            failures=tuple((str(oracle), str(detail))
                           for oracle, detail in record["failures"]),
            bug=str(record.get("bug", "")),
        )


def compute_fuzz_cell(spec) -> FuzzCellResult:
    """Pure function of a fuzz :class:`~repro.eval.engine.CellSpec`:
    generate the seed's program, run every oracle, package the report."""
    program = generate(spec.fuzz_seed, spec.fuzz_profile or None)
    injection = BugInjection.parse(spec.fuzz_bug) if spec.fuzz_bug else None
    report = run_oracles(program, budget=spec.max_instructions,
                         injection=injection)
    return FuzzCellResult(
        seed=program.seed,
        profile=program.profile,
        budget=spec.max_instructions,
        source_sha256=program.source_digest(),
        statements=program.statement_count,
        instructions=report.instructions,
        features=tuple(sorted(report.coverage)),
        failures=tuple((f.oracle, f.detail) for f in report.failures),
        bug=spec.fuzz_bug,
    )
