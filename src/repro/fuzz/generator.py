"""Grammar-based mini-x86 program generator for the fuzzing subsystem.

This is the promoted, extended form of the seeded generator that used to
live inside ``tests/test_differential.py``.  Programs are built as three
segments —

* a **prologue** that seeds every data register and allocates one heap
  object per pointer register,
* a **body** of independent *statements* drawn from weighted grammar
  phases (arithmetic, heap loads/stores, pointer walks, ``lea``/
  register-memory folds, counted loops, stack spills, indirect branches,
  free/re-malloc churn, ``realloc`` growth), and
* an **epilogue** that releases the first allocation and, for violation
  profiles, appends a payload that must trip exactly one Table I /
  capability-table check.

Every body statement is *self-contained*: it defines any label it jumps
to and leaves every pointer register owning an allocation at least as
large as the prologue's.  That invariant is what makes the shrinker
sound — deleting any subset of statements yields a program with the
same well-behavedness and the same expected violation set.

The grammar deliberately exercises every Table I rule class: ``mov-rr``,
``add-rr``/``add-ri``, ``sub-rr``/``sub-ri``, ``and-rr``/``and-ri``,
``lea``, ``add-rm`` (register-memory fold), ``ld``, ``st`` and ``movi``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..heap import heap_library_asm

#: Registers the generator uses for data (avoids rsp/rbp and ASan's r13-15).
DATA_REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "r8", "r9", "r10")
#: Registers that own a live heap allocation for the whole run.
PTR_REGS = ("r11", "r12")

#: Default per-oracle instruction budget (matches the tier-1 sweep).
DEFAULT_BUDGET = 20_000

#: Profile name for programs that must flag nothing anywhere.
WELL_BEHAVED = "well-behaved"

#: One profile per ``ViolationKind`` value; each appends an epilogue
#: payload whose expected violation class is the profile name itself.
VIOLATION_PROFILES = (
    "out-of-bounds",
    "use-after-free",
    "double-free",
    "invalid-free",
    "wild-dereference",
    "heap-spray",
    "permission",
)

PROFILES = (WELL_BEHAVED,) + VIOLATION_PROFILES

#: Host-escape name the permission profile calls; oracles install a hook
#: under this name that drops WRITE from the capability named by rdi.
PROTECT_HOOK = "fuzz_protect"

#: An offset no realloc/churn sequence can grow an allocation past, so
#: the out-of-bounds payload stays out of bounds for every body subset.
_FAR_OOB_OFFSET = 1 << 16

#: A constant address outside every tracked region (globals live near
#: 0x600000, the heap at 0x10000000): dereferencing it is always wild.
_WILD_ADDRESS = 0x7FFF_2000

#: One byte past the capGen resource-exhaustion limit (1 GiB default).
_SPRAY_BYTES = 0x8000_0000


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program, kept in shrinkable statement form."""

    seed: int
    profile: str
    prologue: Tuple[str, ...]
    body: Tuple[Tuple[str, ...], ...]
    epilogue: Tuple[str, ...]
    #: ``ViolationKind`` values the detection variant must observe.
    expected_kinds: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        if self.profile == WELL_BEHAVED:
            return f"fuzz{self.seed}"
        return f"fuzz{self.seed}-{self.profile}"

    @property
    def uses_protect_hook(self) -> bool:
        return any(PROTECT_HOOK in line for line in self.epilogue)

    @property
    def statement_count(self) -> int:
        return len(self.body)

    @property
    def source(self) -> str:
        lines: List[str] = list(self.prologue)
        for statement in self.body:
            lines.extend(statement)
        lines.extend(self.epilogue)
        return "\n".join(lines) + "\n" + heap_library_asm()

    def source_digest(self) -> str:
        return hashlib.sha256(self.source.encode()).hexdigest()

    def with_body(self,
                  body: Sequence[Sequence[str]]) -> "FuzzProgram":
        """The same program with a subset of body statements (shrinking)."""
        return replace(self, body=tuple(tuple(s) for s in body))


def profile_for_seed(seed: int) -> str:
    """Deterministic profile rotation: three well-behaved seeds, then one
    violating seed cycling through every violation class, so any
    contiguous seed range covers the whole Table I + violation space."""
    if seed % 4 == 3:
        return VIOLATION_PROFILES[(seed // 4) % len(VIOLATION_PROFILES)]
    return WELL_BEHAVED


def _payload(profile: str, ptr: str) -> Tuple[Tuple[str, ...],
                                              Tuple[str, ...]]:
    """Epilogue payload lines and expected violation kinds for a
    violation profile.  ``ptr`` still owns a live allocation here."""
    if profile == "out-of-bounds":
        return ((f"    mov [{ptr} + {_FAR_OOB_OFFSET}], rax",),
                ("out-of-bounds",))
    if profile == "use-after-free":
        return ((f"    mov rdi, {ptr}",
                 "    call free",
                 f"    mov rax, [{ptr}]"),
                ("use-after-free",))
    if profile == "double-free":
        return ((f"    mov rdi, {ptr}",
                 "    call free",
                 f"    mov rdi, {ptr}",
                 "    call free"),
                ("double-free",))
    if profile == "invalid-free":
        return ((f"    lea rdi, [{ptr} + 8]",
                 "    call free"),
                ("invalid-free",))
    if profile == "wild-dereference":
        return ((f"    movabs rsi, {_WILD_ADDRESS:#x}",
                 "    mov rax, [rsi]"),
                ("wild-dereference",))
    if profile == "heap-spray":
        return ((f"    mov rdi, {_SPRAY_BYTES:#x}",
                 "    call malloc"),
                ("heap-spray",))
    if profile == "permission":
        return ((f"    mov rdi, {ptr}",
                 f"    hostop {PROTECT_HOOK}",
                 f"    mov [{ptr}], rax"),
                ("permission",))
    raise ValueError(f"unknown violation profile {profile!r}")


class _Grammar:
    """Weighted statement phases.  Each phase returns one statement — a
    tuple of assembly lines that is safe to include or delete
    independently of every other statement."""

    def __init__(self, rng: random.Random, seed: int,
                 sizes: Dict[str, int]) -> None:
        self.rng = rng
        self.seed = seed
        #: Immutable floor sizes: offsets are always chosen against the
        #: prologue allocation, which no churn/realloc ever shrinks below.
        self.sizes = sizes

    def _data(self) -> str:
        return self.rng.choice(DATA_REGS)

    def _ptr(self) -> str:
        return self.rng.choice(PTR_REGS)

    def _offset(self, ptr: str) -> int:
        return self.rng.randrange(self.sizes[ptr] // 8) * 8

    # -- phases ---------------------------------------------------------------

    def alu_rr(self, i: int) -> Tuple[str, ...]:
        op = self.rng.choice(["add", "sub", "and", "or", "xor", "imul"])
        return (f"    {op} {self._data()}, {self._data()}",)

    def alu_ri(self, i: int) -> Tuple[str, ...]:
        op = self.rng.choice(["add", "sub", "and"])
        if op == "and":
            imm = self.rng.choice([-1, -8, 0xFFFF, 0xFF])
        else:
            imm = self.rng.randrange(1 << 12)
        return (f"    {op} {self._data()}, {imm}",)

    def movi(self, i: int) -> Tuple[str, ...]:
        return (f"    mov {self._data()}, {self.rng.randrange(1 << 20)}",)

    def mov_rr(self, i: int) -> Tuple[str, ...]:
        return (f"    mov {self._data()}, {self._data()}",)

    def load(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        return (f"    mov {self._data()}, [{ptr} + {self._offset(ptr)}]",)

    def store(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        return (f"    mov [{ptr} + {self._offset(ptr)}], {self._data()}",)

    def lea_walk(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        return (f"    lea rsi, [{ptr} + {self._offset(ptr)}]",
                "    mov rdx, [rsi]")

    def add_rm(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        reg = self.rng.choice([r for r in DATA_REGS if r != "rsi"])
        return (f"    add {reg}, [{ptr} + {self._offset(ptr)}]",)

    def ptr_arith(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        offset = self._offset(ptr)
        return (f"    mov rsi, {ptr}",
                f"    add rsi, {offset}",
                f"    mov {self.rng.choice(('rdx', 'r8', 'r9'))}, [rsi]")

    def ptr_copy(self, i: int) -> Tuple[str, ...]:
        return (f"    mov rsi, {self._ptr()}",
                "    mov rdx, [rsi]")

    def loop(self, i: int) -> Tuple[str, ...]:
        counter = self._data()
        body = self.rng.choice([r for r in DATA_REGS if r != counter])
        count = self.rng.randint(2, 6)
        label = f"fz{self.seed}_loop{i}"
        return (f"    mov {counter}, 0",
                f"{label}:",
                f"    add {body}, 3",
                f"    add {counter}, 1",
                f"    cmp {counter}, {count}",
                f"    jl {label}")

    def spill(self, i: int) -> Tuple[str, ...]:
        return (f"    push {self._data()}",
                f"    pop {self._data()}")

    def indirect(self, i: int) -> Tuple[str, ...]:
        # The landing pad clears the register: a code address left in
        # architectural state would legitimately differ under the static
        # binary translator (inserted capchk shifts the code layout).
        reg = self._data()
        label = f"fz{self.seed}_ind{i}"
        return (f"    mov {reg}, {label}",
                f"    jmp {reg}",
                f"{label}:",
                f"    mov {reg}, 0")

    def churn(self, i: int) -> Tuple[str, ...]:
        """Free and immediately re-allocate one pointer register.  The
        replacement is never smaller than the prologue object, so every
        other statement's offsets stay in bounds."""
        ptr = self._ptr()
        size = self.sizes[ptr] + self.rng.choice([0, 8, 32])
        return (f"    mov rdi, {ptr}",
                "    call free",
                f"    mov rdi, {size}",
                "    call malloc",
                f"    mov {ptr}, rax")

    def realloc(self, i: int) -> Tuple[str, ...]:
        ptr = self._ptr()
        size = self.sizes[ptr] + self.rng.choice([8, 16, 64])
        return (f"    mov rdi, {ptr}",
                f"    mov rsi, {size}",
                "    call realloc",
                f"    mov {ptr}, rax")


#: (phase method name, weight).  Weights bias toward the memory-safety
#: interesting phases while keeping every Table I rule class reachable.
_PHASES = (
    ("alu_rr", 3),
    ("alu_ri", 2),
    ("movi", 2),
    ("mov_rr", 2),
    ("load", 3),
    ("store", 3),
    ("lea_walk", 2),
    ("add_rm", 1),
    ("ptr_arith", 2),
    ("ptr_copy", 1),
    ("loop", 2),
    ("spill", 2),
    ("indirect", 1),
    ("churn", 1),
    ("realloc", 1),
)


def generate(seed: int, profile: Optional[str] = None) -> FuzzProgram:
    """Deterministically generate one program.

    ``profile`` defaults to :func:`profile_for_seed`'s rotation.  The
    same ``(seed, profile)`` pair always yields the same program, on any
    platform (the RNG is seeded with a string, which Python hashes with
    SHA-512 irrespective of ``PYTHONHASHSEED``).
    """
    if profile is None:
        profile = profile_for_seed(seed)
    if profile not in PROFILES:
        raise ValueError(f"unknown fuzz profile {profile!r}")
    rng = random.Random(f"repro.fuzz/{seed}/{profile}")

    prologue: List[str] = ["main:"]
    for reg in DATA_REGS:
        prologue.append(f"    mov {reg}, {rng.randrange(1 << 16)}")
    sizes: Dict[str, int] = {}
    for reg in PTR_REGS:
        size = rng.choice([32, 64, 128])
        sizes[reg] = size
        prologue.append(f"    mov rdi, {size}")
        prologue.append("    call malloc")
        prologue.append(f"    mov {reg}, rax")

    grammar = _Grammar(rng, seed, sizes)
    names = [name for name, weight in _PHASES for _ in range(weight)]
    body: List[Tuple[str, ...]] = []
    for i in range(rng.randint(6, 32)):
        body.append(getattr(grammar, rng.choice(names))(i))

    epilogue: List[str] = [f"    mov rdi, {PTR_REGS[0]}",
                           "    call free",
                           f"    mov {PTR_REGS[0]}, 0"]
    expected: Tuple[str, ...] = ()
    if profile != WELL_BEHAVED:
        payload, expected = _payload(profile, PTR_REGS[1])
        epilogue.extend(payload)
    epilogue.append("    halt")

    return FuzzProgram(seed=seed, profile=profile,
                       prologue=tuple(prologue), body=tuple(body),
                       epilogue=tuple(epilogue), expected_kinds=expected)


def generate_program(seed: int) -> str:
    """Back-compatible source-only entry point: the well-behaved program
    for ``seed`` (what ``tests/test_differential.py`` sweeps)."""
    return generate(seed, WELL_BEHAVED).source
