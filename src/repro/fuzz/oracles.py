"""The pluggable oracle set: what "this program ran correctly" means.

Every oracle runs the same generated program on several machines and
cross-checks them.  Machines are labeled with a *role* string
(``diff:superblock``, ``transparency:insecure``, ``snapshot:restored``,
``conservation:chunked``, ...) — both for failure messages and so
:class:`~repro.fuzz.faults.BugInjection` can plant a bug into exactly
one of them.

* **differential** — slow path vs decoded blocks vs superblock replay:
  identical instructions/cycles/uops, architectural state, violation
  log, and every non-``frontend.*`` metric.
* **transparency** — the four protected variants vs the insecure
  baseline on the same program: well-behaved programs must finish in
  the identical architectural state with zero violations; violating
  programs must be *detected* by the always-on microcode variant with
  exactly the generator's expected violation classes.  Well-behaved
  programs additionally run through the static binary translator
  (``bt-isa-extension``) and must remain invisible there too.
* **snapshot** — run to a seeded random cut, snapshot, restore,
  finish; the round-trip must be observationally identical to the
  uninterrupted run.
* **conservation** — the whole run vs the same run chopped into seeded
  random ``run_quantum`` slices: every conserved metric must agree
  (checked via ``repro.telemetry.diffs`` so a failure names the
  non-conserved counter).

Frontend counters (``frontend.*``) measure the caches themselves and
legitimately differ across modes and chunkings; they are stripped from
equality checks but still feed the coverage map.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core import Chex86Machine, Variant
from ..core.capability import Perm
from ..core.machine import BLOCK_CACHE_BLOCKS
from ..isa import Reg, assemble
from ..telemetry import diff_snapshots
from .coverage import (RuleHitRecorder, metric_features, variant_feature,
                       violation_features)
from .faults import BugInjection
from .generator import DEFAULT_BUDGET, FuzzProgram, PROTECT_HOOK

#: The three execution modes under differential test.
MODES = (False, BLOCK_CACHE_BLOCKS, True)
MODE_IDS = ("slow", "blocks", "superblock")

#: The four protected design points of the transparency sweep.
PROTECTED_VARIANTS = (Variant.HW_ONLY, Variant.BINARY_TRANSLATION,
                      Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION)

#: The variant violating programs are asserted to be *caught* by.
DETECTION_VARIANT = Variant.UCODE_ALWAYS_ON


@dataclass(frozen=True)
class OracleFailure:
    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass
class OracleReport:
    """Everything one program's oracle pass produced."""

    seed: int
    profile: str
    failures: List[OracleFailure] = field(default_factory=list)
    coverage: Set[str] = field(default_factory=set)
    #: Retired instructions of the differential reference run (engine
    #: throughput accounting).
    instructions: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


# -- shared machinery ------------------------------------------------------------


def install_protect_hook(machine: Chex86Machine) -> None:
    """The permission profile's host escape: drop WRITE from the
    capability owning the address in rdi (no-op when untracked, e.g. on
    the insecure baseline)."""

    def protect(regs: List[int]) -> None:
        capability = machine.captable.find_by_address(regs[int(Reg.RDI)])
        if capability is not None:
            capability.perms &= ~Perm.WRITE

    machine.host_table[PROTECT_HOOK] = protect


def architectural_state(machine: Chex86Machine):
    """All registers except RSP plus the first 64 heap words — the
    observable outcome a transform must preserve."""
    regs = tuple(machine.regs[int(r)] for r in Reg if r is not Reg.RSP)
    heap_words = tuple(machine.memory.peek_word(0x1000_0000 + i * 8)
                       for i in range(64))
    return regs, heap_words


def strip_frontend(mapping: Dict[str, object]) -> Dict[str, object]:
    return {key: value for key, value in mapping.items()
            if not key.startswith("frontend.")}


def _violation_strs(machine: Chex86Machine) -> List[str]:
    return [str(v) for v in machine.violations.violations]


class _OracleContext:
    """Per-program run context shared by the oracle functions."""

    def __init__(self, program: FuzzProgram, budget: int,
                 injection: Optional[BugInjection]) -> None:
        self.program = program
        self.budget = budget
        self.injection = injection
        self.assembled = assemble(program.source, name=program.name)
        self.report = OracleReport(seed=program.seed, profile=program.profile)

    def fail(self, oracle: str, detail: str) -> None:
        self.report.failures.append(OracleFailure(oracle, detail))

    def machine(self, variant: Variant, mode, role: str, *,
                trap: bool = False, rules=None) -> Chex86Machine:
        kwargs = {}
        if rules is not None:
            kwargs["rules"] = rules
        machine = Chex86Machine(self.assembled, variant=variant,
                                halt_on_violation=trap, **kwargs)
        machine.block_cache_enabled = mode
        if self.program.uses_protect_hook:
            install_protect_hook(machine)
        if self.injection is not None:
            self.injection.arm(machine, role)
        return machine

    def base_variant(self, salt: int) -> Variant:
        """Violating programs always run under the detection variant;
        well-behaved ones rotate so the sweep covers all four."""
        if self.program.expected_kinds:
            return DETECTION_VARIANT
        index = (self.program.seed + salt) % len(PROTECTED_VARIANTS)
        return PROTECTED_VARIANTS[index]


# -- oracles ----------------------------------------------------------------------


def _compare_runs(ctx: _OracleContext, oracle: str, label: str,
                  machine: Chex86Machine, reference: Chex86Machine) -> None:
    """The shared observational-equality block: architectural state,
    violation log, retirement counters, and conserved metrics."""
    if machine.halted != reference.halted:
        ctx.fail(oracle, f"{label}: halted {machine.halted} "
                         f"vs {reference.halted}")
    if machine.instructions != reference.instructions:
        ctx.fail(oracle, f"{label}: retired {machine.instructions} "
                         f"vs {reference.instructions} instructions")
    if architectural_state(machine) != architectural_state(reference):
        ctx.fail(oracle, f"{label}: architectural state diverged")
    if _violation_strs(machine) != _violation_strs(reference):
        ctx.fail(oracle, f"{label}: violations {_violation_strs(machine)} "
                         f"vs {_violation_strs(reference)}")
    diff = diff_snapshots(strip_frontend(reference.metrics_snapshot()),
                          strip_frontend(machine.metrics_snapshot()))
    if not diff.identical:
        ctx.fail(oracle, f"{label}: metrics diverged\n{diff.format_text()}")
    if (strip_frontend(machine.phase_counters())
            != strip_frontend(reference.phase_counters())):
        ctx.fail(oracle, f"{label}: phase counters diverged")


def _superblock_identity(ctx: _OracleContext, oracle: str, label: str,
                         machine: Chex86Machine) -> None:
    counters = machine.phase_counters()
    replayed = counters["frontend.superblock_instructions"]
    stepped = counters["frontend.fallback_instructions"]
    if replayed + stepped != machine.instructions:
        ctx.fail(oracle, f"{label}: superblock meters do not partition "
                         f"the commit count ({replayed} + {stepped} != "
                         f"{machine.instructions})")


def oracle_differential(ctx: _OracleContext) -> None:
    """Slow vs decoded-block vs superblock replay on one variant."""
    variant = ctx.base_variant(0)
    recorder = RuleHitRecorder.table1()
    reference = ctx.machine(variant, False, "diff:slow", rules=recorder)
    result = reference.run(max_instructions=ctx.budget)
    ctx.report.instructions = result.instructions
    if not result.halted:
        ctx.fail("differential", "slow: did not halt within budget")
    ctx.report.coverage |= recorder.features()
    ctx.report.coverage |= violation_features(reference.violations.kinds())
    ctx.report.coverage.add(variant_feature(variant))

    for mode, mode_id in zip(MODES[1:], MODE_IDS[1:]):
        machine = ctx.machine(variant, mode, f"diff:{mode_id}")
        run = machine.run(max_instructions=ctx.budget)
        label = f"{mode_id} ({variant.value})"
        if run.cycles != result.cycles:
            ctx.fail("differential", f"{label}: {run.cycles} vs "
                                     f"{result.cycles} cycles")
        if run.uops != result.uops:
            ctx.fail("differential", f"{label}: {run.uops} vs "
                                     f"{result.uops} uops")
        _compare_runs(ctx, "differential", label, machine, reference)
        if mode is True:
            _superblock_identity(ctx, "differential", label, machine)
            ctx.report.coverage |= metric_features(
                machine.metrics_snapshot())


def oracle_transparency(ctx: _OracleContext) -> None:
    """Protected variants vs the insecure baseline, plus detection."""
    program = ctx.program
    baseline = ctx.machine(Variant.INSECURE, True, "transparency:insecure")
    base_result = baseline.run(max_instructions=ctx.budget)
    ctx.report.coverage.add(variant_feature(Variant.INSECURE))
    if not base_result.halted:
        ctx.fail("transparency", "insecure: did not halt within budget")
    if baseline.violations.count():
        ctx.fail("transparency", "insecure baseline flagged violations")
    expected_state = architectural_state(baseline)

    for variant in PROTECTED_VARIANTS:
        role = f"transparency:{variant.value}"
        machine = ctx.machine(variant, True, role)
        run = machine.run(max_instructions=ctx.budget)
        ctx.report.coverage.add(variant_feature(variant))
        if not run.halted:
            ctx.fail("transparency",
                     f"{variant.value}: did not halt within budget")
            continue
        observed = {kind.value for kind in machine.violations.kinds()}
        if program.expected_kinds:
            if variant is DETECTION_VARIANT:
                missing = set(program.expected_kinds) - observed
                if missing:
                    ctx.fail("transparency",
                             f"{variant.value}: expected violation "
                             f"class(es) {sorted(missing)} not flagged "
                             f"(saw {sorted(observed)})")
        elif observed:
            ctx.fail("transparency",
                     f"{variant.value}: false positive {sorted(observed)}")
        if architectural_state(machine) != expected_state:
            ctx.fail("transparency",
                     f"{variant.value}: architectural state diverged "
                     f"from the insecure baseline")

    if not program.expected_kinds:
        # Static binary translation must be just as invisible.  Its
        # instruction stream differs (inserted capchk), so only the
        # architectural outcome and violation log are compared.
        from ..translator import translate

        translated, _ = translate(ctx.assembled)
        machine = Chex86Machine(translated,
                                variant=Variant.BT_ISA_EXTENSION,
                                halt_on_violation=False)
        if ctx.injection is not None:
            ctx.injection.arm(machine, "transparency:bt-isa-extension")
        run = machine.run(max_instructions=2 * ctx.budget)
        ctx.report.coverage.add(variant_feature(Variant.BT_ISA_EXTENSION))
        if not run.halted:
            ctx.fail("transparency",
                     "bt-isa-extension: did not halt within budget")
        elif machine.violations.count():
            ctx.fail("transparency",
                     f"bt-isa-extension: false positive "
                     f"{_violation_strs(machine)}")
        elif architectural_state(machine) != expected_state:
            ctx.fail("transparency",
                     "bt-isa-extension: architectural state diverged")


def oracle_snapshot(ctx: _OracleContext) -> None:
    """Snapshot/restore round-trip at a seeded random cut."""
    program = ctx.program
    variant = ctx.base_variant(1)
    rng = random.Random(f"repro.fuzz/cut/{program.seed}/{program.profile}")
    cut = rng.randrange(1, ctx.budget)

    whole = ctx.machine(variant, True, "snapshot:whole")
    whole.run_quantum(ctx.budget)

    split = ctx.machine(variant, True, "snapshot:split")
    split.run_quantum(cut)
    # Custom host hooks make a machine non-snapshotable (they cannot be
    # serialized); the permission profile's escape only mutates the
    # capability table, which *is* captured — so detach the hook around
    # the capture and reattach it on the restored machine.
    if program.uses_protect_hook:
        split.host_table.pop(PROTECT_HOOK, None)
    restored = Chex86Machine.restore(split.snapshot())
    if program.uses_protect_hook:
        install_protect_hook(restored)
    if ctx.injection is not None:
        ctx.injection.mutate(restored, "snapshot:restored")
    restored.run_quantum(ctx.budget - cut)

    _compare_runs(ctx, "snapshot", f"restored@{cut} ({variant.value})",
                  restored, whole)


def oracle_conservation(ctx: _OracleContext) -> None:
    """Whole run vs seeded random ``run_quantum`` slices: all conserved
    metrics must agree regardless of where the run is cut."""
    program = ctx.program
    variant = ctx.base_variant(2)
    whole = ctx.machine(variant, True, "conservation:whole")
    whole.run_quantum(ctx.budget)

    chunked = ctx.machine(variant, True, "conservation:chunked")
    rng = random.Random(f"repro.fuzz/chunk/{program.seed}/{program.profile}")
    remaining = ctx.budget
    while remaining > 0 and not chunked.halted:
        quantum = min(remaining, rng.randrange(64, 1024))
        chunked.run_quantum(quantum)
        remaining -= quantum
    if ctx.injection is not None:
        ctx.injection.mutate(chunked, "conservation:chunked")

    label = f"chunked ({variant.value})"
    _compare_runs(ctx, "conservation", label, chunked, whole)
    _superblock_identity(ctx, "conservation", label, chunked)
    _superblock_identity(ctx, "conservation",
                         f"whole ({variant.value})", whole)


#: Registration order is also execution order.
ORACLES: Tuple[Tuple[str, Callable[[_OracleContext], None]], ...] = (
    ("differential", oracle_differential),
    ("transparency", oracle_transparency),
    ("snapshot", oracle_snapshot),
    ("conservation", oracle_conservation),
)

ORACLE_NAMES = tuple(name for name, _ in ORACLES)


def run_oracles(program: FuzzProgram, *, budget: int = DEFAULT_BUDGET,
                injection: Optional[BugInjection] = None,
                only: Optional[Sequence[str]] = None) -> OracleReport:
    """Run the oracle set over one program and return the report.

    ``only`` restricts to a subset of oracle names (the shrinker re-runs
    just the failing oracle); an unknown name raises ``ValueError``.
    """
    if only is not None:
        unknown = set(only) - set(ORACLE_NAMES)
        if unknown:
            raise ValueError(f"unknown oracle(s): {sorted(unknown)}")
    ctx = _OracleContext(program, budget, injection)
    for name, oracle in ORACLES:
        if only is not None and name not in only:
            continue
        oracle(ctx)
    return ctx.report
