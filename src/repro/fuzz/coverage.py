"""Coverage features for the fuzzing loop.

A *feature* is a short string naming one behavior a program exhibited;
the corpus keeps any seed contributing a feature nobody else has.  Four
families:

* ``rule:<name>`` — a Table I rule fired dynamically during tracking
  (``rule:default`` is the "all other operations" fallthrough row),
  recorded by substituting a counting :class:`RuleHitRecorder` for the
  reference machine's rule database;
* ``violation:<kind>`` — a violation class the detection variant
  observed;
* ``variant:<value>`` — a CHEx86 design point the oracles executed the
  program under;
* ``metric:<name>:<bucket>`` — a registered counter reached a new
  power-of-two magnitude (``bucket`` is ``value.bit_length()``), over
  the frontend/machine/predictor/heap/cache metric families.  This is
  the cheap stand-in for branch coverage: a program that makes any
  meter move an order of magnitude is worth keeping.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Set

from ..core import RuleDatabase, Variant
from ..core.violations import ViolationKind

#: Metric families that contribute ``metric:`` features.
METRIC_PREFIXES = ("frontend.", "machine.", "predictor.", "heap.", "cache.")

#: The default-policy pseudo-rule (Table I's "all other operations").
DEFAULT_RULE = "default"


class RuleHitRecorder(RuleDatabase):
    """A Table I rule database that counts dynamic ``lookup`` hits.

    ``lookup`` is called live on every tracked micro-op in all three
    execution modes (the memo is consulted *inside* the override), so
    the counts reflect what the tracker actually evaluated.
    """

    def __init__(self, rules=()) -> None:
        super().__init__(rules)
        self.hits: Counter = Counter()

    def lookup(self, uop):
        rule = super().lookup(uop)
        self.hits[rule.name if rule is not None else DEFAULT_RULE] += 1
        return rule

    def features(self) -> Set[str]:
        return {f"rule:{name}" for name in self.hits}


def metric_features(snapshot: Dict[str, object]) -> Set[str]:
    """Bucketed magnitude features for one ``metrics_snapshot()``."""
    features: Set[str] = set()
    for name, value in snapshot.items():
        if not isinstance(value, int) or isinstance(value, bool):
            continue
        if not name.startswith(METRIC_PREFIXES):
            continue
        bucket = value.bit_length() if value > 0 else 0
        features.add(f"metric:{name}:{bucket}")
    return features


def violation_features(kinds: Iterable[ViolationKind]) -> Set[str]:
    return {f"violation:{kind.value}" for kind in kinds}


def variant_feature(variant: Variant) -> str:
    return f"variant:{variant.value}"


def all_rule_names() -> List[str]:
    """Every Table I rule class the coverage map must reach, plus the
    default row."""
    return [rule.name for rule in RuleDatabase.table1()] + [DEFAULT_RULE]


def unreached_classes(features: Iterable[str]) -> Dict[str, List[str]]:
    """Which enumerable classes no feature covers — the completeness
    test prints this verbatim, so a hole names itself."""
    have = set(features)
    missing: Dict[str, List[str]] = {
        "variants": [variant.value for variant in Variant
                     if f"variant:{variant.value}" not in have],
        "rules": [name for name in all_rule_names()
                  if f"rule:{name}" not in have],
        "violations": [kind.value for kind in ViolationKind
                       if f"violation:{kind.value}" not in have],
    }
    return {family: names for family, names in missing.items() if names}
