"""Unit tests for the stride-based pointer-reload predictor."""

import pytest

from repro.core import MispredictKind, PointerReloadPredictor


PC = 0x400100
OTHER_PC = 0x400200


def train(predictor, pc, pids):
    """Feed a PID sequence through predict/update; returns the predictions."""
    predictions = []
    for pid in pids:
        predicted = predictor.predict(pc)
        predictions.append(predicted)
        predictor.update(pc, predicted, pid)
    return predictions


@pytest.fixture
def predictor():
    return PointerReloadPredictor(entries=512)


class TestPatterns:
    """The Table II temporal patterns the predictor must capture."""

    def test_constant_pattern(self, predictor):
        predictions = train(predictor, PC, [31] * 8)
        assert predictions[-4:] == [31] * 4  # converges to the constant

    def test_stride_pattern(self, predictor):
        predictions = train(predictor, PC, [13, 16, 19, 22, 25, 28, 31])
        assert predictions[-2:] == [28, 31]

    def test_batch_plus_stride(self, predictor):
        pids = [11, 11, 11, 15, 15, 15, 19, 19, 19, 23, 23, 23]
        predictions = train(predictor, PC, pids)
        # Within a batch the stride-0 predictions are right; transitions miss.
        assert predictions[2] == 11
        assert predictions[8] == 19

    def test_random_defeats_predictor_gracefully(self, predictor):
        pids = [26, 3, 91, 14, 55, 7, 68, 22]
        train(predictor, PC, pids)
        assert predictor.stats.mispredictions > 0  # but never crashes


class TestMispredictClassification:
    def test_correct_prediction(self, predictor):
        assert predictor.update(PC, 5, 5) is None
        assert predictor.stats.correct == 1

    def test_pna0(self, predictor):
        assert predictor.update(PC, 5, 0) == MispredictKind.PNA0

    def test_p0an(self, predictor):
        assert predictor.update(PC, 0, 5) == MispredictKind.P0AN

    def test_pman(self, predictor):
        assert predictor.update(PC, 3, 5) == MispredictKind.PMAN

    def test_correct_untracked(self, predictor):
        assert predictor.update(PC, 0, 0) is None


class TestBlacklist:
    def test_data_loads_get_blacklisted(self, predictor):
        for _ in range(4):
            predicted = predictor.predict(PC)
            predictor.update(PC, predicted, 0)
        predictor.predict(PC)
        assert predictor.stats.blacklist_filtered >= 1

    def test_blacklist_releases_on_pointer_activity(self, predictor):
        for _ in range(4):
            predictor.update(PC, 0, 0)
        for pid in (7, 7, 7, 7, 7, 7):
            predicted = predictor.predict(PC)
            predictor.update(PC, predicted, pid)
        assert predictor.predict(PC) == 7

    def test_blacklist_isolated_per_pc(self, predictor):
        for _ in range(4):
            predictor.update(PC, 0, 0)
        train(predictor, OTHER_PC, [9] * 6)
        assert predictor.predict(OTHER_PC) == 9


class TestTableMechanics:
    def test_tag_hit_predicts_last_pid_before_confidence(self, predictor):
        # A tag hit always asserts "this is a pointer reload" — a wrong PID
        # costs a PMAN forward, whereas missing a real reload costs a P0AN
        # flush — but the stride is not applied until confidence builds.
        predictor.update(PC, 0, 5)
        assert predictor.predict(PC) == 5

    def test_unseen_pc_predicts_untracked(self, predictor):
        assert predictor.predict(PC) == 0

    def test_alias_thrashing_decays_then_replaces(self):
        predictor = PointerReloadPredictor(entries=1)  # force conflicts
        train(predictor, PC, [5, 5, 5, 5])
        train(predictor, OTHER_PC, [9, 9, 9, 9, 9, 9, 9, 9])
        assert predictor.predict(OTHER_PC) == 9

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PointerReloadPredictor(entries=0)

    def test_accuracy_metric(self, predictor):
        train(predictor, PC, [4] * 10)
        assert 0.0 <= predictor.stats.accuracy <= 1.0
        assert predictor.stats.misprediction_rate == pytest.approx(
            1.0 - predictor.stats.accuracy)

    def test_negative_prediction_clamped(self, predictor):
        # A falling stride never predicts a negative PID.
        train(predictor, PC, [9, 6, 3])
        assert predictor.predict(PC) >= 0
