"""Unit tests for the stride-based pointer-reload predictor."""

import pytest

from repro.core import MispredictKind, PointerReloadPredictor


PC = 0x400100
OTHER_PC = 0x400200


def train(predictor, pc, pids):
    """Feed a PID sequence through predict/update; returns the predictions."""
    predictions = []
    for pid in pids:
        predicted = predictor.predict(pc)
        predictions.append(predicted)
        predictor.update(pc, predicted, pid)
    return predictions


@pytest.fixture
def predictor():
    return PointerReloadPredictor(entries=512)


class TestPatterns:
    """The Table II temporal patterns the predictor must capture."""

    def test_constant_pattern(self, predictor):
        predictions = train(predictor, PC, [31] * 8)
        assert predictions[-4:] == [31] * 4  # converges to the constant

    def test_stride_pattern(self, predictor):
        predictions = train(predictor, PC, [13, 16, 19, 22, 25, 28, 31])
        assert predictions[-2:] == [28, 31]

    def test_batch_plus_stride(self, predictor):
        pids = [11, 11, 11, 15, 15, 15, 19, 19, 19, 23, 23, 23]
        predictions = train(predictor, PC, pids)
        # Within a batch the stride-0 predictions are right; transitions miss.
        assert predictions[2] == 11
        assert predictions[8] == 19

    def test_random_defeats_predictor_gracefully(self, predictor):
        pids = [26, 3, 91, 14, 55, 7, 68, 22]
        train(predictor, PC, pids)
        assert predictor.stats.mispredictions > 0  # but never crashes


class TestMispredictClassification:
    def test_correct_prediction(self, predictor):
        assert predictor.update(PC, 5, 5) is None
        assert predictor.stats.correct == 1

    def test_pna0(self, predictor):
        assert predictor.update(PC, 5, 0) == MispredictKind.PNA0

    def test_p0an(self, predictor):
        assert predictor.update(PC, 0, 5) == MispredictKind.P0AN

    def test_pman(self, predictor):
        assert predictor.update(PC, 3, 5) == MispredictKind.PMAN

    def test_correct_untracked(self, predictor):
        assert predictor.update(PC, 0, 0) is None


class TestBlacklist:
    def test_data_loads_get_blacklisted(self, predictor):
        for _ in range(4):
            predicted = predictor.predict(PC)
            predictor.update(PC, predicted, 0)
        predictor.predict(PC)
        assert predictor.stats.blacklist_filtered >= 1

    def test_blacklist_releases_on_pointer_activity(self, predictor):
        for _ in range(4):
            predictor.update(PC, 0, 0)
        for pid in (7, 7, 7, 7, 7, 7):
            predicted = predictor.predict(PC)
            predictor.update(PC, predicted, pid)
        assert predictor.predict(PC) == 7

    def test_blacklist_isolated_per_pc(self, predictor):
        for _ in range(4):
            predictor.update(PC, 0, 0)
        train(predictor, OTHER_PC, [9] * 6)
        assert predictor.predict(OTHER_PC) == 9


class TestTableMechanics:
    def test_tag_hit_predicts_last_pid_before_confidence(self, predictor):
        # A tag hit always asserts "this is a pointer reload" — a wrong PID
        # costs a PMAN forward, whereas missing a real reload costs a P0AN
        # flush — but the stride is not applied until confidence builds.
        predictor.update(PC, 0, 5)
        assert predictor.predict(PC) == 5

    def test_unseen_pc_predicts_untracked(self, predictor):
        assert predictor.predict(PC) == 0

    def test_alias_thrashing_decays_then_replaces(self):
        predictor = PointerReloadPredictor(entries=1)  # force conflicts
        train(predictor, PC, [5, 5, 5, 5])
        train(predictor, OTHER_PC, [9, 9, 9, 9, 9, 9, 9, 9])
        assert predictor.predict(OTHER_PC) == 9

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PointerReloadPredictor(entries=0)

    def test_accuracy_metric(self, predictor):
        train(predictor, PC, [4] * 10)
        assert 0.0 <= predictor.stats.accuracy <= 1.0
        assert predictor.stats.misprediction_rate == pytest.approx(
            1.0 - predictor.stats.accuracy)

    def test_negative_prediction_clamped(self, predictor):
        # A falling stride never predicts a negative PID.
        train(predictor, PC, [9, 6, 3])
        assert predictor.predict(PC) >= 0


class TestSlotAliasing:
    """Index collisions must not corrupt the resident entry's predictions.

    With 512 table entries and 4-byte instruction slots, two loads whose
    pcs differ by 512 * 4 = 2048 bytes index the same predictor slot but
    carry different tags.  The paper's Section V-C rationale for the
    blacklist — avoid destructive aliasing in the predictor table —
    applies to tag conflicts too: a colliding load may *contest* the
    slot (and eventually evict it) but must never silently degrade the
    resident instruction's stride confidence.
    """

    ALIAS_PC = PC + 512 * 4  # same slot as PC, different tag

    def test_collision_does_not_degrade_confident_stride(self, predictor):
        # Train load A to a fully confident +3 stride.
        train(predictor, PC, [10, 13, 16, 19, 22])
        assert predictor.predict(PC) == 25
        # Two colliding reloads from load B (not enough to evict A).
        predictor.update(self.ALIAS_PC, 0, 99)
        predictor.update(self.ALIAS_PC, 0, 99)
        # A's stride prediction is intact — not decayed to "last PID".
        assert predictor.predict(PC) == 25

    def test_collision_does_not_corrupt_training(self, predictor):
        train(predictor, PC, [10, 13, 16, 19, 22])
        predictor.update(self.ALIAS_PC, 0, 7)
        # Training A continues from exactly where it left off.
        assert train(predictor, PC, [25, 28, 31]) == [25, 28, 31]

    def test_sustained_collisions_still_evict(self, predictor):
        # Replacement must stay possible: a persistently colliding load
        # eventually wins the slot outright.
        train(predictor, PC, [10, 13, 16, 19, 22])
        for _ in range(8):
            predicted = predictor.predict(self.ALIAS_PC)
            predictor.update(self.ALIAS_PC, predicted, 99)
        assert predictor.predict(self.ALIAS_PC) == 99
