"""Checkpoint fidelity: snapshot/restore vs uninterrupted execution.

The snapshot subsystem's contract (``core/snapshot.py``) is
observational equivalence: a machine restored mid-run and run to
completion must be indistinguishable from one that never stopped — the
same architectural state, violation log, metrics snapshot, and phase
counters.  The property suite reuses the differential harness's seeded
random program generator (``test_differential.generate_program``) and
checks the round trip at a seeded random cut point for every program,
on the decoded-block fast path and the forced slow path alike.

A subset restores in a *fresh process* (the sampled-simulation
deployment shape: checkpoints are written by one worker and replayed by
another), and the schema gate is pinned: a snapshot whose version
stamp mismatches must fail loudly, never replay wrong state.
"""

import multiprocessing
import random

import pytest

from repro.core import Chex86Machine, Variant
from repro.core.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    SnapshotSchemaError,
    capture,
    from_bytes,
    load,
    restore,
    save,
    snapshot_digest,
    to_bytes,
)
from repro.isa import assemble
from test_differential import (
    BUDGET,
    N_PROGRAMS,
    VARIANTS,
    architectural_state,
    comparable_metrics,
    comparable_phase_counters,
    generate_program,
)


def observable_state(machine: Chex86Machine):
    """Everything the fidelity contract compares.

    The ``frontend.*`` counter family is excluded: restore drops the
    decoded-block and superblock caches (they rebuild lazily), so a
    split run legitimately recompiles more — and covers less — than an
    uninterrupted one.  Everything those caches *execute* must still be
    bit-identical, which the remaining keys assert.
    """
    return {
        "arch": architectural_state(machine),
        "violations": [str(v) for v in machine.violations.violations],
        "metrics": comparable_metrics(machine),
        "phase": comparable_phase_counters(machine),
        "instructions": machine.instructions,
        "halted": machine.halted,
        "rip": machine.rip,
    }


def run_reference(program, variant, slow):
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=False)
    if slow:
        machine.block_cache_enabled = False
    machine.run(max_instructions=BUDGET)
    return machine


def run_split(program, variant, slow, cut):
    """Run ``cut`` instructions, snapshot, restore, run to completion."""
    first = Chex86Machine(program, variant=variant, halt_on_violation=False)
    if slow:
        first.block_cache_enabled = False
    first.run_quantum(cut)
    data = first.snapshot()
    second = Chex86Machine.restore(data)
    assert second.block_cache_enabled == first.block_cache_enabled
    second.run_quantum(BUDGET - cut)
    return second


class TestRoundTripFidelity:
    """Snapshot at a seeded random cut, restore, finish: identical."""

    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_split_run_matches_uninterrupted(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        # Fast path and slow path alternate by seed (both still covered
        # exhaustively by TestBothPathsPerSeed below on a subset).
        slow = bool(seed % 2)
        cut = random.Random(seed).randrange(1, BUDGET)
        reference = run_reference(program, variant, slow)
        resumed = run_split(program, variant, slow, cut)
        assert observable_state(resumed) == observable_state(reference), (
            f"seed {seed} ({variant.value}, slow={slow}, cut={cut}): "
            f"restored run diverged from uninterrupted run")

    @pytest.mark.parametrize("seed", range(0, N_PROGRAMS, 10))
    def test_both_paths_same_seed(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        cut = random.Random(1000 + seed).randrange(1, BUDGET)
        for slow in (False, True):
            reference = run_reference(program, variant, slow)
            resumed = run_split(program, variant, slow, cut)
            assert observable_state(resumed) == observable_state(reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_violating_program_round_trips(self, seed):
        """A snapshot taken before an OOB store must replay the same
        violation on restore."""
        source = generate_program(seed).replace(
            "    halt\n",
            f"    mov [r12 + {(seed % 4 + 1) * 128}], rax\n    halt\n", 1)
        program = assemble(source, name=f"fuzz-oob{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        reference = run_reference(program, variant, slow=False)
        assert reference.violations.count() > 0
        resumed = run_split(program, variant, slow=False, cut=5)
        assert observable_state(resumed) == observable_state(reference)

    def test_snapshot_does_not_disturb_the_running_machine(self):
        """Taking a snapshot is observation, not interference: the
        snapshotted machine finishes exactly like an unsnapshotted one."""
        program = assemble(generate_program(3), name="fuzz3")
        reference = run_reference(program, Variant.UCODE_PREDICTION,
                                  slow=False)
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run_quantum(200)
        machine.snapshot()
        machine.run_quantum(BUDGET - 200)
        assert observable_state(machine) == observable_state(reference)

    def test_double_restore_runs_are_independent(self):
        """Two machines restored from one snapshot share no state."""
        program = assemble(generate_program(7), name="fuzz7")
        machine = Chex86Machine(program, variant=Variant.UCODE_ALWAYS_ON,
                                halt_on_violation=False)
        machine.run_quantum(300)
        data = machine.snapshot()
        first, second = restore(data), restore(data)
        first.run_quantum(BUDGET)
        second.run_quantum(BUDGET)
        assert observable_state(first) == observable_state(second)


class TestSuperblockCacheAcrossRestore:
    """Restore drops the compiled front-end caches; they rebuild lazily
    and the resumed run stays bit-identical."""

    def test_superblocks_recompile_lazily_after_restore(self):
        program = assemble(generate_program(4), name="fuzz4")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run_quantum(40)
        assert not machine.halted
        assert machine._superblocks, "run formed no superblocks"
        restored = restore(machine.snapshot())
        # The cache is not serialized: it starts empty...
        assert restored._superblocks == {}
        assert restored._blocks == {}
        restored.run_quantum(BUDGET - 40)
        # ...and repopulates (with compiled replay attached) on demand.
        recompiled = [sb for sb in restored._superblocks.values()
                      if sb is not None]
        assert recompiled
        assert any(sb.replay is not None for sb in recompiled)
        machine.run_quantum(BUDGET - 40)
        assert observable_state(restored) == observable_state(machine)

    @pytest.mark.parametrize("mode", (False, "blocks", True),
                             ids=("slow", "blocks", "superblock"))
    def test_block_cache_knob_round_trips(self, mode):
        """All three knob settings survive snapshot/restore verbatim and
        the resumed run matches an uninterrupted one."""
        program = assemble(generate_program(9), name="fuzz9")
        reference = Chex86Machine(program, variant=Variant.UCODE_ALWAYS_ON,
                                  halt_on_violation=False)
        reference.block_cache_enabled = mode
        reference.run(max_instructions=BUDGET)

        first = Chex86Machine(program, variant=Variant.UCODE_ALWAYS_ON,
                              halt_on_violation=False)
        first.block_cache_enabled = mode
        first.run_quantum(BUDGET // 3)
        second = restore(first.snapshot())
        assert second.block_cache_enabled == mode
        assert second.block_cache_enabled is not True or mode is True
        second.run_quantum(BUDGET)
        assert observable_state(second) == observable_state(reference)


def _finish_from_snapshot(data, budget, queue):
    machine = Chex86Machine.restore(data)
    machine.run_quantum(budget)
    state = observable_state(machine)
    queue.put(state)


class TestFreshProcessRestore:
    """The deployment shape: snapshot here, restore in another process."""

    @pytest.mark.parametrize("seed", (0, 11, 22, 33, 44, 49))
    def test_restore_in_child_process(self, seed):
        program = assemble(generate_program(seed), name=f"fuzz{seed}")
        variant = VARIANTS[seed % len(VARIANTS)]
        slow = bool(seed % 2)
        cut = random.Random(2000 + seed).randrange(1, BUDGET)
        reference = run_reference(program, variant, slow)

        first = Chex86Machine(program, variant=variant,
                              halt_on_violation=False)
        if slow:
            first.block_cache_enabled = False
        first.run_quantum(cut)
        data = first.snapshot()

        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        child = ctx.Process(target=_finish_from_snapshot,
                            args=(data, BUDGET - cut, queue))
        child.start()
        state = queue.get(timeout=120)
        child.join(timeout=30)
        assert state == observable_state(reference), (
            f"seed {seed}: fresh-process restore diverged")


class TestSchemaAndWireFormat:
    def _snapshot_bytes(self):
        program = assemble(generate_program(0), name="fuzz0")
        machine = Chex86Machine(program, halt_on_violation=False)
        machine.run_quantum(100)
        return machine.snapshot()

    def test_schema_mismatch_fails_loudly(self):
        import pickle

        tree = from_bytes(self._snapshot_bytes())
        tree["schema"] = SNAPSHOT_SCHEMA + 1
        with pytest.raises(SnapshotSchemaError, match="schema"):
            from_bytes(pickle.dumps(tree))
        with pytest.raises(SnapshotSchemaError):
            restore(pickle.dumps(tree))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(SnapshotError):
            from_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            from_bytes(to_bytes({"no": "schema"}))

    def test_save_load_round_trip(self, tmp_path):
        program = assemble(generate_program(5), name="fuzz5")
        machine = Chex86Machine(program, halt_on_violation=False)
        machine.run_quantum(500)
        path = tmp_path / "ckpt" / "machine.ckpt"
        digest = save(machine, path)
        assert digest == snapshot_digest(path.read_bytes())
        restored = load(path, expected_digest=digest)
        machine.run_quantum(BUDGET)
        restored.run_quantum(BUDGET)
        assert observable_state(restored) == observable_state(machine)

    def test_load_rejects_wrong_digest(self, tmp_path):
        program = assemble(generate_program(5), name="fuzz5")
        machine = Chex86Machine(program, halt_on_violation=False)
        machine.run_quantum(100)
        path = tmp_path / "machine.ckpt"
        save(machine, path)
        with pytest.raises(SnapshotError, match="digest"):
            load(path, expected_digest="0" * 64)

    def test_capture_tree_is_detached(self):
        """The captured tree must not alias live machine state."""
        program = assemble(generate_program(2), name="fuzz2")
        machine = Chex86Machine(program, halt_on_violation=False)
        machine.run_quantum(200)
        tree = capture(machine)
        before = to_bytes(tree)
        machine.run_quantum(2_000)  # keep mutating the machine
        assert to_bytes(tree) == before


class TestSnapshotRestrictions:
    def test_tracer_attached_is_rejected(self):
        from repro.telemetry import EventTracer

        program = assemble(generate_program(0), name="fuzz0")
        machine = Chex86Machine(program, halt_on_violation=False)
        machine.attach_tracer(EventTracer())
        with pytest.raises(SnapshotError, match="tracer"):
            machine.snapshot()
        machine.detach_tracer()
        machine.snapshot()  # detached again: fine

    def test_custom_host_hooks_rejected(self):
        program = assemble(generate_program(0), name="fuzz0")
        machine = Chex86Machine(program, halt_on_violation=False,
                                host_hooks={"custom_hook": lambda m: None})
        with pytest.raises(SnapshotError, match="host hooks"):
            machine.snapshot()
