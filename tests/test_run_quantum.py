"""Quantum-execution semantics and the decoded-block fast path.

``run_quantum`` is the multicore timeslice primitive: the system layer
hands each core a budget of macro instructions and relies on the return
value for round-robin accounting, so its stop conditions (budget
exhausted, halt, trapping violation) must be exact.  The same loop drives
``trace_limit`` truncation and populates the decoded-block cache, so both
are covered here too.
"""

from __future__ import annotations

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.isa import Reg

from conftest import assemble_main

# A straight-line body long enough to out-last small budgets (the heap
# library prologue adds nothing: execution starts at main).
LONG_BODY = "\n".join("    add rax, 1" for _ in range(64))

OOB_WRITE = """
    mov rdi, 64
    call malloc
    mov [rax + 64], 1
"""


def _machine(body: str, variant: Variant = Variant.UCODE_PREDICTION,
             **kwargs) -> Chex86Machine:
    program = assemble_main(body)
    return Chex86Machine(program, variant=variant, **kwargs)


class TestBudgetSemantics:
    def test_budget_exhaustion_returns_budget(self):
        machine = _machine(LONG_BODY)
        executed = machine.run_quantum(10)
        assert executed == 10
        assert machine.instructions == 10
        assert not machine.halted

    def test_budgets_compose_across_quanta(self):
        """Slicing a run into quanta must not change what executes."""
        sliced = _machine(LONG_BODY)
        total = 0
        for budget in (7, 13, 200_000):
            total += sliced.run_quantum(budget)
        whole = _machine(LONG_BODY)
        whole_count = whole.run_quantum(200_000)
        assert sliced.halted and whole.halted
        assert total == whole_count
        assert sliced.regs[Reg.RAX] == whole.regs[Reg.RAX]

    def test_halt_mid_quantum_returns_actual_count(self):
        machine = _machine("    mov rax, 5")
        executed = machine.run_quantum(10_000)
        assert machine.halted
        assert executed < 10_000
        assert executed == machine.instructions

    def test_zero_budget_executes_nothing(self):
        machine = _machine(LONG_BODY)
        assert machine.run_quantum(0) == 0
        assert machine.instructions == 0
        assert not machine.halted

    def test_halted_machine_consumes_no_budget(self):
        machine = _machine("    mov rax, 5")
        machine.run_quantum(10_000)
        assert machine.halted
        assert machine.run_quantum(10_000) == 0

    def test_trapping_violation_recorded_and_halts(self):
        machine = _machine(OOB_WRITE, halt_on_violation=True)
        executed = machine.run_quantum(200_000)
        assert machine.halted
        assert machine.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1
        # The faulting instruction is not re-executed on a later quantum.
        assert machine.run_quantum(10) == 0
        assert executed == machine.instructions


class TestTraceLimit:
    def test_trace_truncates_at_limit(self):
        machine = _machine(LONG_BODY)
        machine.trace_limit = 5
        machine.run_quantum(200_000)
        assert machine.instructions > 5
        assert len(machine.execution_trace) == 5

    def test_trace_records_first_instructions_in_order(self):
        machine = _machine(LONG_BODY)
        machine.trace_limit = 3
        machine.run_quantum(200_000)
        start = machine.program.labels["main"]
        pcs = [pc for pc, _ in machine.execution_trace]
        assert pcs[0] == start
        assert pcs == sorted(pcs)
        rendered = machine.format_trace()
        assert len(rendered.splitlines()) == 3

    def test_trace_disabled_by_default(self):
        machine = _machine(LONG_BODY)
        machine.run_quantum(200_000)
        assert machine.execution_trace == []


class TestDecodedBlockFastPath:
    def test_block_cache_populated_and_bounded(self):
        machine = _machine(LONG_BODY)
        machine.run_quantum(200_000)
        # One block per static pc executed, regardless of dynamic count.
        assert 0 < len(machine._blocks) <= len(machine.program.instrs)

    def test_replay_matches_first_visit(self):
        """A loop revisits its pcs via cached blocks; the result must be
        identical to an unrolled (every-pc-fresh) execution."""
        looped = _machine(
            """
    mov rcx, 8
loop:
    add rax, 3
    sub rcx, 1
    jne loop
"""
        )
        looped.run_quantum(200_000)
        unrolled = _machine("\n".join("    add rax, 3" for _ in range(8)))
        unrolled.run_quantum(200_000)
        assert looped.regs[Reg.RAX] == unrolled.regs[Reg.RAX]
        # The loop body occupies 3 static pcs (+ mov) yet ran 8 iterations.
        assert len(looped._blocks) < looped.instructions

    @pytest.mark.parametrize("variant", [Variant.INSECURE,
                                         Variant.UCODE_PREDICTION])
    def test_run_results_stable_across_machines(self, variant):
        """Same program, fresh machines: identical timing and uop counts
        (the block cache starts cold each time, so this exercises both
        compile and replay paths deterministically)."""
        first = _machine(LONG_BODY, variant=variant).run()
        second = _machine(LONG_BODY, variant=variant).run()
        assert first.instructions == second.instructions
        assert first.cycles == second.cycles
        assert first.uops == second.uops
