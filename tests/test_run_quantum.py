"""Quantum-execution semantics and the decoded-block fast path.

``run_quantum`` is the multicore timeslice primitive: the system layer
hands each core a budget of macro instructions and relies on the return
value for round-robin accounting, so its stop conditions (budget
exhausted, halt, trapping violation) must be exact.  The same loop drives
``trace_limit`` truncation and populates the decoded-block cache, so both
are covered here too.
"""

from __future__ import annotations

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.isa import Reg

from conftest import assemble_main

# A straight-line body long enough to out-last small budgets (the heap
# library prologue adds nothing: execution starts at main).
LONG_BODY = "\n".join("    add rax, 1" for _ in range(64))

OOB_WRITE = """
    mov rdi, 64
    call malloc
    mov [rax + 64], 1
"""


def _machine(body: str, variant: Variant = Variant.UCODE_PREDICTION,
             **kwargs) -> Chex86Machine:
    program = assemble_main(body)
    return Chex86Machine(program, variant=variant, **kwargs)


class TestBudgetSemantics:
    def test_budget_exhaustion_returns_budget(self):
        machine = _machine(LONG_BODY)
        executed = machine.run_quantum(10)
        assert executed == 10
        assert machine.instructions == 10
        assert not machine.halted

    def test_budgets_compose_across_quanta(self):
        """Slicing a run into quanta must not change what executes."""
        sliced = _machine(LONG_BODY)
        total = 0
        for budget in (7, 13, 200_000):
            total += sliced.run_quantum(budget)
        whole = _machine(LONG_BODY)
        whole_count = whole.run_quantum(200_000)
        assert sliced.halted and whole.halted
        assert total == whole_count
        assert sliced.regs[Reg.RAX] == whole.regs[Reg.RAX]

    def test_halt_mid_quantum_returns_actual_count(self):
        machine = _machine("    mov rax, 5")
        executed = machine.run_quantum(10_000)
        assert machine.halted
        assert executed < 10_000
        assert executed == machine.instructions

    def test_zero_budget_executes_nothing(self):
        machine = _machine(LONG_BODY)
        assert machine.run_quantum(0) == 0
        assert machine.instructions == 0
        assert not machine.halted

    def test_halted_machine_consumes_no_budget(self):
        machine = _machine("    mov rax, 5")
        machine.run_quantum(10_000)
        assert machine.halted
        assert machine.run_quantum(10_000) == 0

    def test_trapping_violation_recorded_and_halts(self):
        machine = _machine(OOB_WRITE, halt_on_violation=True)
        executed = machine.run_quantum(200_000)
        assert machine.halted
        assert machine.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1
        # The faulting instruction is not re-executed on a later quantum.
        assert machine.run_quantum(10) == 0
        assert executed == machine.instructions


class TestTraceLimit:
    def test_trace_truncates_at_limit(self):
        machine = _machine(LONG_BODY)
        machine.trace_limit = 5
        machine.run_quantum(200_000)
        assert machine.instructions > 5
        assert len(machine.execution_trace) == 5

    def test_trace_records_first_instructions_in_order(self):
        machine = _machine(LONG_BODY)
        machine.trace_limit = 3
        machine.run_quantum(200_000)
        start = machine.program.labels["main"]
        pcs = [pc for pc, _ in machine.execution_trace]
        assert pcs[0] == start
        assert pcs == sorted(pcs)
        rendered = machine.format_trace()
        assert len(rendered.splitlines()) == 3

    def test_trace_disabled_by_default(self):
        machine = _machine(LONG_BODY)
        machine.run_quantum(200_000)
        assert machine.execution_trace == []


class TestDecodedBlockFastPath:
    def test_block_cache_populated_and_bounded(self):
        machine = _machine(LONG_BODY)
        machine.run_quantum(200_000)
        # One block per static pc executed, regardless of dynamic count.
        assert 0 < len(machine._blocks) <= len(machine.program.instrs)

    def test_replay_matches_first_visit(self):
        """A loop revisits its pcs via cached blocks; the result must be
        identical to an unrolled (every-pc-fresh) execution."""
        looped = _machine(
            """
    mov rcx, 8
loop:
    add rax, 3
    sub rcx, 1
    jne loop
"""
        )
        looped.run_quantum(200_000)
        unrolled = _machine("\n".join("    add rax, 3" for _ in range(8)))
        unrolled.run_quantum(200_000)
        assert looped.regs[Reg.RAX] == unrolled.regs[Reg.RAX]
        # The loop body occupies 3 static pcs (+ mov) yet ran 8 iterations.
        assert len(looped._blocks) < looped.instructions

    @pytest.mark.parametrize("variant", [Variant.INSECURE,
                                         Variant.UCODE_PREDICTION])
    def test_run_results_stable_across_machines(self, variant):
        """Same program, fresh machines: identical timing and uop counts
        (the block cache starts cold each time, so this exercises both
        compile and replay paths deterministically)."""
        first = _machine(LONG_BODY, variant=variant).run()
        second = _machine(LONG_BODY, variant=variant).run()
        assert first.instructions == second.instructions
        assert first.cycles == second.cycles
        assert first.uops == second.uops


HOT_LOOP = """
    mov rdi, 64
    call malloc
    mov r12, rax
    mov rax, 0
    mov rcx, 50
loop:
    add rax, 3
    mov [r12 + 8], rax
    mov rbx, [r12 + 8]
    sub rcx, 1
    jne loop
"""


class TestSuperblockFastPath:
    """Budget-aware superblock entry in ``run_quantum``."""

    def test_superblocks_form_and_attach_compiled_replay(self):
        machine = _machine(HOT_LOOP)
        machine.run_quantum(200_000)
        formed = [sb for sb in machine._superblocks.values()
                  if sb is not None]
        assert formed, "hot loop formed no superblocks"
        assert any(sb.length > 1 for sb in formed)
        # The trace compiler attached a specialized replay function.
        assert any(sb.replay is not None for sb in formed)
        counters = machine.phase_counters()
        assert counters["frontend.superblocks_compiled"] == len(formed)
        assert counters["frontend.superblock_instructions"] > 0

    def test_commit_meters_partition_instructions(self):
        """superblock_instructions + fallback_instructions is exactly the
        retired-instruction count — no member double-counted or lost."""
        machine = _machine(HOT_LOOP)
        machine.run_quantum(200_000)
        counters = machine.phase_counters()
        assert (counters["frontend.superblock_instructions"]
                + counters["frontend.fallback_instructions"]
                == machine.instructions)

    def test_small_budget_bails_out_but_stays_exact(self):
        """A budget smaller than the hot chain forces per-instruction
        fallback at every entry; slicing must not change what executes."""
        sliced = _machine(HOT_LOOP)
        total = 0
        while not sliced.halted:
            total += sliced.run_quantum(2)
        whole = _machine(HOT_LOOP)
        whole_count = whole.run_quantum(200_000)
        assert total == whole_count
        assert sliced.regs[Reg.RAX] == whole.regs[Reg.RAX]
        assert sliced.timing.finish().cycles == whole.timing.finish().cycles
        counters = sliced.phase_counters()
        assert counters["frontend.superblock_bailouts"] > 0
        assert (counters["frontend.superblock_instructions"]
                + counters["frontend.fallback_instructions"]
                == sliced.instructions)

    def test_active_trace_forces_fallback(self):
        """While the execution trace is recording, superblock replay is
        skipped (the trace needs per-instruction hooks); coverage shows
        it."""
        traced = _machine(HOT_LOOP)
        traced.trace_limit = 1_000_000  # never fills: trace stays active
        traced.run_quantum(200_000)
        assert traced.phase_counters()[
            "frontend.superblock_instructions"] == 0
        plain = _machine(HOT_LOOP)
        plain.run_quantum(200_000)
        assert traced.instructions == plain.instructions
        assert traced.regs[Reg.RAX] == plain.regs[Reg.RAX]
        assert traced.timing.finish().cycles == plain.timing.finish().cycles

    def test_checker_machine_declines_compiled_replay(self):
        """With the hardware checker attached the rule database can learn
        mid-run, so folding rule decisions into generated code is
        unsound; superblocks still form but replay interpreted."""
        machine = _machine(HOT_LOOP, enable_checker=True)
        machine.run_quantum(200_000)
        formed = [sb for sb in machine._superblocks.values()
                  if sb is not None]
        assert formed
        assert all(sb.replay is None for sb in formed)
        assert machine.phase_counters()[
            "frontend.superblock_instructions"] > 0

    def test_knob_accepts_three_settings(self):
        from repro.core.machine import BLOCK_CACHE_BLOCKS

        results = {}
        for mode in (False, BLOCK_CACHE_BLOCKS, True):
            machine = _machine(HOT_LOOP)
            machine.block_cache_enabled = mode
            machine.run_quantum(200_000)
            results[mode] = (machine.regs[Reg.RAX], machine.instructions,
                             machine.timing.finish().cycles,
                             machine.total_uops)
            if mode is not True:
                assert machine.phase_counters()[
                    "frontend.superblock_instructions"] == 0
        assert results[False] == results[BLOCK_CACHE_BLOCKS] == results[True]
