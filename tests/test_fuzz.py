"""Unit tests for the ``repro.fuzz`` subsystem: generator grammar,
corpus persistence, shrinker, bug-spec parsing, and the ``kind="fuzz"``
engine cell (including cache-key compatibility for pre-existing kinds).
"""

import json

import pytest

from repro.eval.engine import (CellSpec, EvalEngine, compute_cell,
                               decode_result, encode_result)
from repro.fuzz import (BugInjection, BugSpecError, Corpus, CorpusEntry,
                        FuzzCellResult, FuzzOptions, PROFILES,
                        VIOLATION_PROFILES, WELL_BEHAVED, generate,
                        generate_program, profile_for_seed, run_campaign,
                        shrink)
from repro.isa import assemble


class TestGenerator:
    def test_deterministic(self):
        assert generate(5).source == generate(5).source
        assert generate(5, "out-of-bounds").source \
            == generate(5, "out-of-bounds").source

    def test_profiles_differ(self):
        assert generate(5, WELL_BEHAVED).source \
            != generate(5, "out-of-bounds").source

    def test_seeds_differ(self):
        assert generate(5).source != generate(6).source

    def test_profile_rotation_covers_everything(self):
        seen = {profile_for_seed(seed) for seed in range(28)}
        assert seen == set(PROFILES)

    def test_well_behaved_expects_nothing(self):
        program = generate(7, WELL_BEHAVED)
        assert program.expected_kinds == ()
        assert not program.uses_protect_hook

    @pytest.mark.parametrize("profile", VIOLATION_PROFILES)
    def test_violation_profiles_expect_their_class(self, profile):
        program = generate(7, profile)
        assert program.expected_kinds == (profile,)
        assert program.uses_protect_hook == (profile == "permission")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_every_profile_assembles(self, profile):
        program = generate(11, profile)
        assemble(program.source, name=program.name)

    def test_statements_are_independently_removable(self):
        """The shrinker's soundness contract: any single-statement
        deletion still assembles (self-contained labels)."""
        program = generate(3)
        assert program.statement_count >= 2
        for index in range(program.statement_count):
            candidate = program.with_body(program.body[:index]
                                          + program.body[index + 1:])
            assemble(candidate.source, name=candidate.name)

    def test_generate_program_is_the_well_behaved_source(self):
        assert generate_program(9) == generate(9, WELL_BEHAVED).source

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate(0, "nonsense")


class TestShrinker:
    def test_shrinks_to_empty_when_body_is_irrelevant(self):
        program = generate(2)
        result = shrink(program, lambda candidate: True)
        assert result.program.statement_count == 0
        assert result.removed == program.statement_count
        assert result.shrank

    def test_keeps_needed_statements(self):
        program = generate(2)
        keep = program.body[0]

        result = shrink(program, lambda candidate: keep in candidate.body,
                        max_checks=500)
        assert result.program.body == (keep,)

    def test_non_failing_program_untouched(self):
        program = generate(2)
        result = shrink(program, lambda candidate: False)
        assert result.program is program
        assert result.removed == 0

    def test_check_budget_respected(self):
        program = generate(2)
        calls = []

        def predicate(candidate):
            calls.append(1)
            return candidate.statement_count == program.statement_count

        shrink(program, predicate, max_checks=5)
        assert len(calls) <= 6  # initial confirmation + 5 budgeted


class TestBugSpec:
    def test_defaults(self):
        injection = BugInjection.parse("skip-capcheck")
        assert injection.kind == "skip-capcheck"
        assert injection.role == "diff:superblock"
        assert injection.index == 0

    def test_role_and_index(self):
        injection = BugInjection.parse("drop-violation:diff:*@3")
        assert injection.role == "diff:*"
        assert injection.index == 3
        assert injection.matches("diff:blocks")
        assert not injection.matches("snapshot:restored")
        assert BugInjection.parse(injection.spec()) == injection

    def test_unknown_kind_rejected(self):
        with pytest.raises(BugSpecError):
            BugInjection.parse("segfault")

    def test_bad_index_rejected(self):
        with pytest.raises(BugSpecError):
            BugInjection.parse("skip-capcheck@two")


class TestCorpus:
    def _entry(self, seed, features, profile=WELL_BEHAVED):
        return CorpusEntry(seed=seed, profile=profile, budget=1000,
                           source_sha256="0" * 64,
                           features=tuple(features))

    def test_admission_needs_new_coverage(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        assert corpus.consider(self._entry(0, ["rule:ld"])) == {"rule:ld"}
        assert corpus.consider(self._entry(1, ["rule:ld"])) == set()
        assert corpus.consider(self._entry(2, ["rule:ld", "rule:st"])) \
            == {"rule:st"}
        assert len(corpus) == 2

    def test_persistence_round_trip(self, tmp_path):
        directory = tmp_path / "corpus"
        corpus = Corpus(directory)
        corpus.consider(self._entry(4, ["violation:permission"]))
        reloaded = Corpus(directory)
        assert len(reloaded) == 1
        assert reloaded.coverage() == {"violation:permission"}
        entry = reloaded.ordered_entries()[0]
        assert entry.seed == 4
        # Idempotent: the same recipe is never re-admitted.
        assert reloaded.consider(self._entry(4, ["violation:permission",
                                                 "rule:ld"])) == set()

    def test_failure_artifacts(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        path = corpus.record_failure("seed00001-well-behaved",
                                     {"seed": 1, "detail": "boom"})
        assert path.exists()
        assert corpus.failures() == [path]
        assert json.loads(path.read_text())["seed"] == 1

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / "seed00000-well-behaved.json").write_text(
            json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            Corpus(directory)


class TestFuzzCells:
    def test_fuzz_spec_needs_a_seed(self):
        with pytest.raises(ValueError):
            CellSpec(workload="fuzz0", defense=WELL_BEHAVED, kind="fuzz")

    def test_payload_round_trip(self):
        spec = CellSpec(workload="fuzz7", defense="use-after-free",
                        kind="fuzz", fuzz_seed=7,
                        fuzz_profile="use-after-free",
                        fuzz_bug="skip-capcheck", max_instructions=5000)
        assert CellSpec.from_payload(spec.payload()) == spec

    def test_benchmark_payload_has_no_fuzz_keys(self):
        """Cache-key compatibility: pre-existing cell kinds hash exactly
        the payload they always did."""
        payload = CellSpec(workload="mcf", defense="insecure").payload()
        assert "fuzz_seed" not in payload
        assert "fuzz_profile" not in payload
        assert "fuzz_bug" not in payload

    def test_bug_spec_changes_the_cache_key(self):
        clean = CellSpec(workload="fuzz7", defense=WELL_BEHAVED,
                         kind="fuzz", fuzz_seed=7)
        bugged = CellSpec(workload="fuzz7", defense=WELL_BEHAVED,
                          kind="fuzz", fuzz_seed=7,
                          fuzz_bug="skip-capcheck")
        assert clean.cache_key() != bugged.cache_key()

    def test_compute_and_encode_round_trip(self):
        spec = CellSpec(workload="fuzz0", defense=WELL_BEHAVED,
                        kind="fuzz", fuzz_seed=0,
                        fuzz_profile=WELL_BEHAVED,
                        max_instructions=20_000)
        result = compute_cell(spec)
        assert isinstance(result, FuzzCellResult)
        assert result.ok, result.failures
        assert result.instructions > 0
        assert result.features
        decoded = decode_result(spec, json.loads(
            json.dumps(encode_result(spec, result))))
        assert decoded == result


class TestCampaign:
    def test_end_to_end_through_the_engine(self, tmp_path):
        engine = EvalEngine(jobs=1, use_cache=False,
                            cache_dir=tmp_path / "cache")
        options = FuzzOptions(seeds=3, budget=20_000,
                              corpus_dir=str(tmp_path / "corpus"))
        report = run_campaign(engine, options)
        assert report.ok
        assert len(report.results) == 3
        assert report.new_entries > 0
        assert report.new_features > 0
        assert report.corpus_size == report.new_entries
        text = report.format_text()
        assert "oracle failures: none" in text
        assert "corpus:" in text
        # A second identical campaign adds nothing (idempotent corpus).
        again = run_campaign(engine, options)
        assert again.new_entries == 0
