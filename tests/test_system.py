"""Unit tests for the shared System and its coherence machinery."""

import pytest

from repro.core import Chex86Machine, Variant
from repro.isa import assemble
from repro.pipeline.system import System

from conftest import assemble_main


class TestSystemComposition:
    def test_shared_components_exist(self):
        system = System()
        assert system.memory is not None
        assert system.allocator.memory is system.memory
        assert system.captable is not None
        assert system.alias_table is not None
        assert system.l2 is not None

    def test_core_registration_assigns_ids(self):
        system = System()
        program = assemble_main("    nop")
        a = Chex86Machine(program, system=system)
        b = Chex86Machine(program, system=system)
        assert (a.core_id, b.core_id) == (0, 1)
        assert system.cores == [a, b]

    def test_shadow_bytes_aggregates(self):
        system = System()
        system.captable.register_global(0x1000, 64)
        system.alias_table.set(0x2000, 1)
        assert system.shadow_bytes == (system.captable.shadow_bytes
                                       + system.alias_table.shadow_bytes)


class TestInvalidationBroadcast:
    def setup_pair(self):
        system = System()
        program = assemble_main("    nop")
        a = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                          system=system)
        b = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                          system=system)
        return system, a, b

    def test_cap_invalidate_reaches_peers_only(self):
        system, a, b = self.setup_pair()
        a.capcache.access(7)
        b.capcache.access(7)
        system.broadcast_cap_invalidate(7, origin_core=a.core_id)
        assert a.capcache.probe(7)      # origin keeps its copy
        assert not b.capcache.probe(7)  # peer invalidated
        assert system.coherence.cap_invalidate_messages == 1
        assert system.coherence.cap_invalidate_hits == 1

    def test_alias_invalidate_reaches_peers(self):
        system, a, b = self.setup_pair()
        b.alias_cache.install(0x3000, 9)
        system.broadcast_alias_invalidate(0x3000, origin_core=a.core_id)
        assert b.alias_cache.cache.lookup(0x3000) is None
        assert system.coherence.alias_invalidate_hits == 1

    def test_misses_counted_but_harmless(self):
        system, a, b = self.setup_pair()
        system.broadcast_cap_invalidate(42, origin_core=a.core_id)
        assert system.coherence.cap_invalidate_messages == 1
        assert system.coherence.cap_invalidate_hits == 0

    def test_single_core_broadcast_is_noop(self):
        system = System()
        program = assemble_main("    nop")
        Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                      system=system)
        system.broadcast_cap_invalidate(1, origin_core=0)
        assert system.coherence.cap_invalidate_messages == 0
