"""Unit tests for the free-list heap allocator (the exploitable substrate)."""

import pytest

from repro.heap import ALIGN, HEADER_BYTES, HeapAllocator, INUSE_BIT
from repro.isa import HEAP_BASE
from repro.memory import Memory


@pytest.fixture
def heap():
    return HeapAllocator(Memory())


class TestMalloc:
    def test_returns_user_pointer_past_header(self, heap):
        user = heap.malloc(32)
        assert user == HEAP_BASE + HEADER_BYTES

    def test_alignment(self, heap):
        pointers = [heap.malloc(n) for n in (1, 7, 24, 100)]
        assert all((p - HEADER_BYTES) % ALIGN == 0 for p in pointers)

    def test_distinct_live_allocations_do_not_overlap(self, heap):
        spans = []
        for size in (16, 64, 8, 128):
            user = heap.malloc(size)
            spans.append((user, user + size))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_header_marks_in_use(self, heap):
        user = heap.malloc(16)
        header = heap.memory.read_word(user - HEADER_BYTES)
        assert header & INUSE_BIT

    def test_zero_or_negative_size_fails(self, heap):
        assert heap.malloc(0) == 0
        assert heap.malloc(-5) == 0
        assert heap.stats.failed_allocs == 2

    def test_exhaustion_returns_null(self):
        heap = HeapAllocator(Memory(), limit=256)
        assert heap.malloc(64) != 0
        assert heap.malloc(64) != 0
        assert heap.malloc(64) != 0
        assert heap.malloc(64) == 0  # wilderness exhausted


class TestFreeAndReuse:
    def test_free_then_malloc_reuses_chunk(self, heap):
        first = heap.malloc(48)
        heap.free(first)
        second = heap.malloc(48)
        assert second == first

    def test_bins_are_lifo(self, heap):
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(a)
        heap.free(b)
        assert heap.malloc(32) == b
        assert heap.malloc(32) == a

    def test_free_null_is_noop(self, heap):
        heap.free(0)
        assert heap.stats.total_frees == 0

    def test_free_clears_inuse_bit(self, heap):
        user = heap.malloc(16)
        heap.free(user)
        assert not heap.memory.read_word(user - HEADER_BYTES) & INUSE_BIT

    def test_fd_pointer_written_into_user_area(self, heap):
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(a)
        heap.free(b)
        # b's fd should point at a's chunk base (LIFO list through memory).
        assert heap.memory.read_word(b) == a - HEADER_BYTES


class TestExploitablePaths:
    """The unhardened behaviours How2Heap-style exploits rely on."""

    def test_corrupted_fd_returns_arbitrary_chunk(self, heap):
        victim = heap.malloc(32)
        heap.free(victim)
        fake = 0x41410000
        heap.memory.write_word(victim, fake)  # UAF write corrupts fd
        assert heap.malloc(32) == victim      # first pop: the real chunk
        assert heap.malloc(32) == fake + HEADER_BYTES  # then the fake one

    def test_double_free_duplicates_chunk(self, heap):
        a = heap.malloc(32)
        heap.free(a)
        heap.free(a)  # no check: fastbin dup
        assert heap.malloc(32) == a
        assert heap.malloc(32) == a

    def test_invalid_free_inserts_fake_chunk(self, heap):
        fake_base = 0x50000
        heap.memory.write_word(fake_base, 48)  # plausible size header
        heap.free(fake_base + HEADER_BYTES)
        assert heap.malloc(40) == fake_base + HEADER_BYTES


class TestCallocRealloc:
    def test_calloc_zeroes(self, heap):
        user = heap.malloc(32)
        heap.memory.write_word(user, 0xFF)
        heap.free(user)
        again = heap.calloc(4, 8)
        assert again == user
        assert heap.memory.read_word(again) == 0

    def test_realloc_grows_and_copies(self, heap):
        user = heap.malloc(16)
        heap.memory.write_word(user, 1234)
        bigger = heap.realloc(user, 256)
        assert bigger != user
        assert heap.memory.read_word(bigger) == 1234
        assert heap.record_for(user).freed

    def test_realloc_null_is_malloc(self, heap):
        assert heap.realloc(0, 64) != 0

    def test_realloc_zero_is_free(self, heap):
        user = heap.malloc(16)
        assert heap.realloc(user, 0) == 0
        assert heap.stats.live == 0


class TestRecords:
    def test_stats_track_live_and_peak(self, heap):
        a = heap.malloc(8)
        b = heap.malloc(8)
        heap.free(a)
        assert heap.stats.total_allocs == 2
        assert heap.stats.live == 1
        assert heap.stats.max_live == 2

    def test_record_for_interior_pointer(self, heap):
        user = heap.malloc(64)
        record = heap.record_for(user + 40)
        assert record is not None and record.address == user

    def test_record_for_unknown_address(self, heap):
        assert heap.record_for(0x999999) is None
