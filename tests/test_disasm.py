"""Tests for the disassembler: listings and reassembly round-trips."""

import pytest

from repro.core import Chex86Machine, Variant
from repro.exploits import how2heap
from repro.heap import heap_library_asm
from repro.isa import Reg, assemble
from repro.isa.disasm import disassemble, format_instr, reassemblable_source
from repro.workloads import SPEC_NAMES, build

SAMPLE = """
.global table, 32, 5, 6
main:
    mov rax, 10
    mov rbx, [table.addr]
    mov [rbx + 8], rax
    cmp rax, 0
    jne skip
    add rax, 1
skip:
    halt
"""


class TestListings:
    def test_disassemble_contains_addresses_and_labels(self):
        program = assemble(SAMPLE, name="sample")
        listing = disassemble(program)
        assert "main:" in listing and "skip:" in listing
        assert hex(program.entry) in listing
        assert ".global table, 32, 5, 6" in listing

    def test_branch_targets_resymbolized(self):
        program = assemble(SAMPLE, name="sample")
        listing = disassemble(program)
        assert "jne skip" in listing

    def test_uop_annotation(self):
        program = assemble(SAMPLE, name="sample")
        listing = disassemble(program, with_uops=True)
        assert "[1:1]" in listing
        assert "limm" in listing

    def test_format_instr_memory_forms(self):
        program = assemble("main:\n    mov rax, [rbx + rcx*8 - 16]\n"
                           "    halt\n")
        text = format_instr(program.fetch(program.entry))
        assert text == "mov rax, [rbx + rcx*8 - 16]"


class TestRoundTrip:
    def assert_equivalent(self, source, name):
        """Reassembled source must produce a behaviourally equal program."""
        original = assemble(source, name=name)
        rebuilt = assemble(reassemblable_source(original), name=name + "-rt")
        assert len(rebuilt) == len(original)
        machine_a = Chex86Machine(original, variant=Variant.UCODE_PREDICTION,
                                  halt_on_violation=False)
        result_a = machine_a.run(max_instructions=400_000)
        machine_b = Chex86Machine(rebuilt, variant=Variant.UCODE_PREDICTION,
                                  halt_on_violation=False)
        result_b = machine_b.run(max_instructions=400_000)
        assert result_a.instructions == result_b.instructions
        assert result_a.flagged == result_b.flagged
        assert machine_a.regs[Reg.RAX] == machine_b.regs[Reg.RAX]

    def test_sample_roundtrip(self):
        self.assert_equivalent(SAMPLE + heap_library_asm(), "sample")

    @pytest.mark.parametrize("name", SPEC_NAMES[:4])
    def test_workload_roundtrip(self, name):
        self.assert_equivalent(build(name, 1).source, name)

    def test_exploit_roundtrip(self):
        exploit = how2heap.generate_suite()[0]
        self.assert_equivalent(exploit.build(), exploit.name)
