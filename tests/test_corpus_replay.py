"""Replay the committed regression corpus through the full oracle set.

Each record under ``tests/corpus/`` is a (seed, profile, budget) recipe
plus the source digest and coverage features observed when it was
admitted.  Replay regenerates the program (the generator is
deterministic), verifies the digest — so a silently changed grammar
fails loudly instead of replaying a different program — and re-runs all
four oracles expecting zero failures and the exact recorded coverage.

The completeness test is the coverage-map audit: the corpus as a whole
must reach every protection variant, every Table I rule class, and
every violation kind, and it names what is missing when it does not.
"""

from pathlib import Path

import pytest

from repro.fuzz import Corpus, generate, run_oracles, unreached_classes

CORPUS_DIR = Path(__file__).parent / "corpus"

CORPUS = Corpus(CORPUS_DIR)
ENTRIES = CORPUS.ordered_entries()


def test_corpus_is_committed_and_nonempty():
    assert CORPUS_DIR.is_dir(), f"missing regression corpus: {CORPUS_DIR}"
    assert len(ENTRIES) >= 10, (
        f"suspiciously small regression corpus: {len(ENTRIES)} entries")


@pytest.mark.parametrize(
    "entry", ENTRIES,
    ids=[entry.filename.removesuffix(".json") for entry in ENTRIES])
def test_replay_entry(entry):
    program = generate(entry.seed, entry.profile)
    assert program.source_digest() == entry.source_sha256, (
        f"seed {entry.seed} ({entry.profile}): generator output changed "
        f"since this corpus entry was recorded; regenerate tests/corpus "
        f"with `repro fuzz --corpus-dir tests/corpus` if intentional")
    report = run_oracles(program, budget=entry.budget)
    assert report.ok, (
        f"seed {entry.seed} ({entry.profile}) regressed:\n  "
        + "\n  ".join(str(failure) for failure in report.failures))
    assert report.coverage == set(entry.features), (
        f"seed {entry.seed} ({entry.profile}): coverage features drifted "
        f"from the recorded set")


def test_coverage_map_is_complete():
    """Every variant, Table I rule class, and violation kind is reached
    by at least one committed seed."""
    missing = unreached_classes(CORPUS.coverage())
    assert not missing, (
        "regression corpus leaves coverage classes unreached:\n"
        + "\n".join(f"  {family}: {', '.join(sorted(names))}"
                    for family, names in sorted(missing.items())))
