"""Tests for variant traits, the violation taxonomy, and the heap library."""

import pytest

from repro.core import (
    CapabilityException,
    CheckPolicy,
    FIGURE6_ORDER,
    Variant,
    Violation,
    ViolationKind,
    ViolationLog,
    traits_of,
)
from repro.heap import (
    HEAP_FUNCTIONS,
    HeapFnKind,
    heap_library_asm,
    registrations_for,
)
from repro.isa import Reg, assemble


class TestVariantTraits:
    def test_five_design_points(self):
        assert len(FIGURE6_ORDER) == 5
        assert FIGURE6_ORDER[0] is Variant.INSECURE

    def test_insecure_does_nothing(self):
        traits = traits_of(Variant.INSECURE)
        assert not traits.tracks_pointers
        assert not traits.intercepts_heap
        assert traits.check_policy is CheckPolicy.NONE
        assert not traits.secured

    def test_all_protected_variants_track_and_intercept(self):
        for variant in FIGURE6_ORDER[1:]:
            traits = traits_of(variant)
            assert traits.tracks_pointers
            assert traits.intercepts_heap
            assert traits.secured

    def test_only_bt_rides_the_macro_stream(self):
        assert traits_of(Variant.BINARY_TRANSLATION).checks_in_macro_stream
        for variant in (Variant.HW_ONLY, Variant.UCODE_ALWAYS_ON,
                        Variant.UCODE_PREDICTION):
            assert not traits_of(variant).checks_in_macro_stream

    def test_check_policies(self):
        assert traits_of(Variant.HW_ONLY).check_policy is CheckPolicy.LSU
        assert traits_of(Variant.UCODE_ALWAYS_ON).check_policy \
            is CheckPolicy.ALL_MEM
        assert traits_of(Variant.UCODE_PREDICTION).check_policy \
            is CheckPolicy.TRACKED


class TestViolationLog:
    def test_count_by_kind(self):
        log = ViolationLog()
        log.record(Violation(ViolationKind.OUT_OF_BOUNDS, pid=1))
        log.record(Violation(ViolationKind.OUT_OF_BOUNDS, pid=2))
        log.record(Violation(ViolationKind.DOUBLE_FREE, pid=3))
        assert log.count() == 3
        assert log.count(ViolationKind.OUT_OF_BOUNDS) == 2
        assert log.count(ViolationKind.USE_AFTER_FREE) == 0
        assert log.flagged

    def test_kinds_sequence(self):
        log = ViolationLog()
        log.record(Violation(ViolationKind.HEAP_SPRAY, pid=1))
        assert log.kinds() == [ViolationKind.HEAP_SPRAY]

    def test_exception_carries_violation(self):
        violation = Violation(ViolationKind.WILD_DEREFERENCE, pid=-1,
                              address=0x123, detail="test")
        exc = CapabilityException(violation)
        assert exc.violation is violation
        assert "wild-dereference" in str(exc)

    def test_violation_str_is_informative(self):
        violation = Violation(ViolationKind.OUT_OF_BOUNDS, pid=5,
                              address=0xBEEF, instr_address=0x400020)
        text = str(violation)
        assert "out-of-bounds" in text
        assert "0xbeef" in text
        assert "0x400020" in text


class TestHeapLibrary:
    def test_four_functions(self):
        assert HEAP_FUNCTIONS == ("malloc", "calloc", "realloc", "free")

    def test_asm_defines_all_labels(self):
        text = heap_library_asm()
        for name in HEAP_FUNCTIONS:
            assert f"{name}:" in text

    def test_registrations_cover_linked_functions(self):
        program = assemble("main:\n  halt\n" + heap_library_asm())
        registrations = {r.name: r for r in registrations_for(program)}
        assert set(registrations) == set(HEAP_FUNCTIONS)
        assert registrations["malloc"].kind is HeapFnKind.ALLOC
        assert registrations["malloc"].size_regs == (Reg.RDI,)
        assert registrations["calloc"].size_regs == (Reg.RDI, Reg.RSI)
        assert registrations["realloc"].kind is HeapFnKind.REALLOC
        assert registrations["realloc"].ptr_reg is Reg.RDI
        assert registrations["free"].ptr_reg is Reg.RDI

    def test_exit_is_entry_plus_one_slot(self):
        program = assemble("main:\n  halt\n" + heap_library_asm())
        for registration in registrations_for(program):
            assert registration.exit == registration.entry + 4

    def test_unlinked_functions_not_registered(self):
        program = assemble(
            "main:\n  halt\nmalloc:\n  hostop heap_malloc\n  ret\n")
        registrations = registrations_for(program)
        assert [r.name for r in registrations] == ["malloc"]


class TestCweMapping:
    def test_every_kind_has_a_cwe(self):
        for kind in ViolationKind:
            assert kind.cwe.startswith("CWE-")

    def test_canonical_assignments(self):
        assert ViolationKind.USE_AFTER_FREE.cwe == "CWE-416"
        assert ViolationKind.DOUBLE_FREE.cwe == "CWE-415"
        assert ViolationKind.OUT_OF_BOUNDS.cwe == "CWE-787/125"

    def test_diagnostics_report_names_the_cwe(self):
        from repro.analysis.diagnostics import explain_violation
        from repro.core import Chex86Machine, Variant
        from conftest import assemble_main

        program = assemble_main("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.run()
        assert "CWE-416" in explain_violation(machine)
