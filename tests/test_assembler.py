"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import (
    AssemblyError,
    Imm,
    Mem,
    Op,
    Reg,
    assemble,
)


def asm(text, **kwargs):
    return assemble(text, **kwargs)


class TestBasicParsing:
    def test_simple_program(self):
        program = asm("main:\n  mov rax, 5\n  halt\n")
        assert len(program) == 2
        assert program.instrs[0].op is Op.MOV
        assert program.instrs[1].op is Op.HALT

    def test_labels_map_to_slot_addresses(self):
        program = asm("main:\n  nop\nloop:\n  jmp loop\n")
        assert program.labels["loop"] == program.text_base + 4

    def test_comments_stripped(self):
        program = asm("main:\n  nop ; trailing comment\n  nop # another\n")
        assert len(program) == 2

    def test_entry_label_required(self):
        with pytest.raises(ValueError):
            asm("start:\n  halt\n")

    def test_custom_entry_label(self):
        program = asm("start:\n  halt\n", entry_label="start")
        assert program.entry == program.text_base

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            asm("main:\n  frobnicate rax\n")

    def test_duplicate_label(self):
        with pytest.raises(ValueError):
            asm("main:\n  nop\nmain2:\n  nop\nmain2:\n  nop\n")


class TestOperandParsing:
    def test_register_operands(self):
        program = asm("main:\n  mov rax, rbx\n")
        assert program.instrs[0].operands == (Reg.RAX, Reg.RBX)

    def test_immediate_decimal_and_hex(self):
        program = asm("main:\n  mov rax, 10\n  mov rbx, 0x20\n")
        assert program.instrs[0].operands[1] == Imm(10)
        assert program.instrs[1].operands[1] == Imm(0x20)

    def test_negative_immediate(self):
        program = asm("main:\n  mov rax, -8\n")
        assert program.instrs[0].operands[1] == Imm(-8)

    def test_memory_base_only(self):
        program = asm("main:\n  mov rax, [rbx]\n")
        mem = program.instrs[0].operands[1]
        assert mem == Mem(base=Reg.RBX)

    def test_memory_full_form(self):
        program = asm("main:\n  mov rax, [rbx + rcx*8 + 16]\n")
        mem = program.instrs[0].operands[1]
        assert mem.base is Reg.RBX
        assert mem.index is Reg.RCX
        assert mem.scale == 8
        assert mem.disp == 16

    def test_memory_negative_disp(self):
        program = asm("main:\n  mov rax, [rbp - 8]\n")
        assert program.instrs[0].operands[1].disp == -8

    def test_memory_bad_scale(self):
        with pytest.raises(AssemblyError):
            asm("main:\n  mov rax, [rbx + rcx*3]\n")

    def test_mem_to_mem_rejected(self):
        with pytest.raises(AssemblyError):
            asm("main:\n  mov [rax], [rbx]\n")

    def test_store_immediate(self):
        program = asm("main:\n  mov [rax], 7\n")
        dst, src = program.instrs[0].operands
        assert isinstance(dst, Mem) and src == Imm(7)


class TestSymbolicDisplacement:
    def test_symbol_in_memory_operand_resolves(self):
        program = asm(".global table, 32\nmain:\n  mov rax, [table.addr]\n  halt\n")
        mem = program.fetch(program.entry).operands[1]
        pool = next(g for g in program.globals if g.pool_for == "table")
        assert mem.disp == pool.address

    def test_two_symbols_rejected(self):
        with pytest.raises(AssemblyError):
            asm(".global a, 8\n.global b, 8\nmain:\n  mov rax, [a.addr + b.addr]\n")


class TestGlobalDirectives:
    def test_global_creates_object_and_pool_slot(self):
        program = asm(".global buf, 100\nmain:\n  halt\n")
        names = [g.name for g in program.globals]
        assert "buf" in names and "buf.addr" in names
        pool = next(g for g in program.globals if g.name == "buf.addr")
        buf = next(g for g in program.globals if g.name == "buf")
        assert pool.init_words == (buf.address,)
        assert pool.pool_for == "buf"
        assert not pool.in_symbol_table

    def test_hidden_global_has_no_pool_slot(self):
        program = asm(".hidden secret, 64\nmain:\n  halt\n")
        assert [g.name for g in program.globals] == ["secret"]
        assert not program.globals[0].in_symbol_table

    def test_globals_do_not_overlap(self):
        program = asm(
            ".global a, 24\n.global b, 8\n.global c, 100\nmain:\n  halt\n")
        spans = sorted((g.address, g.end) for g in program.globals)
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end

    def test_init_words(self):
        program = asm(".global v, 16, 1, 2\nmain:\n  halt\n")
        obj = next(g for g in program.globals if g.name == "v")
        assert obj.init_words == (1, 2)

    def test_bad_directive(self):
        with pytest.raises(AssemblyError):
            asm(".globl x, 8\nmain:\n  halt\n")

    def test_zero_size_rejected(self):
        with pytest.raises(AssemblyError):
            asm(".global x, 0\nmain:\n  halt\n")


class TestControlFlowResolution:
    def test_forward_reference(self):
        program = asm("main:\n  jmp done\n  nop\ndone:\n  halt\n")
        resolved = program.fetch(program.entry)
        assert resolved.operands[0] == Imm(program.labels["done"])

    def test_undefined_symbol(self):
        with pytest.raises(ValueError):
            asm("main:\n  jmp nowhere\n")
