"""Unit tests for the shadow alias table, alias cache, and store-buffer PIDs."""

import pytest

from repro.core import AliasCache, ShadowAliasTable, StoreBufferPids, WALK_LEVELS
from repro.core.alias import NODE_BYTES


@pytest.fixture
def table():
    return ShadowAliasTable()


class TestShadowAliasTable:
    def test_set_walk_roundtrip(self, table):
        table.set(0x7FFF_0000, 42)
        assert table.walk(0x7FFF_0000) == 42

    def test_absent_is_zero(self, table):
        assert table.walk(0x1234_5678 & ~7) == 0

    def test_overwrite(self, table):
        table.set(0x1000, 1)
        table.set(0x1000, 2)
        assert table.walk(0x1000) == 2

    def test_set_zero_clears(self, table):
        table.set(0x1000, 5)
        table.set(0x1000, 0)
        assert table.walk(0x1000) == 0
        assert table.live_entries == 0

    def test_clear_untracked_is_noop(self, table):
        table.clear(0x5000)
        assert table.stats.entries_cleared == 0

    def test_distinct_words_distinct_entries(self, table):
        table.set(0x1000, 1)
        table.set(0x1008, 2)
        assert table.walk(0x1000) == 1
        assert table.walk(0x1008) == 2

    def test_walk_touches_levels(self, table):
        table.set(0x1000, 1)
        table.walk(0x1000)
        assert table.stats.walks == 1
        assert table.stats.levels_touched == WALK_LEVELS

    def test_failed_walk_stops_early(self, table):
        table.walk(0xDEAD_BEEF_0000 & ~7)
        assert table.stats.levels_touched < WALK_LEVELS

    def test_storage_scales_with_spread(self, table):
        table.set(0x1000, 1)
        one_region = table.shadow_bytes
        table.set(0x7FFF_0000_0000, 2)  # far away: new intermediate nodes
        assert table.shadow_bytes > one_region
        assert table.shadow_bytes % NODE_BYTES == 0

    def test_peek_does_not_count(self, table):
        table.set(0x1000, 3)
        assert table.peek(0x1000) == 3
        assert table.stats.walks == 0


class TestAliasCache:
    def test_miss_walks_then_hit(self, table):
        cache = AliasCache()
        table.set(0x2000, 9)
        pid, hit = cache.lookup(0x2000, table)
        assert (pid, hit) == (9, False)
        pid, hit = cache.lookup(0x2000, table)
        assert (pid, hit) == (9, True)
        assert table.stats.walks == 1

    def test_install_avoids_walk(self, table):
        cache = AliasCache()
        cache.install(0x3000, 4)
        pid, hit = cache.lookup(0x3000, table)
        assert (pid, hit) == (4, True)

    def test_invalidate(self, table):
        cache = AliasCache()
        cache.install(0x3000, 4)
        assert cache.invalidate(0x3000)
        table.set(0x3000, 5)
        pid, hit = cache.lookup(0x3000, table)
        assert (pid, hit) == (5, False)

    def test_victim_cache_catches_conflicts(self, table):
        cache = AliasCache(entries=4, ways=1, victim_entries=4)
        stride = 4 * 8  # map to the same set
        for i in range(3):
            cache.install(i * stride, i + 1)
        pid, hit = cache.lookup(0, table)
        assert (pid, hit) == (1, True)
        assert cache.stats.victim_hits >= 1


class TestStoreBufferPids:
    def test_commit_updates_table_and_cache(self, table):
        cache = AliasCache()
        buffer = StoreBufferPids()
        buffer.record(seq=1, address=0x1000, pid=7)
        committed = buffer.commit_upto(1, table, cache)
        assert committed == [(0x1000, 7)]
        assert table.peek(0x1000) == 7
        assert cache.lookup(0x1000, table) == (7, True)

    def test_only_older_entries_commit(self, table):
        cache = AliasCache()
        buffer = StoreBufferPids()
        buffer.record(1, 0x1000, 7)
        buffer.record(5, 0x2000, 8)
        buffer.commit_upto(3, table, cache)
        assert table.peek(0x1000) == 7
        assert table.peek(0x2000) == 0
        assert len(buffer) == 1

    def test_squash_drops_younger(self, table):
        buffer = StoreBufferPids()
        buffer.record(1, 0x1000, 7)
        buffer.record(5, 0x2000, 8)
        assert buffer.squash_after(2) == 1
        cache = AliasCache()
        buffer.commit_upto(10, table, cache)
        assert table.peek(0x2000) == 0  # squashed store never landed

    def test_forwarding_prefers_youngest(self):
        buffer = StoreBufferPids()
        buffer.record(1, 0x1000, 7)
        buffer.record(2, 0x1000, 9)
        assert buffer.forward(0x1000) == 9
        assert buffer.forward(0x2000) is None

    def test_zero_pid_commit_clears_alias(self, table):
        cache = AliasCache()
        buffer = StoreBufferPids()
        table.set(0x1000, 7)
        cache.install(0x1000, 7)
        buffer.record(1, 0x1000, 0)  # data overwrote the spilled pointer
        buffer.commit_upto(1, table, cache)
        assert table.peek(0x1000) == 0
        assert cache.lookup(0x1000, table) == (0, False)

    def test_overflow_counted_not_lost(self, table):
        buffer = StoreBufferPids(capacity=2)
        for seq in range(4):
            buffer.record(seq, 0x1000 + seq * 8, seq + 1)
        assert buffer.overflows == 2
        cache = AliasCache()
        committed = buffer.commit_upto(10, table, cache)
        assert len(committed) == 4  # nothing silently dropped
