"""Tests for ``repro status`` (``repro.eval.status``).

The status reader must reconstruct correct cell counts from whatever an
interrupted sweep left in the journal — including the
killed-then-resumed scenario the fault-injection suite exercises: a
sweep that announced N cells, completed some, and died mid-cell leaves
a ``start`` with no terminal event; the resumed sweep's journal then
shows the cache-served completions and the recomputed stragglers.
"""

import json

from repro.eval.engine import CellSpec, EvalEngine, SweepJournal
from repro.eval.status import ETA_WINDOW, RunningCell, SweepStatus, \
    read_status

BUDGET = 60_000
DEFENSES = ("insecure", "ucode-prediction", "hardware-only")


def spec(defense="insecure"):
    return CellSpec(workload="lbm", defense=defense,
                    max_instructions=BUDGET)


def engine(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path))
    kwargs.setdefault("retry_backoff", 0.05)
    return EvalEngine(**kwargs)


class TestReadStatus:
    def test_missing_journal_is_empty_status(self, tmp_path):
        status = read_status(tmp_path / "nowhere")
        assert status.total == 0 and status.done == 0
        assert status.running == []
        assert "0 total" in status.format_text()

    def test_completed_sweep(self, tmp_path):
        partial = engine(tmp_path, jobs=1)
        partial.run_cells([spec(d) for d in DEFENSES[:2]],
                          artifact="fig6")
        status = read_status(tmp_path)
        assert status.artifacts == ["fig6"]
        assert status.total == 2
        assert status.done == 2 and status.cached == 0
        assert status.remaining == 0
        assert status.running == []
        assert status.last_event_ts is not None
        assert "eta:         complete" in status.format_text()

    def test_killed_then_resumed_sweep(self, tmp_path):
        """The acceptance scenario: 3-cell sweep killed mid-third-cell,
        then resumed to completion."""
        # Phase 1 — the sweep completes two cells, then is killed while
        # the third is in flight: its journal ends with a bare start.
        partial = engine(tmp_path, jobs=1)
        partial.run_cells([spec(d) for d in DEFENSES[:2]],
                          artifact="fig6")
        journal = SweepJournal(tmp_path)
        with journal.path.open("a") as handle:
            # What a 3-cell batch + SIGKILL mid-cell actually leaves:
            # the batch re-announcement and the orphaned start.
            handle.write(json.dumps({
                "event": "batch", "artifact": "fig6", "requested": 3,
                "cells": 3, "jobs": 2, "ts": 1000.0}) + "\n")
            handle.write(json.dumps({
                "event": "start", "key": spec(DEFENSES[2]).cache_key(),
                "label": spec(DEFENSES[2]).label, "artifact": "fig6",
                "attempt": 1, "pid": 4242, "ts": 1001.0}) + "\n")

        killed = read_status(tmp_path)
        assert killed.total == 3
        assert killed.done == 2
        assert killed.remaining == 1
        assert [cell.label for cell in killed.running] \
            == [spec(DEFENSES[2]).label]
        assert killed.running[0].pid == 4242
        assert killed.running[0].attempt == 1
        assert killed.jobs == 2
        assert killed.eta_seconds() is not None  # extrapolates from done
        text = killed.format_text()
        assert "3 total, 2 done" in text
        assert "1 running" in text
        assert "lbm/hardware-only" in text

        # Phase 2 — resume recomputes only the straggler; status now
        # reports a fully complete 3-cell sweep with 2 cache hits.
        resumed = engine(tmp_path, jobs=1, resume=True)
        resumed.run_cells([spec(d) for d in DEFENSES], artifact="fig6")
        assert resumed.stats.computed == 1
        final = read_status(tmp_path)
        assert final.total == 3
        assert final.done == 3
        assert final.cached == 2
        assert final.running == []
        assert final.remaining == 0
        assert final.cache_hit_rate == 2 / 3

    def test_resumed_batch_not_double_counted(self, tmp_path):
        first = engine(tmp_path, jobs=1)
        first.run_cells([spec()], artifact="fig6")
        resumed = engine(tmp_path, jobs=1, resume=True)
        resumed.run_cells([spec()], artifact="fig6")
        status = read_status(tmp_path)
        assert status.total == 1      # latest batch wins, not 1 + 1
        assert status.done == 1 and status.cached == 1

    def test_failed_and_retry_counters(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            {"event": "batch", "artifact": "fig6", "cells": 2,
             "jobs": 1, "ts": 1.0},
            {"event": "start", "key": "k1", "label": "a/b",
             "attempt": 1, "ts": 2.0},
            {"event": "retry", "key": "k1", "label": "a/b",
             "attempt": 2, "ts": 3.0},
            {"event": "start", "key": "k1", "label": "a/b",
             "attempt": 2, "ts": 4.0},
            {"event": "failed", "key": "k1", "label": "a/b", "ts": 5.0},
            {"event": "quarantine", "key": "k2", "label": "c/d",
             "ts": 6.0},
            {"event": "done", "key": "k2", "label": "c/d",
             "seconds": 2.5, "attempts": 1, "ts": 7.0},
        ]
        journal.path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n")
        status = read_status(tmp_path)
        assert status.total == 2
        assert status.done == 1 and status.failed == 1
        assert status.retries == 1 and status.quarantined == 1
        assert status.running == []
        assert status.recent_seconds == [2.5]
        assert status.last_event_ts == 7.0
        assert "1 failed" in status.format_text()

    def test_truncated_trailing_line_skipped(self, tmp_path):
        done = engine(tmp_path, jobs=1)
        done.run_cells([spec()])
        journal = SweepJournal(tmp_path)
        with journal.path.open("a") as handle:
            handle.write('{"event": "start", "key": "trunc')
        status = read_status(tmp_path)
        assert status.done == 1 and status.running == []

    def test_spilled_spans_counted(self, tmp_path):
        from repro.telemetry.spans import SPILL_FILENAME

        done = engine(tmp_path, jobs=1)
        done.run_cells([spec()])
        (tmp_path / SPILL_FILENAME).write_text(
            '{"name": "a"}\n\n{"name": "b"}\n')
        status = read_status(tmp_path)
        assert status.spilled_spans == 2
        assert SPILL_FILENAME in status.format_text()


class TestEtaMath:
    def _status(self, **kwargs):
        kwargs.setdefault("cache_dir", "x")
        return SweepStatus(**kwargs)

    def test_eta_window_and_division_by_jobs(self):
        status = self._status(total=10, done=4, jobs=2,
                              recent_seconds=[2.0, 4.0])
        assert status.remaining == 6
        assert status.eta_seconds() == 6 * 3.0 / 2

    def test_no_eta_without_recent_durations(self):
        status = self._status(total=5, done=1)
        assert status.eta_seconds() is None

    def test_recent_window_is_bounded(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [{"event": "done", "key": f"k{n}", "seconds": float(n),
                  "ts": float(n)} for n in range(ETA_WINDOW + 5)]
        journal.path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n")
        status = read_status(tmp_path)
        assert len(status.recent_seconds) == ETA_WINDOW
        assert status.recent_seconds[-1] == float(ETA_WINDOW + 4)

    def test_running_cell_age(self):
        cell = RunningCell(label="a/b", attempt=1, pid=1, since=100.0)
        assert cell.age_seconds(now=103.5) == 3.5
        assert RunningCell("a/b", 1, None, None).age_seconds() is None

    def test_to_dict_round_trips_through_json(self):
        status = self._status(total=3, done=1, jobs=2,
                              running=[RunningCell("a/b", 2, 7, None)],
                              recent_seconds=[1.0])
        document = json.loads(json.dumps(status.to_dict()))
        assert document["total"] == 3
        assert document["running"][0]["label"] == "a/b"
        assert document["eta_seconds"] == 2 * 1.0 / 2
