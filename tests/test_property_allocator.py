"""Property-based tests for the heap allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heap import ALIGN, HEADER_BYTES, HeapAllocator
from repro.memory import Memory

sizes = st.integers(min_value=1, max_value=512)


def interval_overlap(a_start, a_end, b_start, b_end):
    return a_start < b_end and b_start < a_end


class TestAllocatorProperties:
    @given(st.lists(sizes, min_size=1, max_size=60))
    def test_live_allocations_never_overlap(self, requests):
        heap = HeapAllocator(Memory())
        live = []
        for size in requests:
            user = heap.malloc(size)
            assert user != 0
            for other_user, other_size in live:
                assert not interval_overlap(user, user + size,
                                            other_user,
                                            other_user + other_size)
            live.append((user, size))

    @given(st.lists(sizes, min_size=1, max_size=60))
    def test_alignment_always_holds(self, requests):
        heap = HeapAllocator(Memory())
        for size in requests:
            user = heap.malloc(size)
            assert (user - HEADER_BYTES) % ALIGN == 0

    @given(st.lists(st.tuples(sizes, st.booleans()), min_size=1, max_size=60))
    def test_malloc_free_sequences_keep_stats_consistent(self, script):
        heap = HeapAllocator(Memory())
        live = []
        allocs = frees = 0
        for size, do_free in script:
            user = heap.malloc(size)
            allocs += 1
            if do_free:
                heap.free(user)
                frees += 1
            else:
                live.append(user)
        assert heap.stats.total_allocs == allocs
        assert heap.stats.total_frees == frees
        assert heap.stats.live == allocs - frees
        assert heap.stats.max_live <= allocs

    @given(st.lists(sizes, min_size=1, max_size=30))
    def test_free_all_then_realloc_reuses_memory(self, requests):
        """Freeing everything and re-requesting the same sizes must not
        grow the wilderness (perfect reuse through the bins)."""
        heap = HeapAllocator(Memory())
        users = [heap.malloc(size) for size in requests]
        top_before = heap.wilderness
        for user in users:
            heap.free(user)
        for size in requests:
            assert heap.malloc(size) != 0
        assert heap.wilderness == top_before

    @given(st.lists(sizes, min_size=1, max_size=40))
    def test_records_track_every_allocation(self, requests):
        heap = HeapAllocator(Memory())
        for size in requests:
            user = heap.malloc(size)
            record = heap.record_for(user)
            assert record is not None
            assert record.address == user
            assert record.size == size

    @given(data=st.data())
    def test_contents_survive_realloc(self, data):
        heap = HeapAllocator(Memory())
        size = data.draw(st.integers(min_value=8, max_value=128))
        words = data.draw(st.lists(
            st.integers(0, (1 << 64) - 1),
            min_size=1, max_size=size // 8))
        user = heap.malloc(size)
        heap.memory.fill_words(user, words)
        new_size = data.draw(st.integers(min_value=size, max_value=1024))
        moved = heap.realloc(user, new_size)
        assert heap.memory.read_words(moved, len(words)) == words
