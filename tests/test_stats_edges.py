"""Zero-denominator edge cases for every derived-ratio accessor.

Repo-wide convention: a ratio whose denominator is zero (a run that
never advanced, decoded nothing, or has no cores) yields 0.0 — never
ZeroDivisionError.  The one exception is ``PredictorStats.accuracy``,
which reports 1.0 for zero lookups (no lookups means no mispredicts).
"""

import pytest

from repro.core import Variant, ViolationLog
from repro.core.machine import RunResult
from repro.eval.common import BenchmarkRun
from repro.pipeline.multicore import MulticoreResult
from repro.pipeline.timing import TimingStats


def empty_run_result():
    return RunResult(program="p", variant=Variant.INSECURE, halted=True,
                     instructions=0, uops=0, native_uops=0, injected_uops=0,
                     cycles=0, violations=ViolationLog(), machine=None)


def empty_benchmark_run(**overrides):
    fields = dict(benchmark="lbm", suite="SPEC", defense="insecure",
                  threads=1, halted=True, flagged=False, instructions=0,
                  cycles=0, uops=0, native_uops=0, injected_uops=0,
                  capcache_accesses=0, capcache_misses=0,
                  aliascache_accesses=0, aliascache_misses=0,
                  predictor_lookups=0, predictor_mispredicts=0,
                  squash_cycles=0, alias_squash_cycles=0,
                  core_cycles_total=0, dram_bytes=0, shadow_dram_bytes=0,
                  rss_bytes=0, shadow_rss_bytes=0, frequency_ghz=0.0)
    fields.update(overrides)
    return BenchmarkRun(**fields)


class TestRunResult:
    def test_empty_run_ratios_are_zero(self):
        result = empty_run_result()
        assert result.ipc == 0.0
        assert result.uop_expansion == 0.0
        assert result.normalized_performance(100) == 0.0


class TestMulticoreResult:
    def test_no_cores(self):
        result = MulticoreResult(program="p", variant=Variant.INSECURE,
                                 per_core=[], system=None)
        assert result.cycles == 0
        assert result.uop_expansion == 0.0
        assert result.normalized_performance(100) == 0.0
        assert result.halted  # vacuously: no core failed to halt

    def test_cores_that_did_nothing(self):
        result = MulticoreResult(program="p", variant=Variant.INSECURE,
                                 per_core=[empty_run_result()], system=None)
        assert result.uop_expansion == 0.0


class TestTimingStats:
    def test_fresh_stats(self):
        stats = TimingStats()
        assert stats.ipc() == 0.0
        assert stats.squash_fraction == 0.0
        assert stats.bandwidth_mb_per_s(3.2) == 0.0

    def test_zero_clock(self):
        stats = TimingStats(cycles=1000, dram_bytes=64)
        assert stats.bandwidth_mb_per_s(0.0) == 0.0
        assert stats.bandwidth_mb_per_s(3.2) > 0.0


class TestBenchmarkRun:
    def test_all_ratios_zero_on_empty_run(self):
        run = empty_benchmark_run()
        assert run.capcache_miss_rate == 0.0
        assert run.aliascache_miss_rate == 0.0
        assert run.predictor_misprediction_rate == 0.0
        assert run.squash_fraction == 0.0
        assert run.bandwidth_mb_per_s == 0.0
        assert run.normalized_performance(run) == 0.0
        assert run.uop_expansion_vs(run) == 0.0

    def test_zero_clock_bandwidth(self):
        run = empty_benchmark_run(cycles=500, dram_bytes=128)
        assert run.frequency_ghz == 0.0
        assert run.bandwidth_mb_per_s == 0.0

    def test_to_dict_survives_empty_run(self):
        record = empty_benchmark_run().to_dict()
        assert record["bandwidth_mb_per_s"] == 0.0
        assert BenchmarkRun.from_dict(record) == empty_benchmark_run()

    def test_nonzero_path_unchanged(self):
        run = empty_benchmark_run(cycles=100, instructions=200, uops=300,
                                  native_uops=150, frequency_ghz=3.2)
        assert run.uop_expansion_vs(run) == pytest.approx(1.0)
        assert run.normalized_performance(run) == pytest.approx(1.0)
