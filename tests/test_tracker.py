"""Unit tests for the speculative pointer tracker (transient/committed tags)."""

import pytest

from repro.core import MEMORY_POLICY, RuleDatabase, SpeculativePointerTracker, WILD_PID
from repro.isa import Mem, Reg
from repro.microop import AddrMode, AluOp, Uop, UopKind

RAX, RBX, RCX = int(Reg.RAX), int(Reg.RBX), int(Reg.RCX)


@pytest.fixture
def tracker():
    return SpeculativePointerTracker(RuleDatabase.table1())


class TestTagLifecycle:
    def test_initially_untagged(self, tracker):
        assert tracker.current_pid(RAX) == 0

    def test_transient_visible_before_commit(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        assert tracker.current_pid(RAX) == 7
        assert tracker.committed_pid(RAX) == 0

    def test_commit_finalizes(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        tracker.commit(10)
        assert tracker.committed_pid(RAX) == 7
        assert tracker.current_pid(RAX) == 7

    def test_highest_sequence_wins(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        tracker.set_pid(RAX, 9, seq=11)
        assert tracker.current_pid(RAX) == 9

    def test_squash_discards_younger_transients(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        tracker.set_pid(RAX, 9, seq=12)
        tracker.squash(10)  # instruction 10 is the offender boundary
        assert tracker.current_pid(RAX) == 7
        assert tracker.stats.squashed_tags == 1

    def test_squash_then_commit(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        tracker.set_pid(RAX, 9, seq=12)
        tracker.squash(11)
        tracker.commit(12)
        assert tracker.committed_pid(RAX) == 7

    def test_partial_commit(self, tracker):
        tracker.set_pid(RAX, 7, seq=10)
        tracker.set_pid(RAX, 9, seq=20)
        tracker.commit(15)
        assert tracker.committed_pid(RAX) == 7
        assert tracker.current_pid(RAX) == 9


class TestRuleApplication:
    def test_mov_propagates(self, tracker):
        tracker.set_pid(RBX, 5, seq=1)
        uop = Uop(UopKind.MOV, dst=RAX, srcs=(RBX,), addr_mode=AddrMode.REG_REG)
        tracker.apply(uop, seq=2)
        assert tracker.current_pid(RAX) == 5
        assert tracker.stats.transfers == 1

    def test_pointer_arithmetic_chain(self, tracker):
        tracker.set_pid(RBX, 5, seq=1)
        add = Uop(UopKind.ALU, alu=AluOp.ADD, dst=RCX, srcs=(RCX, RBX),
                  addr_mode=AddrMode.REG_REG)
        tracker.apply(add, seq=2)
        assert tracker.current_pid(RCX) == 5

    def test_limm_tags_wild(self, tracker):
        uop = Uop(UopKind.LIMM, dst=RAX, imm=0x7FFF0000, addr_mode=AddrMode.REG_IMM)
        tracker.apply(uop, seq=1)
        assert tracker.current_pid(RAX) == WILD_PID
        assert tracker.stats.wild_assignments == 1

    def test_load_returns_memory_policy(self, tracker):
        uop = Uop(UopKind.LD, dst=RAX, mem=Mem(base=Reg.RBX),
                  addr_mode=AddrMode.REG_MEM)
        assert tracker.apply(uop, seq=1) is MEMORY_POLICY

    def test_xor_zeroes(self, tracker):
        tracker.set_pid(RAX, 5, seq=1)
        uop = Uop(UopKind.ALU, alu=AluOp.XOR, dst=RAX, srcs=(RAX, RAX),
                  addr_mode=AddrMode.REG_REG)
        tracker.apply(uop, seq=2)
        assert tracker.current_pid(RAX) == 0


class TestBasePid:
    def test_base_register_pid(self, tracker):
        tracker.set_pid(RBX, 8, seq=1)
        uop = Uop(UopKind.LD, dst=RAX, mem=Mem(base=Reg.RBX))
        assert tracker.base_pid(uop) == 8

    def test_absolute_address_is_untracked(self, tracker):
        uop = Uop(UopKind.LD, dst=RAX, mem=Mem(disp=0x600000))
        assert tracker.base_pid(uop) == 0

    def test_no_mem_operand(self, tracker):
        assert tracker.base_pid(Uop(UopKind.NOP)) == 0


class TestSnapshot:
    def test_snapshot_lists_tagged_registers(self, tracker):
        tracker.set_pid(RAX, 3, seq=1)
        tracker.set_pid(RBX, WILD_PID, seq=2)
        snap = tracker.snapshot()
        assert snap == {RAX: 3, RBX: WILD_PID}
