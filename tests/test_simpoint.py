"""Tests for the SimPoint-style region selection."""

import pytest

from repro.analysis.simpoint import (
    SimPointSelection,
    SimulationPoint,
    profile_bbvs,
    select,
    select_for,
)
from repro.workloads import build


def phased_vectors(phase_a=10, phase_b=10):
    """Synthetic BBVs with two obvious phases touching disjoint blocks."""
    vectors = []
    for _ in range(phase_a):
        vectors.append({0: 50, 1: 50})
    for _ in range(phase_b):
        vectors.append({10: 80, 11: 20})
    return vectors


class TestSelection:
    def test_two_phases_need_two_points(self):
        selection = select(phased_vectors(), max_k=2)
        assert len(selection.points) == 2
        assert selection.coverage == pytest.approx(1.0)

    def test_phase_weights_match_populations(self):
        selection = select(phased_vectors(phase_a=15, phase_b=5), max_k=2)
        weights = sorted(point.weight for point in selection.points)
        assert weights == pytest.approx([0.25, 0.75])

    def test_representatives_come_from_their_phase(self):
        selection = select(phased_vectors(), max_k=2)
        intervals = sorted(point.interval for point in selection.points)
        assert intervals[0] < 10 <= intervals[1]

    def test_uniform_run_collapses_to_one_cluster_estimate(self):
        vectors = [{0: 100, 1: 3}] * 12
        selection = select(vectors, max_k=4)
        assert selection.coverage == pytest.approx(1.0)
        # All intervals identical: the estimate is exact whatever k found.
        metric = [2.5] * 12
        assert selection.estimate(metric) == pytest.approx(2.5)

    def test_estimate_is_population_weighted(self):
        selection = select(phased_vectors(phase_a=10, phase_b=10), max_k=2)
        metric = [1.0] * 10 + [3.0] * 10  # per-interval IPC, say
        assert selection.estimate(metric) == pytest.approx(2.0)

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            select([])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            SimulationPoint(interval=0, weight=0.0)

    def test_estimate_validates_metric_length(self):
        """A per-interval metric that does not cover the profile exactly
        must raise a clear ValueError, not mis-weight or IndexError."""
        selection = select(phased_vectors(), max_k=2)
        with pytest.raises(ValueError, match="19 entries.*20 intervals"):
            selection.estimate([1.0] * 19)
        with pytest.raises(ValueError, match="21 entries.*20 intervals"):
            selection.estimate([1.0] * 21)
        # The exact length still works.
        assert selection.estimate([1.0] * 20) == pytest.approx(1.0)


class TestKmeansEmptyClusterReseeding:
    """Duplicated two-phase BBVs force ``k > distinct points``: every
    Lloyd sweep empties a cluster and exercises the reseeding path.  The
    reseed must measure distances against the *current* centroids (the
    pre-sweep distance matrix is stale once earlier clusters moved) and
    break ties deterministically."""

    VECTORS = [{0: 50, 1: 50}] * 6 + [{10: 80, 11: 20}] * 6

    def test_pinned_assignments_for_two_phase_duplicates(self):
        from repro.analysis.simpoint import _kmeans, _to_matrix

        assignments, _ = _kmeans(_to_matrix(self.VECTORS), 3)
        assert assignments.tolist() == [1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2]

    def test_phases_stay_separated_under_reseeding(self):
        selection = select(self.VECTORS, max_k=3)
        # Exactly one representative per phase, half the run each.
        assert len(selection.points) == 2
        intervals = sorted(point.interval for point in selection.points)
        assert intervals[0] < 6 <= intervals[1]
        assert [point.weight for point in selection.points] \
            == pytest.approx([0.5, 0.5])
        # Every phase-A interval shares one cluster, phase B the other.
        assert len(set(selection.cluster_of[:6])) == 1
        assert len(set(selection.cluster_of[6:])) == 1
        assert selection.cluster_of[0] != selection.cluster_of[6]

    def test_reseeding_is_deterministic(self):
        first = select(self.VECTORS, max_k=3)
        second = select(self.VECTORS, max_k=3)
        assert first.cluster_of == second.cluster_of
        assert [(p.interval, p.weight) for p in first.points] \
            == [(p.interval, p.weight) for p in second.points]


class TestProfilingPipeline:
    def test_bbv_collection_on_a_workload(self):
        vectors, machine = profile_bbvs(build("perlbench", 1), interval=500)
        assert len(vectors) >= 2
        assert sum(sum(v.values()) for v in vectors) == machine.instructions

    def test_select_for_covers_the_run(self):
        selection = select_for(build("perlbench", 1), interval=500, max_k=6)
        assert 1 <= len(selection.points) <= 6
        assert selection.coverage == pytest.approx(1.0)
        assert all(0 <= p.interval < selection.intervals
                   for p in selection.points)

    def test_phased_workload_estimate_tracks_full_run(self):
        """The SimPoint estimate of 'pointer-activity per interval' must
        be close to the true full-run average."""
        vectors, machine = profile_bbvs(build("gcc", 1), interval=500)
        selection = select(vectors, max_k=8)
        # Metric: fraction of the interval spent in the front half of the
        # program text (an arbitrary but phase-correlated quantity).
        metric = []
        for vector in vectors:
            total = sum(vector.values())
            front = sum(c for idx, c in vector.items() if idx < 100)
            metric.append(front / total if total else 0.0)
        true_average = sum(
            m * sum(v.values()) for m, v in zip(metric, vectors)
        ) / sum(sum(v.values()) for v in vectors)
        estimate = selection.estimate(metric)
        assert abs(estimate - true_average) < 0.15
