"""Tests for the SimPoint-style region selection."""

import pytest

from repro.analysis.simpoint import (
    SimPointSelection,
    SimulationPoint,
    profile_bbvs,
    select,
    select_for,
)
from repro.workloads import build


def phased_vectors(phase_a=10, phase_b=10):
    """Synthetic BBVs with two obvious phases touching disjoint blocks."""
    vectors = []
    for _ in range(phase_a):
        vectors.append({0: 50, 1: 50})
    for _ in range(phase_b):
        vectors.append({10: 80, 11: 20})
    return vectors


class TestSelection:
    def test_two_phases_need_two_points(self):
        selection = select(phased_vectors(), max_k=2)
        assert len(selection.points) == 2
        assert selection.coverage == pytest.approx(1.0)

    def test_phase_weights_match_populations(self):
        selection = select(phased_vectors(phase_a=15, phase_b=5), max_k=2)
        weights = sorted(point.weight for point in selection.points)
        assert weights == pytest.approx([0.25, 0.75])

    def test_representatives_come_from_their_phase(self):
        selection = select(phased_vectors(), max_k=2)
        intervals = sorted(point.interval for point in selection.points)
        assert intervals[0] < 10 <= intervals[1]

    def test_uniform_run_collapses_to_one_cluster_estimate(self):
        vectors = [{0: 100, 1: 3}] * 12
        selection = select(vectors, max_k=4)
        assert selection.coverage == pytest.approx(1.0)
        # All intervals identical: the estimate is exact whatever k found.
        metric = [2.5] * 12
        assert selection.estimate(metric) == pytest.approx(2.5)

    def test_estimate_is_population_weighted(self):
        selection = select(phased_vectors(phase_a=10, phase_b=10), max_k=2)
        metric = [1.0] * 10 + [3.0] * 10  # per-interval IPC, say
        assert selection.estimate(metric) == pytest.approx(2.0)

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            select([])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            SimulationPoint(interval=0, weight=0.0)


class TestProfilingPipeline:
    def test_bbv_collection_on_a_workload(self):
        vectors, machine = profile_bbvs(build("perlbench", 1), interval=500)
        assert len(vectors) >= 2
        assert sum(sum(v.values()) for v in vectors) == machine.instructions

    def test_select_for_covers_the_run(self):
        selection = select_for(build("perlbench", 1), interval=500, max_k=6)
        assert 1 <= len(selection.points) <= 6
        assert selection.coverage == pytest.approx(1.0)
        assert all(0 <= p.interval < selection.intervals
                   for p in selection.points)

    def test_phased_workload_estimate_tracks_full_run(self):
        """The SimPoint estimate of 'pointer-activity per interval' must
        be close to the true full-run average."""
        vectors, machine = profile_bbvs(build("gcc", 1), interval=500)
        selection = select(vectors, max_k=8)
        # Metric: fraction of the interval spent in the front half of the
        # program text (an arbitrary but phase-correlated quantity).
        metric = []
        for vector in vectors:
            total = sum(vector.values())
            front = sum(c for idx, c in vector.items() if idx < 100)
            metric.append(front / total if total else 0.0)
        true_average = sum(
            m * sum(v.values()) for m, v in zip(metric, vectors)
        ) / sum(sum(v.values()) for v in vectors)
        estimate = selection.estimate(metric)
        assert abs(estimate - true_average) < 0.15
