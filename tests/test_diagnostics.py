"""Tests for the violation diagnostics reporter."""

import pytest

from repro.analysis.diagnostics import explain_violation
from repro.core import Chex86Machine, Variant

from conftest import assemble_main


def machine_with_violation(body, globals_asm=""):
    program = assemble_main(body, globals_asm=globals_asm)
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=False)
    machine.run(max_instructions=100_000)
    return machine


class TestExplainViolation:
    def test_oob_report_has_all_sections(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
""")
        report = explain_violation(machine)
        assert "OUT-OF-BOUNDS" in report
        assert "=>" in report                      # faulting instruction
        assert "mov [rax + 72], 1" in report
        assert "capability: PID" in report
        assert "past the end" in report
        assert "allocator: allocation #0" in report
        assert "hint:" in report

    def test_underflow_distance(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, [rax - 16]
""")
        report = explain_violation(machine)
        assert "below the base" in report

    def test_uaf_report_marks_freed(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        report = explain_violation(machine)
        assert "USE-AFTER-FREE" in report
        assert "FREED/invalid" in report
        assert "currently freed" in report

    def test_wild_dereference_names_movi(self):
        machine = machine_with_violation("""
    movabs rbx, 0x7fff4000
    mov rax, [rbx]
""")
        report = explain_violation(machine)
        assert "WILD-DEREFERENCE" in report
        assert "PID(-1)" in report
        assert "constant pool" in report

    def test_double_free_hint(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rdi, rbx
    call free
""")
        report = explain_violation(machine)
        assert "DOUBLE-FREE" in report
        assert "two ownership paths" in report

    def test_no_violation_case(self):
        machine = machine_with_violation("    mov rax, 1")
        assert explain_violation(machine) == "no violations recorded"

    def test_explicit_violation_argument(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
    mov [rax + 80], 1
""")
        second = machine.violations.violations[1]
        report = explain_violation(machine, second)
        assert "mov [rax + 80], 1" in report


class TestDisasmWindowEdges:
    """The disassembly window must render for *any* pc a violation can
    carry, degrading to explanatory lines instead of raising."""

    def make_machine(self, body="    mov rax, 1"):
        program = assemble_main(body)
        return Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                             halt_on_violation=False)

    def test_first_instruction_window_is_clamped(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        base = machine.program.text_base
        lines = _disasm_window(machine, base)
        assert any(line.startswith("=>") for line in lines)
        assert f"{base:#x}" in "\n".join(lines)

    def test_last_instruction_window_is_clamped(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        program = machine.program
        last = program.address_of(len(program) - 1)
        lines = _disasm_window(machine, last)
        assert any(line.startswith("=>") for line in lines)

    def test_wild_pc_outside_text(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        lines = _disasm_window(machine, 0x7FFF_4000)
        assert lines == ["  0x7fff4000:  <outside text section>"]

    def test_pc_zero_outside_text(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        assert _disasm_window(machine, 0) \
            == ["  0x0:  <outside text section>"]

    def test_misaligned_pc_snaps_to_enclosing_slot(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        pc = machine.program.text_base + 3  # mid-slot
        lines = _disasm_window(machine, pc)
        assert lines[0].endswith("<misaligned pc; showing enclosing slot>")
        assert any(line.startswith("=>") for line in lines)

    def test_non_integer_pc_degrades(self):
        from repro.analysis.diagnostics import _disasm_window

        machine = self.make_machine()
        lines = _disasm_window(machine, None)
        assert lines == ["  None:  <outside text section>"]


class TestProvenanceSection:
    def test_armed_report_renders_chain(self):
        program = assemble_main("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                                halt_on_violation=False)
        machine.enable_provenance()
        machine.run(max_instructions=100_000)
        report = explain_violation(machine)
        assert "provenance:" in report
        assert "allocated" in report
        assert "freed" in report
        assert "faulting access" in report

    def test_unarmed_report_has_no_provenance_section(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
""")
        assert "provenance:" not in explain_violation(machine)

    def test_violation_report_json(self):
        from repro.analysis.diagnostics import explain_all_violations_json

        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
""")
        [record] = explain_all_violations_json(machine)
        assert record["kind"] == "out-of-bounds"
        assert record["cwe"] == "CWE-787/125"
        assert record["hint"]
        assert any("=>" in line for line in record["disassembly"])


class TestExplainAllViolations:
    def test_every_violation_reported(self):
        from repro.analysis.diagnostics import explain_all_violations

        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
    mov [rax + 80], 1
""")
        assert len(machine.violations.violations) == 2
        report = explain_all_violations(machine)
        assert "2 violation(s) recorded" in report
        assert "violation 1 of 2" in report
        assert "violation 2 of 2" in report
        assert "mov [rax + 72], 1" in report
        assert "mov [rax + 80], 1" in report

    def test_no_violations(self):
        from repro.analysis.diagnostics import explain_all_violations

        machine = machine_with_violation("    mov rax, 1")
        assert explain_all_violations(machine) == "no violations recorded"
