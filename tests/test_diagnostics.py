"""Tests for the violation diagnostics reporter."""

import pytest

from repro.analysis.diagnostics import explain_violation
from repro.core import Chex86Machine, Variant

from conftest import assemble_main


def machine_with_violation(body, globals_asm=""):
    program = assemble_main(body, globals_asm=globals_asm)
    machine = Chex86Machine(program, variant=Variant.UCODE_PREDICTION,
                            halt_on_violation=False)
    machine.run(max_instructions=100_000)
    return machine


class TestExplainViolation:
    def test_oob_report_has_all_sections(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
""")
        report = explain_violation(machine)
        assert "OUT-OF-BOUNDS" in report
        assert "=>" in report                      # faulting instruction
        assert "mov [rax + 72], 1" in report
        assert "capability: PID" in report
        assert "past the end" in report
        assert "allocator: allocation #0" in report
        assert "hint:" in report

    def test_underflow_distance(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, [rax - 16]
""")
        report = explain_violation(machine)
        assert "below the base" in report

    def test_uaf_report_marks_freed(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        report = explain_violation(machine)
        assert "USE-AFTER-FREE" in report
        assert "FREED/invalid" in report
        assert "currently freed" in report

    def test_wild_dereference_names_movi(self):
        machine = machine_with_violation("""
    movabs rbx, 0x7fff4000
    mov rax, [rbx]
""")
        report = explain_violation(machine)
        assert "WILD-DEREFERENCE" in report
        assert "PID(-1)" in report
        assert "constant pool" in report

    def test_double_free_hint(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rdi, rbx
    call free
""")
        report = explain_violation(machine)
        assert "DOUBLE-FREE" in report
        assert "two ownership paths" in report

    def test_no_violation_case(self):
        machine = machine_with_violation("    mov rax, 1")
        assert explain_violation(machine) == "no violations recorded"

    def test_explicit_violation_argument(self):
        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
    mov [rax + 80], 1
""")
        second = machine.violations.violations[1]
        report = explain_violation(machine, second)
        assert "mov [rax + 80], 1" in report


class TestExplainAllViolations:
    def test_every_violation_reported(self):
        from repro.analysis.diagnostics import explain_all_violations

        machine = machine_with_violation("""
    mov rdi, 64
    call malloc
    mov [rax + 72], 1
    mov [rax + 80], 1
""")
        assert len(machine.violations.violations) == 2
        report = explain_all_violations(machine)
        assert "2 violation(s) recorded" in report
        assert "violation 1 of 2" in report
        assert "violation 2 of 2" in report
        assert "mov [rax + 72], 1" in report
        assert "mov [rax + 80], 1" in report

    def test_no_violations(self):
        from repro.analysis.diagnostics import explain_all_violations

        machine = machine_with_violation("    mov rax, 1")
        assert explain_all_violations(machine) == "no violations recorded"
