"""Unit tests for the generic set-associative cache model."""

import pytest

from repro.memory import SetAssocCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = SetAssocCache(4, 2)
        assert cache.access(10) is False
        assert cache.access(10) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(6, 4)

    def test_fully_associative(self):
        cache = SetAssocCache(4, 4)
        for key in range(4):
            cache.access(key)
        assert all(cache.probe(k) for k in range(4))
        cache.access(99)  # evicts LRU = key 0
        assert not cache.probe(0)
        assert cache.probe(99)

    def test_lru_refresh_on_hit(self):
        cache = SetAssocCache(2, 2)
        cache.access(0)
        cache.access(2)   # same set (2 sets? no: 1 set of 2 ways... )
        cache.access(0)   # refresh 0
        cache.access(4)   # evicts 2, not 0
        assert cache.probe(0)
        assert not cache.probe(2)

    def test_line_shift_groups_addresses(self):
        cache = SetAssocCache(8, 2, line_shift=6)
        cache.access(0x100)
        assert cache.access(0x13F) is True  # same 64-byte line
        assert cache.access(0x140) is False


class TestValuesAndInvalidation:
    def test_lookup_returns_value(self):
        cache = SetAssocCache(4, 2)
        cache.access(5, value="payload")
        assert cache.lookup(5) == "payload"
        assert cache.lookup(6) is None

    def test_update_in_place(self):
        cache = SetAssocCache(4, 2)
        cache.access(5, value=1)
        cache.update(5, 2)
        assert cache.lookup(5) == 2

    def test_invalidate(self):
        cache = SetAssocCache(4, 2)
        cache.access(5)
        assert cache.invalidate(5) is True
        assert not cache.probe(5)
        assert cache.invalidate(5) is False
        assert cache.stats.invalidations == 1

    def test_flush_keeps_stats(self):
        cache = SetAssocCache(4, 2)
        cache.access(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.stats.misses == 1


class TestVictimCache:
    def test_eviction_lands_in_victim(self):
        cache = SetAssocCache(2, 2, victim_entries=2)
        cache.access(0)
        cache.access(2)
        cache.access(4)  # evicts 0 into the victim cache
        assert cache.access(0) is True  # victim hit counts as hit
        assert cache.stats.victim_hits == 1

    def test_victim_capacity_bounded(self):
        cache = SetAssocCache(1, 1, victim_entries=1)
        cache.access(0)
        cache.access(1)  # 0 -> victim
        cache.access(2)  # 1 -> victim, 0 dropped
        assert cache.access(0) is False

    def test_miss_rate_property(self):
        cache = SetAssocCache(4, 2)
        cache.access(1)
        cache.access(1)
        cache.access(1)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
