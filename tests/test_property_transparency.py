"""Differential fuzzing: CHEx86 must be architecturally transparent.

The paper's core promise is *transparent* protection of unmodified
binaries: for a program with no memory-safety violations, running under
any CHEx86 variant must produce exactly the architectural state the
insecure baseline produces — same registers, same memory contents, no
flagged violations.  A constrained random-program generator plus a
differential run checks that invariant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import Reg, assemble

#: Registers the generator uses for data (avoids rsp/rbp and ASan's r13-15).
DATA_REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "r8", "r9", "r10")
PTR_REGS = ("r11", "r12")

VARIANTS = (Variant.HW_ONLY, Variant.BINARY_TRANSLATION,
            Variant.UCODE_ALWAYS_ON, Variant.UCODE_PREDICTION)


@st.composite
def violation_free_program(draw):
    """A random program: arithmetic, in-bounds heap traffic, loops, calls."""
    lines = ["main:"]
    # Seed the data registers.
    for reg in DATA_REGS:
        lines.append(f"    mov {reg}, {draw(st.integers(0, 1 << 16))}")
    # Two heap buffers, kept in the pointer registers.
    size = draw(st.sampled_from([32, 64, 128]))
    for reg in PTR_REGS:
        lines.append(f"    mov rdi, {size}")
        lines.append("    call malloc")
        lines.append(f"    mov {reg}, rax")
    n_ops = draw(st.integers(min_value=3, max_value=25))
    for i in range(n_ops):
        choice = draw(st.integers(0, 6))
        a = draw(st.sampled_from(DATA_REGS))
        b = draw(st.sampled_from(DATA_REGS))
        if choice == 0:
            op = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                       "imul"]))
            lines.append(f"    {op} {a}, {b}")
        elif choice == 1:
            lines.append(f"    mov {a}, {draw(st.integers(0, 1 << 20))}")
        elif choice == 2:  # in-bounds store
            ptr = draw(st.sampled_from(PTR_REGS))
            offset = draw(st.integers(0, size // 8 - 1)) * 8
            lines.append(f"    mov [{ptr} + {offset}], {a}")
        elif choice == 3:  # in-bounds load
            ptr = draw(st.sampled_from(PTR_REGS))
            offset = draw(st.integers(0, size // 8 - 1)) * 8
            lines.append(f"    mov {a}, [{ptr} + {offset}]")
        elif choice == 4:  # a short counted loop
            count = draw(st.integers(2, 6))
            body = draw(st.sampled_from([r for r in DATA_REGS if r != a]))
            lines.append(f"    mov {a}, 0")
            lines.append(f"loop{i}:")
            lines.append(f"    add {body}, 3")
            lines.append(f"    add {a}, 1")
            lines.append(f"    cmp {a}, {count}")
            lines.append(f"    jl loop{i}")
        elif choice == 5:  # stack spill/reload
            lines.append(f"    push {a}")
            lines.append(f"    pop {b}")
        else:  # pointer copy then in-bounds use (Table I traffic)
            ptr = draw(st.sampled_from(PTR_REGS))
            lines.append(f"    mov rsi, {ptr}")
            lines.append("    mov rdx, [rsi]")
    # Free one buffer (never touched again).
    lines.append(f"    mov rdi, {PTR_REGS[0]}")
    lines.append("    call free")
    lines.append(f"    mov {PTR_REGS[0]}, 0")
    lines.append("    halt")
    return "\n".join(lines) + "\n" + heap_library_asm()


def architectural_state(machine: Chex86Machine):
    regs = tuple(machine.regs[int(r)] for r in Reg if r is not Reg.RSP)
    heap_words = tuple(machine.memory.peek_word(0x1000_0000 + i * 8)
                       for i in range(64))
    return regs, heap_words


@settings(max_examples=20, deadline=None)
@given(source=violation_free_program())
def test_all_variants_architecturally_transparent(source):
    program = assemble(source, name="fuzz")
    reference = Chex86Machine(program, variant=Variant.INSECURE)
    reference_result = reference.run(max_instructions=20_000)
    assert reference_result.halted
    expected = architectural_state(reference)
    for variant in VARIANTS:
        machine = Chex86Machine(program, variant=variant,
                                halt_on_violation=True)
        result = machine.run(max_instructions=20_000)
        assert result.halted, f"{variant}: did not finish"
        assert not result.flagged, (
            f"{variant}: false positive {result.violations.violations}")
        assert architectural_state(machine) == expected, (
            f"{variant}: architectural state diverged")


@settings(max_examples=10, deadline=None)
@given(source=violation_free_program(),
       offset_past_end=st.integers(1, 4))
def test_appended_oob_is_caught_by_every_variant(source, offset_past_end):
    """The same random program with one OOB store appended must flag under
    every protected variant (and still run to completion insecurely)."""
    bad_store = (f"    mov [r12 + {offset_past_end * 128}], rax\n"
                 "    halt\n")
    source = source.replace("    halt\n", bad_store, 1)
    program = assemble(source, name="fuzz-oob")
    insecure = Chex86Machine(program, variant=Variant.INSECURE)
    assert not insecure.run(max_instructions=20_000).flagged
    for variant in VARIANTS:
        machine = Chex86Machine(program, variant=variant,
                                halt_on_violation=True)
        result = machine.run(max_instructions=20_000)
        assert result.flagged, f"{variant} missed the OOB store"
