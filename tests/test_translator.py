"""Tests for the explicit binary-translation instrumentation path."""

import pytest

from repro.core import Chex86Machine, Variant, ViolationKind
from repro.heap import heap_library_asm
from repro.isa import Op, Reg, assemble
from repro.translator import translate
from repro.workloads import build

from conftest import assemble_main

BUGGY = """
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov [rbx + 72], 1
"""

CLEAN = """
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rcx, 0
loop:
    mov [rbx + rcx*8], rcx
    add rcx, 1
    cmp rcx, 8
    jne loop
    mov rdx, [rbx + 16]
    mov rdi, rbx
    call free
"""


def run_translated(body, variant=Variant.BT_ISA_EXTENSION, trap=True):
    program, report = translate(assemble_main(body))
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=trap)
    return machine, machine.run(max_instructions=300_000), report


class TestRewrite:
    def test_checks_inserted_before_heap_accesses(self):
        program, report = translate(assemble_main(CLEAN))
        ops = [i.op for i in program.instrs]
        assert Op.CAPCHK in ops
        assert report.instrumented == 2  # the store and the load

    def test_write_flag_set_for_stores(self):
        program, _ = translate(assemble_main(BUGGY))
        check = next(i for i in program.instrs if i.op is Op.CAPCHK)
        assert len(check.operands) == 2  # write flag present

    def test_stack_accesses_skipped(self):
        program, report = translate(
            assemble_main("    mov rax, [rsp + 8]\n    push rax"))
        assert report.instrumented == 0
        assert report.skipped_stack == 1

    def test_labels_survive(self):
        program, _ = translate(assemble_main(CLEAN))
        assert "loop" in program.labels
        # The loop back-edge still branches to the (now instrumented) body.
        machine = Chex86Machine(program, variant=Variant.BT_ISA_EXTENSION,
                                halt_on_violation=True)
        result = machine.run()
        assert result.halted and not result.flagged


class TestDetectionEquivalence:
    def test_oob_detected_via_explicit_check(self):
        machine, result, _ = run_translated(BUGGY)
        assert result.violations.count(ViolationKind.OUT_OF_BOUNDS) == 1
        # No injection happened: the check came from the binary itself.
        assert machine.mcu.stats.capchecks == 0

    def test_uaf_detected(self):
        machine, result, _ = run_translated("""
    mov rdi, 64
    call malloc
    mov rbx, rax
    mov rdi, rax
    call free
    mov rcx, [rbx]
""")
        assert result.violations.count(ViolationKind.USE_AFTER_FREE) == 1

    def test_clean_program_transparent(self):
        machine, result, _ = run_translated(CLEAN)
        assert result.halted and not result.flagged
        assert machine.regs[Reg.RDX] == 2  # [rbx+16] after the fill loop

    def test_agrees_with_microcode_variant_on_workloads(self):
        for name in ("perlbench", "lbm"):
            workload = build(name, 1)
            original = assemble(workload.source, name=name)
            translated, _ = translate(original)
            bt = Chex86Machine(translated, variant=Variant.BT_ISA_EXTENSION,
                               halt_on_violation=True)
            bt_result = bt.run(max_instructions=800_000)
            assert bt_result.halted and not bt_result.flagged


class TestCostModel:
    def test_explicit_checks_cost_fetch_bandwidth(self):
        """The translated binary executes more macro instructions than the
        microcode variant injects uops for — the front-end cost the paper
        quotes for binary translation."""
        workload = build("perlbench", 1)
        original = assemble(workload.source, name="perlbench")

        ucode = Chex86Machine(original, variant=Variant.UCODE_PREDICTION,
                              halt_on_violation=False)
        ucode_result = ucode.run(max_instructions=800_000)

        translated, report = translate(original)
        bt = Chex86Machine(translated, variant=Variant.BT_ISA_EXTENSION,
                           halt_on_violation=False)
        bt_result = bt.run(max_instructions=800_000)

        assert report.code_growth > 0
        # Same work, more macro instructions through fetch/decode.
        assert bt_result.instructions > ucode_result.instructions
        # And no faster than surgical microcode injection.
        assert bt_result.cycles >= ucode_result.cycles * 0.98
