"""Tests for the analysis package: CVE data, patterns, profiling, tables."""

import pytest

from repro.analysis import (
    CATEGORIES,
    CVE_ROOT_CAUSES,
    PAPER_CHEX86,
    PRIOR_WORK,
    Pattern,
    TABLE2_EXAMPLES,
    all_years,
    average_memory_safety_share,
    breakdown,
    classify,
    full_table,
    measured_chex86_row,
    orders_of_magnitude_gaps,
    profile_patterns,
    profile_workload,
    qualitative_claims,
    render_bars,
    render_grouped_bars,
    render_table,
)
from repro.workloads import build


class TestCveDataset:
    def test_every_year_sums_to_100(self):
        for year, shares in CVE_ROOT_CAUSES.items():
            assert sum(shares) == pytest.approx(100.0)
            assert len(shares) == len(CATEGORIES)

    def test_thirteen_years(self):
        assert sorted(CVE_ROOT_CAUSES) == list(range(2006, 2019))

    def test_memory_safety_around_70_percent(self):
        assert 65 <= average_memory_safety_share() <= 78

    def test_breakdown_accessor(self):
        year = breakdown(2018)
        assert year.shares["Use After Free"] == 20.0
        assert year.memory_safety_share == pytest.approx(74.0)


class TestPatternClassifier:
    @pytest.mark.parametrize("pattern", list(Pattern), ids=lambda p: p.value)
    def test_table2_examples_classified(self, pattern):
        assert classify(TABLE2_EXAMPLES[pattern]) is pattern

    def test_short_sequences_default_sanely(self):
        assert classify([5]) is Pattern.CONSTANT
        assert classify([5, 5]) is Pattern.CONSTANT

    def test_two_distinct_values_is_stride(self):
        assert classify([5, 9]) is Pattern.STRIDE

    def test_batched_arithmetic_cycle_is_batch_stride(self):
        # Listing 1's shape: batches of one buffer, window strides, repeats.
        seq = [11, 11, 11, 15, 15, 15, 19, 19, 19] * 3
        assert classify(seq) is Pattern.BATCH_STRIDE

    def test_profile_groups_by_pc(self):
        trace = [(0x400000, 7)] * 8 + [(0x400100, pid) for pid in
                                       (1, 2, 3, 4, 5, 6, 7)]
        profile = profile_patterns(trace, min_events=6)
        assert profile.per_pc[0x400000] is Pattern.CONSTANT
        assert profile.per_pc[0x400100] is Pattern.STRIDE

    def test_profile_skips_short_traces(self):
        profile = profile_patterns([(0x400000, 1)], min_events=6)
        assert profile.per_pc == {}
        assert profile.dominant is None


class TestAllocationProfiler:
    def test_profile_reports_three_metrics(self):
        profile = profile_workload(build("perlbench", 1),
                                   max_instructions=200_000)
        assert profile.total_allocations > 0
        assert profile.max_live > 0
        assert profile.intervals > 0
        gaps = orders_of_magnitude_gaps(profile)
        assert gaps["total_over_live"] >= 1.0


class TestComparisonTable:
    def test_prior_work_rows(self):
        assert len(PRIOR_WORK) == 8
        names = {row.proposal for row in PRIOR_WORK}
        assert {"Hardbound", "Watchdog", "Intel MPX", "BOGO", "CHERI",
                "CHERIvoke", "REST", "Califorms"} == names

    def test_qualitative_claims_hold(self):
        assert all(qualitative_claims().values())

    def test_measured_row_formatting(self):
        row = measured_chex86_row(13.7, 37.5)
        assert "14%" in row.perf_average
        assert row.binary_compat == "yes"

    def test_full_table_appends_measured(self):
        rows = full_table(measured_chex86_row(10, 20))
        assert rows[-2] is PAPER_CHEX86
        assert rows[-1].proposal.startswith("CHEx86 (this repro)")


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "-" in lines[2]
        assert len({len(l) for l in lines[1:2]}) == 1

    def test_bars_scale_to_peak(self):
        text = render_bars({"a": 1.0, "b": 0.5}, width=10)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_bars_respect_explicit_max(self):
        text = render_bars({"a": 0.5}, width=10, max_value=1.0)
        assert text.count("#") == 5

    def test_grouped_bars(self):
        text = render_grouped_bars({"g1": {"x": 1.0}, "g2": {"y": 2.0}})
        assert "g1:" in text and "g2:" in text

    def test_boolean_formatting(self):
        text = render_table(["k", "v"], [["flag", True]])
        assert "yes" in text
