"""Tests for the experiment drivers (small-scale runs of each figure)."""

import pytest

from repro.core import Variant
from repro.eval import (
    fig1,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    run_benchmark,
    security,
    table1,
    table2,
    table3,
    table4,
)
from repro.workloads import build

SMALL = ("perlbench", "lbm")
BUDGET = 300_000


class TestRunBenchmark:
    def test_insecure_cell(self):
        run = run_benchmark(build("perlbench", 1), Variant.INSECURE,
                            max_instructions=BUDGET)
        assert run.halted and not run.flagged
        assert run.cycles > 0 and run.uops >= run.native_uops
        assert run.injected_uops == 0

    def test_prediction_cell_has_injections(self):
        run = run_benchmark(build("perlbench", 1), Variant.UCODE_PREDICTION,
                            max_instructions=BUDGET)
        assert run.injected_uops > 0
        assert run.uops > run.native_uops

    def test_asan_cell(self):
        run = run_benchmark(build("perlbench", 1), "asan",
                            max_instructions=BUDGET)
        assert run.defense == "asan"
        assert run.halted and not run.flagged

    def test_multicore_cell(self):
        run = run_benchmark(build("swaptions", 1), Variant.UCODE_PREDICTION,
                            max_instructions=BUDGET)
        assert run.threads == 4
        assert run.halted
        assert run.core_cycles_total >= run.cycles

    def test_normalization_identity(self):
        run = run_benchmark(build("lbm", 1), Variant.INSECURE,
                            max_instructions=BUDGET)
        assert run.normalized_performance(run) == pytest.approx(1.0)
        assert run.uop_expansion_vs(run) == pytest.approx(1.0)


class TestFigureDrivers:
    def test_fig1(self):
        result = fig1.run()
        assert len(result.years) == 13
        assert "Figure 1" in result.format_text()

    def test_fig3(self):
        result = fig3.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET)
        assert result.gaps_hold()
        assert "Figure 3" in result.format_text()

    def test_fig6(self):
        result = fig6.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET)
        perf = result.normalized_performance()
        assert set(perf) == set(SMALL)
        for cells in perf.values():
            assert cells["insecure"] == pytest.approx(1.0)
            assert cells["asan"] < 1.0
        assert result.speedup_over_asan("SPEC") > 1.0
        assert "Figure 6" in result.format_text()

    def test_fig7(self):
        result = fig7.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET)
        assert result.bigger_is_never_worse()
        assert 0 <= result.average_capcache_miss(64) <= 1
        assert "Figure 7" in result.format_text()

    def test_fig8(self):
        result = fig8.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET)
        assert 0.5 <= result.average_accuracy(1024) <= 1.0
        assert "Figure 8" in result.format_text()

    def test_fig9(self):
        result = fig9.run(scale=1, benchmarks=SMALL,
                          max_instructions=BUDGET)
        assert result.chex86_no_worse_than_asan()
        assert "Figure 9" in result.format_text()


class TestTableDrivers:
    def test_table1(self):
        result = table1.run(scale=1, max_instructions=50_000)
        assert result.converged
        assert {"ld", "st"} <= set(result.rules_learned)
        assert "Table I" in result.format_text()

    def test_table2(self):
        result = table2.run(scale=1, benchmarks=("perlbench",),
                            max_instructions=BUDGET)
        assert result.profiles["perlbench"].histogram
        assert "Table II" in result.format_text()

    def test_table3(self):
        result = table3.run()
        assert result.rows["ROB size"] == "224 entries"
        assert "Table III" in result.format_text()

    def test_table4(self):
        result = table4.run(scale=1, benchmarks=("lbm",),
                            max_instructions=BUDGET)
        assert all(result.claims().values())
        assert "Table IV" in result.format_text()

    def test_security_subsampled(self):
        result = security.run(ripe_limit=10)
        assert result.all_flagged()
        assert result.no_hijack_under_chex86()
        assert result.chex86["How2Heap"].total == 18
        assert "Security evaluation" in result.format_text()


class TestReproduceRunner:
    def test_reproduce_writes_artifacts(self, tmp_path, monkeypatch):
        """A scaled-down reproduce run must write every artifact + summary."""
        from repro.eval import runner

        # Shrink the benchmark set so this stays test-sized.
        def tiny_artifacts(scale, ripe_limit, engine):
            from repro.eval import fig1, fig3, security, table3
            return [
                ("fig1", lambda: fig1.run()),
                ("table3", lambda: table3.run()),
                ("fig3", lambda: fig3.run(scale=scale, benchmarks=("lbm",),
                                          max_instructions=200_000)),
                ("security", lambda: security.run(ripe_limit=ripe_limit)),
            ]

        monkeypatch.setattr(runner, "_artifacts", tiny_artifacts)
        # None of the tiny artifacts consume engine cells: skip prewarm.
        monkeypatch.setattr(runner, "shared_cell_specs", lambda scale: [])
        records = runner.reproduce(out_dir=str(tmp_path), scale=1,
                                   ripe_limit=4, echo=lambda _line: None)
        assert [r.name for r in records] == ["fig1", "table3", "fig3",
                                             "security"]
        for record in records:
            assert (tmp_path / f"{record.name}.txt").exists()
        import json
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["artifacts"]["security"]["all_flagged"] is True
        assert summary["artifacts"]["fig1"]["avg_memory_safety_pct"] > 60
