"""Unit tests for the branch prediction substrate (LTAGE-style, BTB, RAS)."""

import pytest

from repro.pipeline.branch import (
    FrontEndPredictors,
    LTagePredictor,
    ReturnAddressStack,
)


class TestLTage:
    def test_learns_always_taken(self):
        predictor = LTagePredictor()
        for _ in range(8):
            predictor.update(0x400000, True)
        assert predictor.predict(0x400000) is True

    def test_learns_never_taken(self):
        predictor = LTagePredictor()
        for _ in range(8):
            predictor.update(0x400010, False)
        assert predictor.predict(0x400010) is False

    def test_loop_exit_pattern(self):
        """T T T N repeated: history-based tables should catch the exit."""
        predictor = LTagePredictor()
        pattern = [True, True, True, False] * 60
        correct = sum(predictor.update(0x400020, taken) for taken in pattern)
        # After warmup the tagged components nail the periodic exit.
        tail = pattern[-80:]
        tail_correct = sum(predictor.update(0x400020, t) for t in tail)
        assert tail_correct / len(tail) > 0.9

    def test_alternating_pattern_learned(self):
        predictor = LTagePredictor()
        outcomes = [bool(i % 2) for i in range(240)]
        for taken in outcomes[:160]:
            predictor.update(0x400030, taken)
        correct = sum(predictor.update(0x400030, t) for t in outcomes[160:])
        assert correct / 80 > 0.85

    def test_independent_branches(self):
        predictor = LTagePredictor()
        for _ in range(10):
            predictor.update(0x400000, True)
            predictor.update(0x400100, False)
        assert predictor.predict(0x400000) is True
        assert predictor.predict(0x400100) is False

    def test_stats_counting(self):
        predictor = LTagePredictor()
        predictor.update(0x400000, True)
        assert predictor.stats.cond_predictions == 1
        assert 0.0 <= predictor.stats.cond_accuracy <= 1.0


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack(4)
        ras.push(0x1)
        ras.push(0x2)
        assert ras.pop() == 0x2
        assert ras.pop() == 0x1

    def test_underflow_returns_zero(self):
        assert ReturnAddressStack(4).pop() == 0

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.overflows == 1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() == 0  # 0x1 was lost


class TestFrontEndPredictors:
    def test_call_return_pairing(self):
        fe = FrontEndPredictors()
        fe.on_call(0x400008)
        assert fe.resolve_indirect(0x500000, 0x400008, is_return=True)

    def test_mismatched_return_mispredicts(self):
        fe = FrontEndPredictors()
        fe.on_call(0x400008)
        assert not fe.resolve_indirect(0x500000, 0x999999, is_return=True)
        assert fe.stats.indirect_mispredictions == 1

    def test_btb_learns_indirect_target(self):
        fe = FrontEndPredictors()
        assert not fe.resolve_indirect(0x400000, 0x500000, is_return=False)
        assert fe.resolve_indirect(0x400000, 0x500000, is_return=False)

    def test_conditional_roundtrip(self):
        fe = FrontEndPredictors()
        for _ in range(6):
            fe.resolve_conditional(0x400040, True)
        assert fe.predict_conditional(0x400040) is True
