"""Property-based tests for tracker speculation and the reload predictor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PointerReloadPredictor, RuleDatabase, SpeculativePointerTracker

regs = st.integers(min_value=0, max_value=15)
pids = st.integers(min_value=0, max_value=1 << 20)


class TestTrackerSpeculationProperties:
    @given(st.lists(st.tuples(regs, pids), min_size=1, max_size=60))
    def test_commit_all_equals_architectural_replay(self, writes):
        """Committing everything must equal a non-speculative replay."""
        tracker = SpeculativePointerTracker(RuleDatabase.table1())
        replay = {}
        for seq, (reg, pid) in enumerate(writes, start=1):
            tracker.set_pid(reg, pid, seq)
            replay[reg] = pid
        tracker.commit(len(writes))
        for reg, pid in replay.items():
            assert tracker.committed_pid(reg) == pid

    @given(st.lists(st.tuples(regs, pids), min_size=2, max_size=60),
           st.data())
    def test_squash_restores_prefix_state(self, writes, data):
        """Squashing at seq K must leave exactly the state of the first K
        writes — the paper's recovery invariant."""
        cut = data.draw(st.integers(min_value=1, max_value=len(writes)))
        tracker = SpeculativePointerTracker(RuleDatabase.table1())
        for seq, (reg, pid) in enumerate(writes, start=1):
            tracker.set_pid(reg, pid, seq)
        tracker.squash(cut)
        prefix = {}
        for seq, (reg, pid) in enumerate(writes, start=1):
            if seq <= cut:
                prefix[reg] = pid
        for reg in range(16):
            assert tracker.current_pid(reg) == prefix.get(reg, 0)

    @given(st.lists(st.tuples(regs, pids), min_size=2, max_size=40),
           st.data())
    def test_interleaved_commit_squash_never_resurrects(self, writes, data):
        cut = data.draw(st.integers(min_value=1, max_value=len(writes)))
        commit_point = data.draw(st.integers(min_value=0, max_value=cut))
        tracker = SpeculativePointerTracker(RuleDatabase.table1())
        for seq, (reg, pid) in enumerate(writes, start=1):
            tracker.set_pid(reg, pid, seq)
        tracker.commit(commit_point)
        tracker.squash(cut)
        # Nothing younger than the squash point may be visible.
        visible = {}
        for seq, (reg, pid) in enumerate(writes, start=1):
            if seq <= cut:
                visible[reg] = pid
        for reg in range(16):
            assert tracker.current_pid(reg) == visible.get(reg, 0)


class TestPredictorProperties:
    @given(pid=st.integers(1, 1 << 20), reps=st.integers(4, 30))
    def test_constant_sequences_converge(self, pid, reps):
        predictor = PointerReloadPredictor()
        pc = 0x400100
        for _ in range(reps):
            predicted = predictor.predict(pc)
            predictor.update(pc, predicted, pid)
        assert predictor.predict(pc) == pid

    @given(start=st.integers(1, 1000), stride=st.integers(1, 50),
           length=st.integers(8, 40))
    def test_arithmetic_sequences_converge(self, start, stride, length):
        predictor = PointerReloadPredictor()
        pc = 0x400200
        correct_tail = 0
        for i in range(length):
            actual = start + i * stride
            predicted = predictor.predict(pc)
            if predicted == actual and i >= length // 2:
                correct_tail += 1
            predictor.update(pc, predicted, actual)
        assert correct_tail >= (length - length // 2) - 3  # converged

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
    def test_stats_always_consistent(self, sequence):
        predictor = PointerReloadPredictor()
        pc = 0x400300
        for actual in sequence:
            predicted = predictor.predict(pc)
            predictor.update(pc, predicted, actual)
        stats = predictor.stats
        assert stats.correct + stats.mispredictions == len(sequence)
        assert 0.0 <= stats.accuracy <= 1.0

    @given(st.integers(3, 12))
    def test_blacklist_settles_for_pure_data_loads(self, reps):
        predictor = PointerReloadPredictor()
        pc = 0x400400
        for _ in range(reps):
            predicted = predictor.predict(pc)
            predictor.update(pc, predicted, 0)
        assert predictor.is_blacklisted(pc)
        assert predictor.predict(pc) == 0
