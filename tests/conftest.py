"""Shared fixtures and helpers for the CHEx86 reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import Chex86Machine, Variant
from repro.heap import heap_library_asm
from repro.isa import Program, assemble


def assemble_main(body: str, name: str = "test", globals_asm: str = "") -> Program:
    """Wrap ``body`` in a main label, append halt and the heap library."""
    source = globals_asm + "main:\n" + body + "\n    halt\n" + heap_library_asm()
    return assemble(source, name=name)


def run_program(body: str, variant: Variant = Variant.UCODE_PREDICTION,
                globals_asm: str = "", trap: bool = True,
                max_instructions: int = 200_000, **kwargs):
    """Assemble and run ``body``; returns the RunResult.

    Trapping on the first violation is the default — it matches how a
    deployed CHEx86 machine faults, and it keeps tests of corrupting
    programs (whose post-violation behaviour is undefined) fast.
    """
    program = assemble_main(body, globals_asm=globals_asm)
    machine = Chex86Machine(program, variant=variant,
                            halt_on_violation=trap, **kwargs)
    return machine.run(max_instructions=max_instructions)


@pytest.fixture
def make_machine():
    """Factory fixture: build a machine from a body snippet."""

    def factory(body: str, variant: Variant = Variant.UCODE_PREDICTION,
                globals_asm: str = "", **kwargs) -> Chex86Machine:
        program = assemble_main(body, globals_asm=globals_asm)
        return Chex86Machine(program, variant=variant,
                             halt_on_violation=False, **kwargs)

    return factory
