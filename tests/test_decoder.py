"""Unit tests for the CISC-to-RISC micro-op decoder."""

import pytest

from repro.isa import Imm, Instr, Mem, Op, Reg
from repro.isa.instructions import add, mov, pop, push, ret
from repro.microop import AddrMode, AluOp, DecodePath, Decoder, T0, UopKind


def decode(instr, address=0x400000, index=0, key=0):
    return Decoder().decode(instr, address, index, key)


class TestSimpleTranslations:
    def test_mov_reg_reg(self):
        uops, path = decode(mov(Reg.RAX, Reg.RBX))
        assert [u.kind for u in uops] == [UopKind.MOV]
        assert path is DecodePath.SIMPLE
        assert uops[0].addr_mode is AddrMode.REG_REG

    def test_mov_reg_imm_is_limm(self):
        uops, _ = decode(mov(Reg.RAX, Imm(7)))
        assert uops[0].kind is UopKind.LIMM
        assert uops[0].imm == 7

    def test_load(self):
        uops, _ = decode(mov(Reg.RAX, Mem(base=Reg.RBX, disp=8)))
        assert uops[0].kind is UopKind.LD
        assert uops[0].dst == int(Reg.RAX)

    def test_store(self):
        uops, _ = decode(mov(Mem(base=Reg.RBX), Reg.RCX))
        assert uops[0].kind is UopKind.ST
        assert uops[0].srcs == (int(Reg.RCX),)

    def test_store_immediate_single_uop(self):
        uops, _ = decode(mov(Mem(base=Reg.RBX), Imm(1)))
        assert [u.kind for u in uops] == [UopKind.ST]
        assert uops[0].imm == 1

    def test_lea(self):
        uops, _ = decode(Instr(Op.LEA, (Reg.RAX, Mem(base=Reg.RBX, disp=16))))
        assert uops[0].kind is UopKind.LEA


class TestLoadOpStoreExpansion:
    def test_alu_reg_mem_is_load_op(self):
        uops, path = decode(add(Reg.RAX, Mem(base=Reg.RBX)))
        assert [u.kind for u in uops] == [UopKind.LD, UopKind.ALU]
        assert uops[0].dst == T0
        assert T0 in uops[1].srcs
        assert path is DecodePath.COMPLEX

    def test_alu_mem_reg_is_rmw(self):
        uops, _ = decode(add(Mem(base=Reg.RBX), Reg.RAX))
        assert [u.kind for u in uops] == [UopKind.LD, UopKind.ALU, UopKind.ST]

    def test_inc_mem_is_rmw(self):
        uops, _ = decode(Instr(Op.INC, (Mem(base=Reg.RBX),)))
        assert [u.kind for u in uops] == [UopKind.LD, UopKind.ALU, UopKind.ST]
        assert uops[1].alu is AluOp.ADD and uops[1].imm == 1


class TestStackAndControl:
    def test_push(self):
        uops, _ = decode(push(Reg.RAX))
        assert [u.kind for u in uops] == [UopKind.ALU, UopKind.ST]
        assert uops[0].alu is AluOp.SUB

    def test_pop(self):
        uops, _ = decode(pop(Reg.RAX))
        assert [u.kind for u in uops] == [UopKind.LD, UopKind.ALU]

    def test_call_stores_return_address(self):
        instr = Instr(Op.CALL, (Imm(0x400100),))
        uops, _ = decode(instr, address=0x400020)
        store = uops[1]
        assert store.kind is UopKind.ST
        assert store.imm == 0x400024  # next slot
        assert uops[2].kind is UopKind.JMP
        assert uops[2].target == 0x400100

    def test_ret(self):
        uops, _ = decode(ret())
        assert [u.kind for u in uops] == [UopKind.LD, UopKind.ALU, UopKind.JMP_IND]

    def test_conditional_branch_reads_flags(self):
        uops, _ = decode(Instr(Op.JNE, (Imm(0x400000),)))
        assert uops[0].kind is UopKind.BR
        assert uops[0].reads_flags
        assert uops[0].cond == "jne"

    def test_cmp_writes_flags_no_dst(self):
        uops, _ = decode(Instr(Op.CMP, (Reg.RAX, Imm(3))))
        assert uops[0].writes_flags
        assert uops[0].dst is None


class TestDecoderBookkeeping:
    def test_stats_count_paths(self):
        decoder = Decoder()
        decoder.decode(mov(Reg.RAX, Reg.RBX), 0x400000, 0, 1)
        decoder.decode(ret(), 0x400004, 1, 1)
        assert decoder.stats.simple == 1
        assert decoder.stats.complex == 1
        assert decoder.stats.macro_ops == 2

    def test_cache_returns_shared_immutable_templates(self):
        # Native translations are cached and shared (the hot path); callers
        # that need to mutate must use copy_uops().
        from repro.microop.decoder import copy_uops

        decoder = Decoder()
        first, _ = decoder.decode(mov(Reg.RAX, Reg.RBX), 0x400000, 0, 1)
        second, _ = decoder.decode(mov(Reg.RAX, Reg.RBX), 0x400000, 0, 1)
        assert first[0] is second[0]
        copies = copy_uops(first)
        assert copies[0] is not first[0]
        copies[0].pid = 99
        assert first[0].pid == 0

    def test_macro_index_attached(self):
        uops, _ = decode(mov(Reg.RAX, Reg.RBX), index=17)
        assert uops[0].macro_index == 17

    def test_reg_reads_includes_address_registers(self):
        uops, _ = decode(mov(Mem(base=Reg.RBX, index=Reg.RCX, scale=8), Reg.RAX))
        reads = uops[0].reg_reads()
        assert int(Reg.RBX) in reads and int(Reg.RCX) in reads
